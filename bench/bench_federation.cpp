// Experiment E13 (DESIGN.md §12): the real TCP socket transport vs the
// simulated wire.
//
// Question: what does the real wire cost? The socket transport runs the
// same frame protocol as SimTransport — varint-framed, CRC'd, acked per
// message — but over genuine non-blocking TCP through the kernel's
// loopback, with poll(2) readiness, partial writes and per-peer ack
// correlation. This bench pushes a windowed stream of file messages
// through both and reports wall-clock throughput and send→ack latency.
//
// Time base: WALL CLOCK for both sides. The SimTransport leg runs under
// a SimClock whose virtual waits collapse to zero, so its wall time is
// pure protocol CPU — encode, CRC, decode, dispatch — with a free wire:
// an upper bound no socket can beat. The TCP leg adds syscalls, kernel
// buffering and scheduling on top of the identical protocol work.
//
// Acceptance (ISSUE 6): loopback TCP throughput within 2x of the
// SimTransport ceiling for >= 64 KiB payloads.
//
// With --partition, a second experiment runs (ISSUE 7): the link to the
// peer is severed through the PartitionableTransport chaos harness while
// a PeerHealthTracker drives the circuit breaker, then healed, and the
// bench measures recovery time — heal -> first acked send, and heal ->
// steady state (a full window streaming again) — across several
// partition/heal cycles.
//
// Env:
//   BISTRO_BENCH_QUICK  non-empty -> smaller corpus (CI smoke mode)
//   BISTRO_BENCH_OUT    JSON output path (default BENCH_federation.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "fault/partition.h"
#include "federation/health.h"
#include "net/socket_transport.h"
#include "sim/event_loop.h"
#include "sim/network.h"

using namespace bistro;

namespace {

/// Receiver that counts and discards (the remote HandleMessage cost is
/// deliberately trivial: the bench isolates the wire, not the server).
class CountingEndpoint : public Endpoint {
 public:
  Status HandleMessage(const Message&) override {
    ++received;
    return Status::OK();
  }
  uint64_t received = 0;
};

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::string transport;
  size_t payload_bytes = 0;
  int files = 0;
  double wall_seconds = 0;
  double files_per_sec = 0;
  double mb_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

constexpr int kWindow = 32;  // sends in flight before awaiting acks

Message MakeMessage(int i, const std::string& payload) {
  Message msg;
  msg.type = MessageType::kFileData;
  msg.file_id = static_cast<uint64_t>(i) + 1;
  msg.feed = "BENCH";
  msg.name = "bench_" + std::to_string(i) + ".dat";
  msg.payload = payload;
  return msg;
}

void Percentiles(std::vector<double>* lat_us, RunResult* r) {
  if (lat_us->empty()) return;
  std::sort(lat_us->begin(), lat_us->end());
  r->p50_us = (*lat_us)[lat_us->size() / 2];
  r->p99_us = (*lat_us)[lat_us->size() * 99 / 100];
}

/// Windowed send loop shared by both legs: keep kWindow messages in
/// flight, measure send→ack wall latency per message.
template <typename SendFn, typename PumpFn>
RunResult Stream(const std::string& name, int files,
                 const std::string& payload, SendFn send, PumpFn pump) {
  RunResult r;
  r.transport = name;
  r.payload_bytes = payload.size();
  r.files = files;

  int sent = 0, acked = 0, failed = 0;
  std::vector<double> lat_us;
  lat_us.reserve(files);
  const double start = WallSeconds();
  while (acked + failed < files) {
    while (sent < files && sent - acked - failed < kWindow) {
      const int i = sent++;
      const double sent_at = WallSeconds();
      send(i, [&, sent_at](const Status& s) {
        if (s.ok()) {
          ++acked;
          lat_us.push_back((WallSeconds() - sent_at) * 1e6);
        } else {
          ++failed;
          std::fprintf(stderr, "send %d failed: %s\n", i,
                       s.ToString().c_str());
        }
      });
    }
    pump();
  }
  r.wall_seconds = WallSeconds() - start;
  r.files_per_sec = files / r.wall_seconds;
  r.mb_per_sec = files * (payload.size() / 1e6) / r.wall_seconds;
  Percentiles(&lat_us, &r);
  if (failed != 0) {
    std::fprintf(stderr, "%s: %d sends failed\n", name.c_str(), failed);
    std::exit(1);
  }
  return r;
}

RunResult RunTcp(int files, const std::string& payload) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  SocketTransport server(&loop, server_opts);
  CountingEndpoint endpoint;
  server.SetInboundEndpoint(&endpoint);
  if (!server.Listen().ok()) std::exit(1);

  SocketTransport::Options client_opts;
  client_opts.outbound_queue_bytes = 256u << 20;
  SocketTransport client(&loop, client_opts);
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server.listen_port()));

  RunResult r = Stream(
      "tcp", files, payload,
      [&](int i, SendCallback done) {
        client.Send("srv", MakeMessage(i, payload), std::move(done));
      },
      [&] { loop.RunFor(kMillisecond); });
  if (endpoint.received != static_cast<uint64_t>(files)) {
    std::fprintf(stderr, "tcp: received %llu != %d\n",
                 (unsigned long long)endpoint.received, files);
    std::exit(1);
  }
  return r;
}

RunResult RunSim(int files, const std::string& payload) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(1);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  network.SetLink("srv", LinkSpec::Fast());
  CountingEndpoint endpoint;
  transport.Register("srv", &endpoint);

  RunResult r = Stream(
      "sim", files, payload,
      [&](int i, SendCallback done) {
        transport.Send("srv", MakeMessage(i, payload), std::move(done));
      },
      [&] { loop.RunUntilIdle(); });
  if (endpoint.received != static_cast<uint64_t>(files)) {
    std::fprintf(stderr, "sim: received %llu != %d\n",
                 (unsigned long long)endpoint.received, files);
    std::exit(1);
  }
  return r;
}

// ------------------------------------------------- partition recovery

struct PartitionResult {
  int cycles = 0;
  double outage_ms = 0;
  std::vector<double> first_ack_ms;  // heal -> first OK ack, per cycle
  std::vector<double> steady_ms;     // heal -> full window re-streamed
  uint64_t fast_fails = 0;           // sends refused by the open circuit
  uint64_t severed_rejects = 0;      // reconnects bounced off the shim
};

double P50(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}
double Max(const std::vector<double>& v) {
  return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
}

/// Severs the link through the chaos harness for `outage` per cycle,
/// heals, and measures how fast the health machine + transport recover.
PartitionResult RunPartitionRecovery(int cycles, Duration outage) {
  EventLoop loop(RealClock::Get());
  Logger logger(RealClock::Get());
  logger.SetMinLevel(LogLevel::kAlarm);

  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  SocketTransport server(&loop, server_opts);
  CountingEndpoint endpoint;
  server.SetInboundEndpoint(&endpoint);
  if (!server.Listen().ok()) std::exit(1);

  SocketTransport::Options client_opts;
  client_opts.reconnect_backoff_min = 10 * kMillisecond;
  client_opts.reconnect_backoff_max = 50 * kMillisecond;
  client_opts.ack_timeout = 200 * kMillisecond;
  SocketTransport client(&loop, client_opts);
  PartitionableTransport harness(&loop, &client, "up");
  if (!harness
           .AddPeer("srv",
                    "127.0.0.1:" + std::to_string(server.listen_port()))
           .ok()) {
    std::exit(1);
  }

  PeerHealthTracker tracker(&loop, &client, &logger);
  PeerHealthOptions hopts;
  hopts.probe_interval = 50 * kMillisecond;
  hopts.suspect_after = 1;
  hopts.down_after = 2;
  tracker.Track("srv", hopts);
  tracker.Attach();

  Rng rng(7);
  const std::string payload = rng.AlnumString(4096);
  int seq = 0;
  auto send_one = [&](SendCallback done) {
    client.Send("srv", MakeMessage(seq++, payload), std::move(done));
  };

  // Warm the connection.
  bool warm = false;
  send_one([&](const Status& s) { warm = s.ok(); });
  while (!warm) loop.RunFor(kMillisecond);

  PartitionResult pr;
  pr.cycles = cycles;
  pr.outage_ms = static_cast<double>(outage / kMillisecond);
  for (int c = 0; c < cycles; ++c) {
    harness.Partition("srv");
    TimePoint outage_end = RealClock::Get()->Now() + outage;
    while (RealClock::Get()->Now() < outage_end) {
      // Keep offering traffic, as production would: failures walk the
      // peer to `down` and the open circuit starts failing fast.
      send_one([](const Status&) {});
      loop.RunFor(5 * kMillisecond);
    }

    harness.Heal("srv");
    const double healed = WallSeconds();

    // Heal -> first OK ack: keep one offer in flight (open-circuit
    // rejects bounce immediately) until a send round-trips.
    bool acked = false, inflight = false;
    while (!acked) {
      if (!inflight) {
        inflight = true;
        send_one([&](const Status& s) {
          inflight = false;
          if (s.ok()) acked = true;
        });
      }
      loop.RunFor(kMillisecond);
    }
    pr.first_ack_ms.push_back((WallSeconds() - healed) * 1e3);

    // Heal -> steady state: a full window streams to completion.
    const int kSteadyFiles = 64;
    int ok_n = 0, live = 0;
    while (ok_n < kSteadyFiles) {
      while (live < kWindow && ok_n + live < kSteadyFiles) {
        ++live;
        send_one([&](const Status& s) {
          --live;
          if (s.ok()) ++ok_n;
        });
      }
      loop.RunFor(kMillisecond);
    }
    pr.steady_ms.push_back((WallSeconds() - healed) * 1e3);
  }

  pr.fast_fails = tracker.fast_fails();
  pr.severed_rejects = harness.severed_rejects();
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  bool with_partition = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--partition") == 0) with_partition = true;
  }
  const bool quick = std::getenv("BISTRO_BENCH_QUICK") != nullptr;
  const char* out_env = std::getenv("BISTRO_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_federation.json";

  struct Sweep {
    size_t payload_bytes;
    int files;
  };
  const std::vector<Sweep> sweep = quick
                                       ? std::vector<Sweep>{{4u << 10, 200},
                                                            {64u << 10, 100},
                                                            {1u << 20, 20}}
                                       : std::vector<Sweep>{{4u << 10, 2000},
                                                            {64u << 10, 1000},
                                                            {1u << 20, 100}};

  std::printf(
      "=== Federation wire: loopback TCP vs SimTransport ceiling "
      "(window %d%s) ===\n\n",
      kWindow, quick ? ", quick" : "");
  std::printf("%-10s %-6s %7s %9s %11s %9s %9s %9s\n", "payload", "wire",
              "files", "wall sec", "files/sec", "MB/s", "p50 us", "p99 us");

  Rng payload_rng(42);
  std::vector<RunResult> results;
  double ratio_at_64k = 0;
  for (const Sweep& s : sweep) {
    std::string payload = payload_rng.AlnumString(s.payload_bytes);
    RunResult sim = RunSim(s.files, payload);
    RunResult tcp = RunTcp(s.files, payload);
    for (const RunResult& r : {sim, tcp}) {
      std::printf("%-10zu %-6s %7d %9.3f %11.0f %9.1f %9.0f %9.0f\n",
                  r.payload_bytes, r.transport.c_str(), r.files,
                  r.wall_seconds, r.files_per_sec, r.mb_per_sec, r.p50_us,
                  r.p99_us);
      results.push_back(r);
    }
    double ratio = tcp.files_per_sec / sim.files_per_sec;
    if (s.payload_bytes == (64u << 10)) ratio_at_64k = ratio;
    std::printf("%-10s tcp/sim throughput ratio: %.2fx\n\n", "",
                ratio);
  }

  std::string json = StrFormat(
      "{\n  \"bench\": \"federation\",\n  \"quick\": %s,\n"
      "  \"window\": %d,\n  \"results\": [\n",
      quick ? "true" : "false", kWindow);
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json += StrFormat(
        "    {\"transport\": \"%s\", \"payload_bytes\": %zu, "
        "\"files\": %d, \"wall_seconds\": %.4f, \"files_per_sec\": %.1f, "
        "\"mb_per_sec\": %.1f, \"p50_us\": %.0f, \"p99_us\": %.0f}%s\n",
        r.transport.c_str(), r.payload_bytes, r.files, r.wall_seconds,
        r.files_per_sec, r.mb_per_sec, r.p50_us, r.p99_us,
        i + 1 < results.size() ? "," : "");
  }
  json += StrFormat("  ],\n  \"tcp_vs_sim_at_64k\": %.3f", ratio_at_64k);

  if (with_partition) {
    const int cycles = quick ? 3 : 5;
    PartitionResult pr =
        RunPartitionRecovery(cycles, /*outage=*/300 * kMillisecond);
    std::printf(
        "=== Partition recovery (chaos harness + health tracker, %d "
        "cycles, %.0f ms outage) ===\n\n",
        pr.cycles, pr.outage_ms);
    std::printf("%-26s %9s %9s\n", "", "p50 ms", "max ms");
    std::printf("%-26s %9.1f %9.1f\n", "heal -> first ack",
                P50(pr.first_ack_ms), Max(pr.first_ack_ms));
    std::printf("%-26s %9.1f %9.1f\n", "heal -> steady state",
                P50(pr.steady_ms), Max(pr.steady_ms));
    std::printf(
        "circuit fast-fails during outages: %llu; reconnects bounced "
        "off the severed link: %llu\n\n",
        (unsigned long long)pr.fast_fails,
        (unsigned long long)pr.severed_rejects);
    json += StrFormat(
        ",\n  \"partition\": {\"cycles\": %d, \"outage_ms\": %.0f, "
        "\"heal_to_first_ack_ms_p50\": %.1f, "
        "\"heal_to_first_ack_ms_max\": %.1f, "
        "\"heal_to_steady_ms_p50\": %.1f, \"heal_to_steady_ms_max\": %.1f, "
        "\"fast_fails\": %llu, \"severed_rejects\": %llu}",
        pr.cycles, pr.outage_ms, P50(pr.first_ack_ms), Max(pr.first_ack_ms),
        P50(pr.steady_ms), Max(pr.steady_ms),
        (unsigned long long)pr.fast_fails,
        (unsigned long long)pr.severed_rejects);
  }

  json += "\n}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf(
      "\nExpected shape: the sim leg is the zero-wire protocol-CPU "
      "ceiling; real TCP\npays syscalls and kernel copies. At small "
      "payloads the per-message overhead\ndominates; at >= 64 KiB the "
      "CRC+copy cost does, and loopback TCP should sit\nwithin 2x of the "
      "ceiling (measured: %.2fx at 64 KiB).\n",
      1.0 / (ratio_at_64k > 0 ? ratio_at_64k : 1));
  if (ratio_at_64k < 0.5) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAIL: tcp/sim ratio at 64 KiB = %.3f < 0.5\n",
                 ratio_at_64k);
    return 1;
  }
  return 0;
}

// Ingest pipeline throughput: staged parallel ingest vs the synchronous
// per-file path (paper §4.1: normalization/compression plus staging
// durability dominate the per-file ingest cost; the pipeline shards the
// CPU work across a worker pool, overlaps the staging fsyncs, and
// group-commits arrival receipts so one WAL fsync covers a whole batch).
//
// Storage model: the in-memory substrate completes fsync in nanoseconds,
// which would hide exactly the latency the pipeline is built to absorb.
// LatencyFileSystem injects real (slept) per-op latencies — 500 us per
// fsync, 25 us per write/append — the shape of a local disk with a
// battery-backed cache. Against that substrate the measured wall-clock
// speedup comes from the two architectural effects that survive any
// host: workers overlap their staging fsyncs, and the receipt thread
// amortizes its WAL fsync over `batch` files. On multi-core hosts the
// sharded compression adds a third, purely parallel win on top.
//
// Sweep: workers x receipt-batch. workers == 0 is the synchronous inline
// baseline (the exact code path the pre-pipeline server ran); each
// threaded row reports its speedup against that baseline. The acceptance
// bar for the pipeline is >= 2x at 4 workers.
//
// A second sweep (the `plans` section of the JSON; run alone with
// --plans) measures the declarative-ingestion-plan hooks (DESIGN.md
// §16): each mode attaches a PlanRuntime whose single clause exercises
// one hook — snapshot lookup only (slo), per-file sampling hash
// (sample 100 keeps everything), quota token bucket (budget never
// binds), enrichment (CRC32 + header prepend), transform override
// (same codec the feed already declares) — against the no-plans
// baseline at the E10 headline config (4 workers, batch 32). The
// interesting number is the overhead column: the governance hooks
// (lookup, hash, bucket, override) should disappear into run-to-run
// noise; only enrich does per-byte work (CRC32 + header prepend) and
// should cost proportionally to payload size — and only when asked.
//
// Env:
//   BISTRO_BENCH_QUICK  non-empty -> smaller corpus (CI smoke mode)
//   BISTRO_BENCH_OUT    JSON output path (default BENCH_ingest.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "classify/classifier.h"
#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"
#include "config/registry.h"
#include "ingest/pipeline.h"
#include "ingest/plan.h"
#include "kv/receipts.h"
#include "sim/event_loop.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

constexpr int kNumFeeds = 16;
constexpr auto kSyncLatency = std::chrono::microseconds(500);
constexpr auto kWriteLatency = std::chrono::microseconds(25);

/// Delegates to an InMemoryFileSystem but sleeps a fixed latency on every
/// mutating op, so fsync cost is real wall-clock time the pipeline can
/// (or cannot) overlap. Thread-safe: the sleeps happen outside the
/// delegate's lock.
class LatencyFileSystem : public FileSystem {
 public:
  explicit LatencyFileSystem(FileSystem* base) : base_(base) {}

  Status WriteFile(const std::string& path, std::string_view data) override {
    std::this_thread::sleep_for(kWriteLatency);
    return base_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, std::string_view data) override {
    std::this_thread::sleep_for(kWriteLatency);
    return base_->AppendFile(path, data);
  }
  Status Sync(const std::string& path) override {
    std::this_thread::sleep_for(kSyncLatency);
    return base_->Sync(path);
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<FileInfo> Stat(const std::string& path) override {
    return base_->Stat(path);
  }
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  Status Delete(const std::string& path) override { return base_->Delete(path); }
  Status MkDirs(const std::string& path) override {
    return base_->MkDirs(path);
  }
  bool Exists(const std::string& path) override { return base_->Exists(path); }
  FsOpStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  FileSystem* base_;
};

std::string FeedConfig() {
  std::string text;
  for (int f = 0; f < kNumFeeds; ++f) {
    text += StrFormat(
        "feed F%02d { pattern \"f%02d_%%i_%%Y%%m%%d%%H%%M.dat\"; "
        "compress lz; tardiness 60s; }\n",
        f, f);
  }
  return text;
}

/// The plan sweep's config: the same feeds wrapped in one group so a
/// single `plan ALL { ... }` block governs the whole fleet (the group
/// selector is the production shape for fleet-wide governance). The
/// classifier matches on patterns, so grouping changes nothing else.
std::string GroupedFeedConfig(const std::string& plan_clauses) {
  std::string text = "group ALL {\n" + FeedConfig() + "}\n";
  if (!plan_clauses.empty()) {
    text += "plan ALL { " + plan_clauses + " }\n";
  }
  return text;
}

/// Poller-style CSV: repetitive structure with varying values, so the lz
/// codec has real work to do and real wins to find (~64 KB/file).
std::string MakePayload(Rng* rng, size_t target_bytes) {
  std::string payload = "timestamp,device,metric,value,status\n";
  payload.reserve(target_bytes + 64);
  while (payload.size() < target_bytes) {
    payload += StrFormat("1285387200,router%02llu,ifInOctets,%llu,OK\n",
                         (unsigned long long)rng->Uniform(32),
                         (unsigned long long)rng->Uniform(1000000000));
  }
  return payload;
}

struct RunResult {
  int workers = 0;
  size_t batch = 0;
  int files = 0;
  double seconds = 0;
  double files_per_sec = 0;
  double mb_per_sec = 0;
  double speedup = 1.0;  // vs the workers==0 baseline at the same batch
};

RunResult RunOne(int workers, size_t batch, int num_files,
                 const std::vector<std::string>& payloads,
                 const std::string& config_text) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem memfs;
  LatencyFileSystem fs(&memfs);
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  auto config = ParseConfig(config_text);
  if (!config.ok()) std::abort();
  auto registry = FeedRegistry::Create(*config);
  if (!registry.ok()) std::abort();
  FeedClassifier classifier(registry->get());
  KvStore::Options kv_opts;
  kv_opts.sync_wal = true;  // receipts are durable; group commit amortizes
  auto receipts = ReceiptDatabase::Open(&fs, "/bistro/db", kv_opts);
  if (!receipts.ok()) std::abort();

  // Built before the pipeline so it outlives the worker threads.
  std::unique_ptr<PlanRuntime> plans;
  if (!config->plans.empty()) {
    plans = std::make_unique<PlanRuntime>(config->plans, registry->get(),
                                          PlanContextFromConfig(*config));
    if (!plans->Validate().ok()) std::abort();
  }

  IngestPipeline::Options opts;
  opts.workers = workers;
  opts.batch = batch;
  opts.queue_depth = 512;
  opts.sync_staging = true;  // staged files are durable before the receipt
  IngestPipeline pipeline(opts, &fs, &classifier, registry->get(),
                          receipts->get(), &loop, &logger, nullptr);
  pipeline.SetCallbacks(nullptr, nullptr, nullptr, nullptr);
  if (plans != nullptr) pipeline.AttachPlans(plans.get());

  // Land the whole corpus first (on the raw memfs: the benchmark measures
  // the pipeline, not the landing-zone writes).
  std::vector<IncomingFile> files;
  files.reserve(num_files);
  uint64_t total_bytes = 0;
  for (int i = 0; i < num_files; ++i) {
    const std::string& payload = payloads[i % payloads.size()];
    IncomingFile f;
    f.name = StrFormat("f%02d_%d_201009250400.dat", i % kNumFeeds, i);
    f.landing_path = "/bistro/landing/src/" + f.name;
    f.size = payload.size();
    f.arrival_time = clock.Now();
    f.source = "src";
    total_bytes += payload.size();
    if (!memfs.WriteFile(f.landing_path, payload).ok()) std::abort();
    files.push_back(std::move(f));
  }

  auto t0 = std::chrono::steady_clock::now();
  pipeline.Start();
  for (const IncomingFile& f : files) {
    if (!pipeline.Submit(f).ok()) std::abort();
  }
  pipeline.WaitIdle();
  auto t1 = std::chrono::steady_clock::now();
  loop.RunUntilIdle();  // drain completion callbacks (not timed)

  IngestStats stats = pipeline.stats();
  if (stats.committed != static_cast<uint64_t>(num_files)) {
    std::fprintf(stderr, "lost files: committed %llu of %d\n",
                 (unsigned long long)stats.committed, num_files);
    std::abort();
  }

  RunResult r;
  r.workers = workers;
  r.batch = batch;
  r.files = num_files;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.files_per_sec = num_files / r.seconds;
  r.mb_per_sec = static_cast<double>(total_bytes) / 1e6 / r.seconds;
  return r;
}

struct PlanResult {
  std::string mode;
  std::string clauses;
  double seconds = 0;
  double files_per_sec = 0;
  double overhead_pct = 0;  // vs the "none" baseline, same config
};

/// One row per plan hook at the E10 headline config (4 workers,
/// batch 32). Every mode admits the full corpus, so the committed-count
/// invariant in RunOne keeps holding and the rows stay comparable.
std::vector<PlanResult> RunPlanSweep(int num_files,
                                     const std::vector<std::string>& payloads) {
  struct Mode {
    const char* name;
    const char* clauses;  // empty = no plan block at all (baseline)
  };
  const std::vector<Mode> modes = {
      {"none", ""},
      {"lookup_only", "slo bulk;"},
      {"sample_hash", "sample 100;"},
      {"quota_bucket", "quota 100000000 per 1m; quota_bytes 1000000000000 per 1m;"},
      {"enrich", "enrich provenance, checksum;"},
      {"transform_override", "transform lz;"},
      {"all_hooks",
       "sample 100; quota 100000000 per 1m; enrich provenance, checksum; "
       "transform lz; slo bulk;"},
  };

  std::printf("=== Ingestion-plan hook overhead "
              "(workers 4, batch 32, %d files) ===\n\n", num_files);
  std::printf("%-20s %10s %12s %10s\n", "mode", "sec", "files/sec",
              "overhead");

  std::vector<PlanResult> results;
  double baseline = 0;
  for (const Mode& m : modes) {
    RunResult r = RunOne(/*workers=*/4, /*batch=*/32, num_files, payloads,
                         GroupedFeedConfig(m.clauses));
    if (baseline == 0) baseline = r.files_per_sec;
    PlanResult p;
    p.mode = m.name;
    p.clauses = m.clauses;
    p.seconds = r.seconds;
    p.files_per_sec = r.files_per_sec;
    p.overhead_pct = (baseline / r.files_per_sec - 1.0) * 100.0;
    results.push_back(p);
    std::printf("%-20s %10.3f %12.0f %9.1f%%\n", p.mode.c_str(), p.seconds,
                p.files_per_sec, p.overhead_pct);
  }
  std::printf("\n");
  return results;
}

std::string PlansJson(const std::vector<PlanResult>& plan_results) {
  std::string json = "  \"plans\": [\n";
  for (size_t i = 0; i < plan_results.size(); ++i) {
    const PlanResult& p = plan_results[i];
    json += StrFormat(
        "    {\"mode\": \"%s\", \"clauses\": \"%s\", \"seconds\": %.4f, "
        "\"files_per_sec\": %.1f, \"overhead_pct\": %.2f}%s\n",
        p.mode.c_str(), p.clauses.c_str(), p.seconds, p.files_per_sec,
        p.overhead_pct, i + 1 < plan_results.size() ? "," : "");
  }
  json += "  ]\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool plans_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--plans") plans_only = true;
  }
  const bool quick = std::getenv("BISTRO_BENCH_QUICK") != nullptr;
  const char* out_env = std::getenv("BISTRO_BENCH_OUT");
  const std::string out_path = out_env != nullptr ? out_env : "BENCH_ingest.json";
  const int num_files = quick ? 300 : 1200;
  const size_t payload_bytes = 64 * 1000;

  // A pool of distinct payloads, reused round-robin: per-file variety
  // without regenerating the whole corpus.
  Rng rng(42);
  std::vector<std::string> payloads;
  for (int i = 0; i < 32; ++i) {
    payloads.push_back(MakePayload(&rng, payload_bytes));
  }

  std::vector<RunResult> results;
  if (!plans_only) {
    std::printf("=== Ingest pipeline: workers x batch sweep "
                "(%d files x %zu KB, fsync %lld us%s) ===\n\n",
                num_files, payload_bytes / 1000,
                (long long)kSyncLatency.count(), quick ? ", quick" : "");
    std::printf("%-8s %-6s %10s %12s %10s %9s\n", "workers", "batch", "sec",
                "files/sec", "MB/s", "speedup");

    const std::vector<int> worker_sweep = {0, 1, 2, 4, 8};
    const std::vector<size_t> batch_sweep = {1, 8, 32};
    for (size_t batch : batch_sweep) {
      double baseline = 0;
      for (int workers : worker_sweep) {
        RunResult r = RunOne(workers, batch, num_files, payloads, FeedConfig());
        if (workers == 0) baseline = r.files_per_sec;
        r.speedup = r.files_per_sec / baseline;
        results.push_back(r);
        std::printf("%-8d %-6zu %10.3f %12.0f %10.1f %8.2fx\n", r.workers,
                    r.batch, r.seconds, r.files_per_sec, r.mb_per_sec,
                    r.speedup);
      }
      std::printf("\n");
    }
  }

  const std::vector<PlanResult> plan_results =
      RunPlanSweep(num_files, payloads);

  std::string json = StrFormat(
      "{\n  \"bench\": \"ingest\",\n  \"quick\": %s,\n  \"files\": %d,\n"
      "  \"payload_bytes\": %zu,\n  \"fsync_latency_us\": %lld,\n"
      "  \"results\": [\n",
      quick ? "true" : "false", num_files, payload_bytes,
      (long long)kSyncLatency.count());
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json += StrFormat(
        "    {\"workers\": %d, \"batch\": %zu, \"seconds\": %.4f, "
        "\"files_per_sec\": %.1f, \"mb_per_sec\": %.2f, "
        "\"speedup_vs_sync\": %.3f}%s\n",
        r.workers, r.batch, r.seconds, r.files_per_sec, r.mb_per_sec,
        r.speedup, i + 1 < results.size() ? "," : "");
  }
  json += "  ],\n";
  json += PlansJson(plan_results);
  json += "}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("\nExpected shape: workers overlap their staging fsyncs and "
              "(on multi-core\nhosts) the compression itself; larger receipt "
              "batches amortize the group\ncommit's WAL fsync. The combined "
              "effect should clear 2x at 4 workers.\nPlan governance hooks "
              "should sit in run-to-run noise; enrich pays real\nper-byte "
              "CRC work and shows it.\n");
  return 0;
}

// Experiment E11 (DESIGN.md §10): the fan-out delivery fast path.
//
// Question: how much delivery throughput do the four fast-path features
// buy over the legacy lockstep sender at realistic fan-out? The features
// under test: pipelined send windows (overlap WAN latency), small-file
// frame coalescing (amortize per-transfer setup), the shared payload
// cache (read+CRC a staged file once per fan-out, not once per send),
// and group-committed delivery receipts (one WAL fsync per group).
//
// Time base: simulated. The WAN cost comes from SimNetwork (per-subscriber
// serial links: 40 ms setup latency, 4 MB/s); the durability cost is
// modeled by advancing the SimClock 500 us on every fsync and 25 us on
// every write/append — the shape of a local disk with a battery-backed
// cache, same constants as bench_ingest. Both costs therefore land in one
// deterministic time base, and files/sec below means simulated files/sec.
// The payload cache's win (skipping re-read + CRC per dispatch) is CPU,
// not simulated time, so the table also reports staged reads vs cache
// hits per config — the ablation rows keep cache_bytes = 0.
//
// Sweep: fanout x config. The `lockstep` row is the exact pre-fast-path
// shipping configuration (window 1, no coalescing, no cache, per-receipt
// fsync, non-pipelined ack link model) and is the baseline every other
// row's speedup is measured against. Acceptance: the full fast path
// clears 2x files/sec at fanout 8.
//
// Env:
//   BISTRO_BENCH_QUICK  non-empty -> smaller corpus (CI smoke mode)
//   BISTRO_BENCH_OUT    JSON output path (default BENCH_delivery.json)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "fanout/group.h"
#include "sched/scheduler.h"
#include "sim/network.h"
#include "trigger/trigger.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

constexpr Duration kSyncCost = 500 * kMicrosecond;
constexpr Duration kWriteCost = 25 * kMicrosecond;

/// Delegates to an InMemoryFileSystem but charges each mutating op to the
/// SimClock, so fsyncs cost simulated time the receipt group commit can
/// (or cannot) amortize — the sim-time analogue of bench_ingest's slept
/// LatencyFileSystem.
class SimCostFileSystem : public FileSystem {
 public:
  SimCostFileSystem(FileSystem* base, SimClock* clock)
      : base_(base), clock_(clock) {}

  Status WriteFile(const std::string& path, std::string_view data) override {
    clock_->Advance(kWriteCost);
    return base_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, std::string_view data) override {
    clock_->Advance(kWriteCost);
    return base_->AppendFile(path, data);
  }
  Status Sync(const std::string& path) override {
    clock_->Advance(kSyncCost);
    return base_->Sync(path);
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<FileInfo> Stat(const std::string& path) override {
    return base_->Stat(path);
  }
  Result<std::vector<FileInfo>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  Status Delete(const std::string& path) override { return base_->Delete(path); }
  Status MkDirs(const std::string& path) override { return base_->MkDirs(path); }
  bool Exists(const std::string& path) override { return base_->Exists(path); }
  FsOpStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  FileSystem* base_;
  SimClock* clock_;
};

struct BenchConfig {
  const char* name;
  size_t window;
  size_t coalesce_bytes;
  size_t cache_bytes;
  size_t receipt_group;
  bool pipelined_acks;
};

// Ordered so each row adds one feature; `lockstep` is the ablation
// baseline the acceptance bar is measured against.
const BenchConfig kConfigs[] = {
    {"lockstep", 1, 0, 0, 1, false},
    {"window4", 4, 0, 0, 1, true},
    {"window8", 8, 0, 0, 1, true},
    {"window8+coalesce", 8, 16 * 1024, 0, 1, true},
    {"fastpath", 8, 16 * 1024, 64 * 1024 * 1024, 32, true},
};

struct RunResult {
  std::string config;
  int fanout = 0;
  int files = 0;
  double sim_seconds = 0;
  double files_per_sec = 0;  // delivered (file, subscriber) sends / sim sec
  double speedup = 1.0;      // vs lockstep at the same fanout
  uint64_t staging_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t coalesced_frames = 0;
  uint64_t receipt_flushes = 0;
};

RunResult RunOne(const BenchConfig& cfg, int fanout, int num_files,
                 const std::string& payload) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem memfs;
  SimCostFileSystem fs(&memfs, &clock);
  Rng rng(7);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  network.SetPipelinedAcks(cfg.pipelined_acks);

  std::string config_text =
      "feed F { pattern \"F_POLL%i_%Y%m%d%H%M.txt\"; }\n";
  for (int s = 0; s < fanout; ++s) {
    config_text += StrFormat("subscriber s%d { feeds F; method push; }\n", s);
  }
  auto config = ParseConfig(config_text);
  if (!config.ok()) std::abort();

  // WAN shape: per-subscriber serial links, 40 ms transfer setup, 4 MB/s.
  // Small files are latency-bound on this link, which is exactly the
  // regime windows and coalescing are built for.
  LinkSpec wan;
  wan.bandwidth_bytes_per_sec = 4 * 1000 * 1000;
  wan.latency = 40 * kMillisecond;
  InMemoryFileSystem sink_fs;
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  for (int s = 0; s < fanout; ++s) {
    std::string name = StrFormat("s%d", s);
    network.SetLink(name, wan);
    sinks.push_back(std::make_unique<FileSinkEndpoint>(
        &sink_fs, StrFormat("/sub/%d", s)));
    transport.Register(name, sinks.back().get());
  }

  // Hold the scheduler's slot pool constant across configs — and large
  // enough (window 8 x fanout 8 = 64) that it never binds — so the rows
  // differ only in the delivery features under test, not in how many
  // partition slots the server auto-scales.
  PartitionedScheduler::Options sched_opts;
  sched_opts.slots_per_partition = 64;
  PartitionedScheduler scheduler(sched_opts);

  MetricsRegistry metrics;
  BistroServer::Options opts;
  opts.metrics = &metrics;
  opts.kv.sync_wal = true;  // receipts are durable; fsync is the 500us cost
  opts.delivery.window = cfg.window;
  opts.delivery.coalesce_bytes = cfg.coalesce_bytes;
  opts.delivery.cache_bytes = cfg.cache_bytes;
  opts.delivery.receipt_group = cfg.receipt_group;
  opts.delivery.receipt_flush_interval = 100 * kMillisecond;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger, &scheduler);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    std::abort();
  }

  // Stage the corpus with every subscriber offline so the measured window
  // is pure delivery: ingest/staging fsyncs land before t0, and backfill
  // hands the scheduler full rounds (the coalescer needs multi-job rounds).
  for (int s = 0; s < fanout; ++s) {
    (*server)->delivery()->SetOffline(StrFormat("s%d", s), true);
  }
  for (int i = 0; i < num_files; ++i) {
    std::string name = StrFormat("F_POLL%d_201009250400.txt", i + 1);
    if (!(*server)->Deposit("src", name, payload).ok()) std::abort();
  }
  loop.RunUntil(clock.Now() + kSecond);

  const uint64_t want =
      static_cast<uint64_t>(num_files) * static_cast<uint64_t>(fanout);
  auto received = [&] {
    uint64_t total = 0;
    for (const auto& sink : sinks) total += sink->files_received();
    return total;
  };

  TimePoint t0 = clock.Now();
  for (int s = 0; s < fanout; ++s) {
    (*server)->delivery()->SetOffline(StrFormat("s%d", s), false);
  }
  // Step one event at a time so t1 is the exact instant the last file
  // lands, not the end of a polling chunk.
  while (received() < want) {
    if (!loop.RunOne()) {
      std::fprintf(stderr, "%s fanout %d: loop idle at %llu/%llu files\n",
                   cfg.name, fanout, (unsigned long long)received(),
                   (unsigned long long)want);
      std::abort();
    }
  }
  TimePoint t1 = clock.Now();
  loop.RunUntil(t1 + kSecond);  // drain acks, receipt flushes, timers

  for (const auto& sink : sinks) {
    if (sink->files_received() != static_cast<uint64_t>(num_files)) {
      std::fprintf(stderr, "%s fanout %d: sink got %llu of %d files\n",
                   cfg.name, fanout,
                   (unsigned long long)sink->files_received(), num_files);
      std::abort();
    }
  }
  if ((*server)->delivery()->buffered_receipts() != 0) {
    std::fprintf(stderr, "%s fanout %d: unflushed delivery receipts\n",
                 cfg.name, fanout);
    std::abort();
  }

  const DeliveryStats& d = (*server)->delivery_stats();
  RunResult r;
  r.config = cfg.name;
  r.fanout = fanout;
  r.files = num_files;
  r.sim_seconds = static_cast<double>(t1 - t0) / kSecond;
  r.files_per_sec = static_cast<double>(want) / r.sim_seconds;
  r.staging_reads = d.staging_reads;
  r.cache_hits = d.staging_cache_hits;
  r.coalesced_frames = d.coalesced_frames;
  r.receipt_flushes = d.receipt_group_flushes;
  return r;
}

// ---- High-fanout sweep: subscriber groups scale the same engine to 1e5+
// subscribers. The engine pays one send + one receipt row per GROUP; the
// group relay fans to members in-process, so the per-file completion rate
// should stay within 2x of the plain fanout-8 rate even at 100k members.

/// Member endpoint for the fanout sweep: counts data files into a shared
/// total so progress polling is O(1), not O(members).
class CountingEndpoint : public Endpoint {
 public:
  explicit CountingEndpoint(uint64_t* total) : total_(total) {}
  Status HandleMessage(const Message& msg) override {
    if (msg.type == MessageType::kFileData) {
      ++count_;
      ++*total_;
    }
    return Status::OK();
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t* total_;
  uint64_t count_ = 0;
};

struct FanoutResult {
  std::string label;
  int groups = 0;            // 0 = plain individual subscribers
  int members_per_group = 0;
  uint64_t subscribers = 0;
  int files = 0;
  double sim_seconds = 0;
  double file_rate = 0;      // files fully fanned out per sim second
  double delivery_rate = 0;  // member deliveries per sim second
  double ratio_vs_plain8 = 0;
};

FanoutResult RunFanout(const char* label, int groups, int members_per_group,
                       int num_files, const std::string& payload) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem memfs;
  SimCostFileSystem fs(&memfs, &clock);
  Rng rng(7);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  network.SetPipelinedAcks(true);

  const uint64_t subscribers =
      static_cast<uint64_t>(groups == 0 ? members_per_group
                                        : groups * members_per_group);
  // Plain rows register members directly as subscribers; group rows
  // register one `group` block per relay, members only in the fan list.
  std::string config_text =
      "feed F { pattern \"F_POLL%i_%Y%m%d%H%M.txt\"; }\n"
      "receipts { shards 4; }\n";
  std::vector<std::string> wire_names;  // endpoints the engine sends to
  if (groups == 0) {
    for (int s = 0; s < members_per_group; ++s) {
      config_text += StrFormat("subscriber s%d { feeds F; method push; }\n", s);
      wire_names.push_back(StrFormat("s%d", s));
    }
  } else {
    for (int g = 0; g < groups; ++g) {
      config_text += StrFormat("group g%d { feeds F; members ", g);
      for (int m = 0; m < members_per_group; ++m) {
        config_text += StrFormat("%sm%d_%d", m == 0 ? "" : ", ", g, m);
      }
      config_text += "; }\n";
      wire_names.push_back(StrFormat("g%d", g));
    }
  }
  auto config = ParseConfig(config_text);
  if (!config.ok()) std::abort();

  LinkSpec wan;
  wan.bandwidth_bytes_per_sec = 4 * 1000 * 1000;
  wan.latency = 40 * kMillisecond;
  uint64_t total = 0;
  std::vector<std::unique_ptr<CountingEndpoint>> members;
  members.reserve(subscribers);
  std::map<std::string, Endpoint*> by_name;
  auto add_member = [&](const std::string& name) {
    members.push_back(std::make_unique<CountingEndpoint>(&total));
    by_name[name] = members.back().get();
  };
  if (groups == 0) {
    for (const std::string& name : wire_names) add_member(name);
  } else {
    for (int g = 0; g < groups; ++g) {
      for (int m = 0; m < members_per_group; ++m) {
        add_member(StrFormat("m%d_%d", g, m));
      }
    }
  }
  for (const std::string& name : wire_names) network.SetLink(name, wan);
  if (groups == 0) {
    for (const std::string& name : wire_names) {
      transport.Register(name, by_name[name]);
    }
  }

  // Constant across rows, and large enough (100 group endpoints x window
  // 8 = 800) that the slot pool never binds: rows differ only in how the
  // subscriber population is shaped, not in scheduler capacity.
  PartitionedScheduler::Options sched_opts;
  sched_opts.slots_per_partition = 1024;
  PartitionedScheduler scheduler(sched_opts);

  MetricsRegistry metrics;
  BistroServer::Options opts;
  opts.metrics = &metrics;
  opts.kv.sync_wal = true;
  opts.delivery.window = 8;
  opts.delivery.coalesce_bytes = 16 * 1024;
  opts.delivery.cache_bytes = 64 * 1024 * 1024;
  opts.delivery.receipt_group = 32;
  opts.delivery.receipt_flush_interval = 100 * kMillisecond;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger, &scheduler);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    std::abort();
  }

  std::unique_ptr<fanout::GroupManager> manager;
  if (groups > 0) {
    fanout::GroupManager::Options group_options;
    group_options.catchup_interval = 0;  // no stragglers in the sweep
    manager = std::make_unique<fanout::GroupManager>(server->get(), &fs, &loop,
                                                     &logger, group_options);
    Status wired = manager->Wire(
        config->groups,
        [&](const std::string& m) -> Endpoint* {
          auto it = by_name.find(m);
          return it == by_name.end() ? nullptr : it->second;
        },
        [&](const std::string& name, Endpoint* ep) {
          transport.Register(name, ep);
        });
    if (!wired.ok()) {
      std::fprintf(stderr, "wire: %s\n", wired.ToString().c_str());
      std::abort();
    }
  }

  for (const std::string& name : wire_names) {
    (*server)->delivery()->SetOffline(name, true);
  }
  for (int i = 0; i < num_files; ++i) {
    std::string name = StrFormat("F_POLL%d_201009250400.txt", i + 1);
    if (!(*server)->Deposit("src", name, payload).ok()) std::abort();
  }
  loop.RunUntil(clock.Now() + kSecond);

  const uint64_t want = subscribers * static_cast<uint64_t>(num_files);
  TimePoint t0 = clock.Now();
  for (const std::string& name : wire_names) {
    (*server)->delivery()->SetOffline(name, false);
  }
  while (total < want) {
    if (!loop.RunOne()) {
      std::fprintf(stderr, "%s: loop idle at %llu/%llu deliveries\n", label,
                   (unsigned long long)total, (unsigned long long)want);
      std::abort();
    }
  }
  TimePoint t1 = clock.Now();
  loop.RunUntil(t1 + kSecond);

  for (const auto& m : members) {
    if (m->count() != static_cast<uint64_t>(num_files)) {
      std::fprintf(stderr, "%s: member got %llu of %d files\n", label,
                   (unsigned long long)m->count(), num_files);
      std::abort();
    }
  }

  FanoutResult r;
  r.label = label;
  r.groups = groups;
  r.members_per_group = members_per_group;
  r.subscribers = subscribers;
  r.files = num_files;
  r.sim_seconds = static_cast<double>(t1 - t0) / kSecond;
  r.file_rate = static_cast<double>(num_files) / r.sim_seconds;
  r.delivery_rate = static_cast<double>(want) / r.sim_seconds;
  return r;
}

}  // namespace

int main() {
  const bool quick = std::getenv("BISTRO_BENCH_QUICK") != nullptr;
  const char* out_env = std::getenv("BISTRO_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_delivery.json";
  const int num_files = quick ? 120 : 400;
  const size_t payload_bytes = 2000;

  std::string payload;
  payload.reserve(payload_bytes);
  while (payload.size() < payload_bytes) {
    payload += "1285387200,router07,ifInOctets,734592017,OK\n";
  }

  std::printf("=== Delivery fast path: fanout x config sweep "
              "(%d files x %zu B, WAN 40ms/4MBps, fsync %lld us%s) ===\n\n",
              num_files, payload_bytes,
              (long long)(kSyncCost / kMicrosecond), quick ? ", quick" : "");
  std::printf("%-7s %-18s %9s %11s %8s %7s %6s %7s %8s\n", "fanout", "config",
              "sim sec", "files/sec", "speedup", "reads", "hits", "frames",
              "flushes");

  const std::vector<int> fanout_sweep = {1, 4, 8};
  std::vector<RunResult> results;
  double fastpath_at_8 = 0, lockstep_at_8 = 0;
  for (int fanout : fanout_sweep) {
    double baseline = 0;
    for (const BenchConfig& cfg : kConfigs) {
      RunResult r = RunOne(cfg, fanout, num_files, payload);
      if (std::string(cfg.name) == "lockstep") baseline = r.files_per_sec;
      r.speedup = r.files_per_sec / baseline;
      if (fanout == 8 && std::string(cfg.name) == "lockstep") {
        lockstep_at_8 = r.files_per_sec;
      }
      if (fanout == 8 && std::string(cfg.name) == "fastpath") {
        fastpath_at_8 = r.files_per_sec;
      }
      results.push_back(r);
      std::printf("%-7d %-18s %9.3f %11.0f %7.2fx %7llu %6llu %7llu %8llu\n",
                  r.fanout, r.config.c_str(), r.sim_seconds, r.files_per_sec,
                  r.speedup, (unsigned long long)r.staging_reads,
                  (unsigned long long)r.cache_hits,
                  (unsigned long long)r.coalesced_frames,
                  (unsigned long long)r.receipt_flushes);
    }
    std::printf("\n");
  }

  // High-fanout sweep: one send + one receipt row per group buys flat
  // engine cost while member count grows 4 orders of magnitude.
  const int fanout_files = quick ? 30 : 60;
  std::vector<std::pair<const char*, std::pair<int, int>>> fanout_rows = {
      {"plain8", {0, 8}},
      {"groups-1k", {10, 100}},
      {"groups-10k", {20, 500}},
  };
  if (!quick) fanout_rows.push_back({"groups-100k", {100, 1000}});

  std::printf("=== Subscriber-group fanout: %d files x %zu B ===\n\n",
              fanout_files, payload_bytes);
  std::printf("%-12s %11s %7s %8s %9s %11s %14s %9s\n", "label", "subscribers",
              "groups", "members", "sim sec", "files/sec", "deliveries/sec",
              "vs plain8");
  std::vector<FanoutResult> fanout_results;
  double plain8_file_rate = 0;
  for (const auto& [label, shape] : fanout_rows) {
    FanoutResult r =
        RunFanout(label, shape.first, shape.second, fanout_files, payload);
    if (shape.first == 0) plain8_file_rate = r.file_rate;
    r.ratio_vs_plain8 = r.file_rate / plain8_file_rate;
    fanout_results.push_back(r);
    std::printf("%-12s %11llu %7d %8d %9.3f %11.1f %14.0f %8.2fx\n",
                r.label.c_str(), (unsigned long long)r.subscribers, r.groups,
                r.members_per_group, r.sim_seconds, r.file_rate,
                r.delivery_rate, r.ratio_vs_plain8);
  }
  std::printf("\n");

  std::string json = StrFormat(
      "{\n  \"bench\": \"delivery\",\n  \"quick\": %s,\n  \"files\": %d,\n"
      "  \"payload_bytes\": %zu,\n  \"fsync_cost_us\": %lld,\n"
      "  \"wan_latency_ms\": 40,\n  \"results\": [\n",
      quick ? "true" : "false", num_files, payload_bytes,
      (long long)(kSyncCost / kMicrosecond));
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json += StrFormat(
        "    {\"config\": \"%s\", \"fanout\": %d, \"sim_seconds\": %.4f, "
        "\"files_per_sec\": %.1f, \"speedup_vs_lockstep\": %.3f, "
        "\"staging_reads\": %llu, \"cache_hits\": %llu, "
        "\"coalesced_frames\": %llu, \"receipt_group_flushes\": %llu}%s\n",
        r.config.c_str(), r.fanout, r.sim_seconds, r.files_per_sec, r.speedup,
        (unsigned long long)r.staging_reads, (unsigned long long)r.cache_hits,
        (unsigned long long)r.coalesced_frames,
        (unsigned long long)r.receipt_flushes,
        i + 1 < results.size() ? "," : "");
  }
  json += "  ],\n  \"fanout\": [\n";
  for (size_t i = 0; i < fanout_results.size(); ++i) {
    const FanoutResult& r = fanout_results[i];
    json += StrFormat(
        "    {\"label\": \"%s\", \"subscribers\": %llu, \"groups\": %d, "
        "\"members_per_group\": %d, \"files\": %d, \"sim_seconds\": %.4f, "
        "\"files_per_sec\": %.2f, \"member_deliveries_per_sec\": %.0f, "
        "\"file_rate_vs_plain8\": %.3f}%s\n",
        r.label.c_str(), (unsigned long long)r.subscribers, r.groups,
        r.members_per_group, r.files, r.sim_seconds, r.file_rate,
        r.delivery_rate, r.ratio_vs_plain8,
        i + 1 < fanout_results.size() ? "," : "");
  }
  json += "  ]\n}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("\nExpected shape: windows overlap the 40ms WAN latency, "
              "coalescing cuts the\nper-transfer setups, grouped receipts "
              "amortize the WAL fsync, and the cache\nturns %d staged reads "
              "into 1 read + %d hits per file. Acceptance: fastpath\n"
              ">= 2x lockstep files/sec at fanout 8.\n",
              8, 7);
  if (fastpath_at_8 < 2.0 * lockstep_at_8) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAIL: fastpath %.0f files/sec < 2x lockstep "
                 "%.0f files/sec at fanout 8\n",
                 fastpath_at_8, lockstep_at_8);
    return 1;
  }
  std::printf("ACCEPTANCE PASS: %.2fx at fanout 8\n",
              fastpath_at_8 / lockstep_at_8);
  if (!quick) {
    const FanoutResult& big = fanout_results.back();
    if (big.subscribers < 100000 ||
        big.file_rate * 2.0 < plain8_file_rate) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAIL: %s file rate %.1f/sec not within 2x of "
                   "plain8 %.1f/sec\n",
                   big.label.c_str(), big.file_rate, plain8_file_rate);
      return 1;
    }
    std::printf("ACCEPTANCE PASS: %llu grouped subscribers at %.2fx the "
                "plain fanout-8 file rate\n",
                (unsigned long long)big.subscribers, big.ratio_vs_plain8);
  }
  return 0;
}

// Experiment E2 (paper §2.2.2, §4.2): rsync/cron delivery vs Bistro's
// receipt-database delivery queues.
//
// Claim: rsync keeps no state, so every sync cycle rescans the full
// history on both sides — "the cost of the directory scan grows linearly
// and completely dominates the actual data transmission time". Bistro
// computes a subscriber's queue from the arrival/delivery receipt
// database, so per-cycle cost tracks the number of UNDELIVERED files,
// not the history size. Also reproduces cron's job-overlap pathology.

#include <cstdio>

#include "baseline/rsync_like.h"
#include "common/strings.h"
#include "kv/receipts.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

void ScanCostSweep() {
  std::printf("--- E2a: per-cycle cost vs stored history (10 new files/cycle) ---\n");
  std::printf("%10s %24s %26s\n", "history",
              "rsync entries scanned/cycle", "bistro receipts touched/cycle");
  for (size_t history : {1000u, 5000u, 20000u, 100000u}) {
    // rsync side.
    InMemoryFileSystem src, dst;
    for (size_t i = 0; i < history; ++i) {
      (void)src.WriteFile(StrFormat("/data/f%07zu.csv", i), "x");
    }
    RsyncLike sync(&src, "/data", &dst, "/mirror");
    (void)sync.Sync();  // initial mirror
    for (size_t i = 0; i < 10; ++i) {
      (void)src.WriteFile(StrFormat("/data/new%03zu.csv", i), "x");
    }
    auto stats = sync.Sync();
    uint64_t rsync_scanned =
        stats.ok() ? stats->source_entries_scanned + stats->dest_entries_scanned
                   : 0;

    // Bistro side: the same history as receipts, all delivered; 10 new
    // arrivals undelivered. Queue computation touches the feed index +
    // the undelivered receipts.
    InMemoryFileSystem fs;
    auto db = ReceiptDatabase::Open(&fs, "/db");
    for (size_t i = 0; i < history; ++i) {
      ArrivalReceipt r;
      r.file_id = i + 1;
      r.name = StrFormat("f%07zu.csv", i);
      r.staged_path = "/staging/" + r.name;
      r.arrival_time = static_cast<TimePoint>(i);
      r.feeds = {"F"};
      (void)(*db)->RecordArrival(r);
      (void)(*db)->RecordDelivery("sub", r.file_id, r.arrival_time);
    }
    for (size_t i = 0; i < 10; ++i) {
      ArrivalReceipt r;
      r.file_id = history + i + 1;
      r.name = StrFormat("new%03zu.csv", i);
      r.staged_path = "/staging/" + r.name;
      r.arrival_time = static_cast<TimePoint>(history + i);
      r.feeds = {"F"};
      (void)(*db)->RecordArrival(r);
    }
    // In the real engine new arrivals are pushed directly; the queue
    // recompute below is the recovery path. Either way the expensive part
    // is proportional to undelivered files; we report the queue length
    // (receipts materialized) as "touched".
    auto queue = (*db)->ComputeDeliveryQueue("sub", {"F"});
    std::printf("%10zu %24llu %26zu\n", history,
                (unsigned long long)rsync_scanned, queue.size());
  }
  std::printf("(note: Bistro's feed index scan is an ordered prefix scan; "
              "the materialized receipts — the dominant cost — track only "
              "the 10 undelivered files)\n");
}

void WallClockSweep() {
  std::printf("\n--- E2b: steady-state cycle wall time, rsync vs receipts ---\n");
  std::printf("%10s %18s %22s\n", "history", "rsync cycle", "bistro queue compute");
  for (size_t history : {1000u, 10000u, 50000u}) {
    InMemoryFileSystem src, dst;
    for (size_t i = 0; i < history; ++i) {
      (void)src.WriteFile(StrFormat("/data/f%07zu.csv", i), "x");
    }
    RsyncLike sync(&src, "/data", &dst, "/mirror");
    (void)sync.Sync();
    RealClock rc;
    TimePoint t0 = rc.Now();
    (void)sync.Sync();
    Duration rsync_time = rc.Now() - t0;

    InMemoryFileSystem fs;
    auto db = ReceiptDatabase::Open(&fs, "/db");
    for (size_t i = 0; i < history; ++i) {
      ArrivalReceipt r;
      r.file_id = i + 1;
      r.name = StrFormat("f%07zu.csv", i);
      r.feeds = {"F"};
      (void)(*db)->RecordArrival(r);
      (void)(*db)->RecordDelivery("sub", r.file_id, 0);
    }
    t0 = rc.Now();
    auto queue = (*db)->ComputeDeliveryQueue("sub", {"F"});
    Duration bistro_time = rc.Now() - t0;
    std::printf("%10zu %18s %22s\n", history,
                FormatDuration(rsync_time).c_str(),
                FormatDuration(bistro_time).c_str());
  }
}

void CronOverlap() {
  std::printf("\n--- E2c: cron overlap as history grows (cron interval 5m) ---\n");
  std::printf("%10s %14s %18s\n", "history", "cycle time", "overlapping runs");
  for (size_t history : {10000u, 50000u, 200000u, 800000u}) {
    // Model: a sync cycle costs 0.5ms of wall time per entry scanned
    // (remote metadata-bound), converted to simulated job duration.
    Duration cycle = static_cast<Duration>(history) * 500 + 10 * kSecond;
    CronRunner cron(5 * kMinute, [&](TimePoint) { return cycle; });
    cron.AdvanceTo(12 * kHour);
    std::printf("%10zu %14s %16llu/%llu\n", history,
                FormatDuration(cycle).c_str(),
                (unsigned long long)cron.overlapping_runs(),
                (unsigned long long)cron.runs());
  }
  std::printf("(Bistro's event-driven delivery has no fixed-interval jobs "
              "to overlap)\n");
}

}  // namespace

int main() {
  std::printf("=== E2: rsync/cron vs Bistro receipt-based delivery ===\n\n");
  ScanCostSweep();
  WallClockSweep();
  CronOverlap();
  return 0;
}

// Experiment E8 (paper §4.2): reliability machinery costs.
//
// Measures the receipt database's write path (arrival + delivery receipt
// per file), delivery-queue recomputation as a function of backlog size,
// and crash-recovery (WAL replay) time as a function of history size —
// the operations behind "queues can always be recomputed" and "new
// subscribers receive full history".

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "kv/receipts.h"
#include "vfs/memfs.h"

using namespace bistro;

namespace {

ArrivalReceipt MakeReceipt(FileId id) {
  ArrivalReceipt r;
  r.file_id = id;
  r.name = StrFormat("CPU_POLL1_2010092504%02llu.txt",
                     (unsigned long long)(id % 60));
  r.staged_path = "/staging/CPU/" + r.name;
  r.rel_path = "CPU/" + r.name;
  r.size = 50000;
  r.arrival_time = static_cast<TimePoint>(id) * kSecond;
  r.data_time = r.arrival_time - kMinute;
  r.feeds = {"SNMP.CPU"};
  return r;
}

// Write path: one arrival receipt + one delivery receipt.
void BM_ReceiptWritePath(benchmark::State& state) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/db");
  FileId id = 1;
  for (auto _ : state) {
    ArrivalReceipt r = MakeReceipt(id);
    benchmark::DoNotOptimize(db->get()->RecordArrival(r));
    benchmark::DoNotOptimize(db->get()->RecordDelivery("sub", id, r.arrival_time));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}

// Queue recomputation with `range(0)` undelivered files atop a
// fully-delivered history of 50k files.
void BM_QueueRecompute(benchmark::State& state) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/db");
  const FileId kHistory = 50000;
  for (FileId id = 1; id <= kHistory; ++id) {
    (void)db->get()->RecordArrival(MakeReceipt(id));
    (void)db->get()->RecordDelivery("sub", id, 0);
  }
  FileId backlog = static_cast<FileId>(state.range(0));
  for (FileId id = kHistory + 1; id <= kHistory + backlog; ++id) {
    (void)db->get()->RecordArrival(MakeReceipt(id));
  }
  for (auto _ : state) {
    auto queue = db->get()->ComputeDeliveryQueue("sub", {"SNMP.CPU"});
    benchmark::DoNotOptimize(queue);
    if (queue.size() != backlog) state.SkipWithError("bad queue size");
  }
}

// Recovery: reopen a database whose WAL holds `range(0)` receipts.
void BM_CrashRecovery(benchmark::State& state) {
  InMemoryFileSystem fs;
  {
    KvStore::Options opts;
    opts.checkpoint_wal_bytes = 0;  // force everything through the WAL
    auto db = ReceiptDatabase::Open(&fs, "/db", opts);
    for (FileId id = 1; id <= static_cast<FileId>(state.range(0)); ++id) {
      (void)db->get()->RecordArrival(MakeReceipt(id));
    }
  }
  for (auto _ : state) {
    KvStore::Options opts;
    opts.checkpoint_wal_bytes = 0;
    auto db = ReceiptDatabase::Open(&fs, "/db", opts);
    benchmark::DoNotOptimize(db);
    if (!db.ok()) state.SkipWithError("recovery failed");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Recovery after checkpoint: the WAL is short regardless of history.
void BM_RecoveryAfterCheckpoint(benchmark::State& state) {
  InMemoryFileSystem fs;
  {
    auto db = ReceiptDatabase::Open(&fs, "/db");
    for (FileId id = 1; id <= static_cast<FileId>(state.range(0)); ++id) {
      (void)db->get()->RecordArrival(MakeReceipt(id));
    }
    (void)db->get()->kv()->Checkpoint();
  }
  for (auto _ : state) {
    auto db = ReceiptDatabase::Open(&fs, "/db");
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_ReceiptWritePath);
BENCHMARK(BM_QueueRecompute)->Arg(10)->Arg(1000)->Arg(10000);
BENCHMARK(BM_CrashRecovery)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_RecoveryAfterCheckpoint)->Arg(100000);

BENCHMARK_MAIN();

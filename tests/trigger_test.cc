// Tests for the batcher (all five batch modes, interval rollover,
// timeouts) and the trigger invokers.

#include <gtest/gtest.h>

#include "trigger/trigger.h"

namespace bistro {
namespace {

BatchSpec Spec(BatchSpec::Mode mode, int count = 0, Duration timeout = 0) {
  BatchSpec s;
  s.mode = mode;
  s.count = count;
  s.timeout = timeout;
  return s;
}

TEST(BatcherTest, PerFileClosesEveryFile) {
  Batcher b("F", "s", Spec(BatchSpec::Mode::kPerFile));
  auto e1 = b.OnFileDelivered(1, 100, 10);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->files, std::vector<FileId>{1});
  EXPECT_EQ(e1->reason, BatchEvent::Reason::kPerFile);
  auto e2 = b.OnFileDelivered(2, 100, 20);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->files, std::vector<FileId>{2});
}

TEST(BatcherTest, CountModeClosesAtN) {
  Batcher b("F", "s", Spec(BatchSpec::Mode::kCount, 3));
  EXPECT_FALSE(b.OnFileDelivered(1, 100, 10).has_value());
  EXPECT_FALSE(b.OnFileDelivered(2, 100, 20).has_value());
  auto e = b.OnFileDelivered(3, 100, 30);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->files, (std::vector<FileId>{1, 2, 3}));
  EXPECT_EQ(e->reason, BatchEvent::Reason::kCount);
  EXPECT_EQ(e->open_time, 10);
  EXPECT_EQ(e->close_time, 30);
  EXPECT_EQ(e->batch_time, 100);
}

TEST(BatcherTest, CountModeRollsOverOnNewInterval) {
  // Paper §2.3: one poller missed the 100-interval, so only 2 of 3 files
  // came; the first file of interval 200 must flush the stale batch
  // instead of polluting it.
  Batcher b("F", "s", Spec(BatchSpec::Mode::kCount, 3));
  EXPECT_FALSE(b.OnFileDelivered(1, 100, 10).has_value());
  EXPECT_FALSE(b.OnFileDelivered(2, 100, 20).has_value());
  auto rolled = b.OnFileDelivered(3, 200, 30);
  ASSERT_TRUE(rolled.has_value());
  EXPECT_EQ(rolled->files, (std::vector<FileId>{1, 2}));
  EXPECT_EQ(rolled->reason, BatchEvent::Reason::kIntervalRollover);
  EXPECT_EQ(rolled->batch_time, 100);
  // Files 3.. now accumulate under interval 200.
  EXPECT_FALSE(b.OnFileDelivered(4, 200, 40).has_value());
  auto e = b.OnFileDelivered(5, 200, 50);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->files, (std::vector<FileId>{3, 4, 5}));
}

TEST(BatcherTest, TimeModeClosesOnTick) {
  Batcher b("F", "s", Spec(BatchSpec::Mode::kTime, 0, 100));
  EXPECT_FALSE(b.OnFileDelivered(1, 0, 10).has_value());
  EXPECT_FALSE(b.OnTick(50).has_value());
  ASSERT_EQ(b.NextDeadline(), 110);
  auto e = b.OnTick(110);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->reason, BatchEvent::Reason::kTimeout);
  EXPECT_FALSE(b.OnTick(300).has_value());  // nothing open
  EXPECT_FALSE(b.NextDeadline().has_value());
}

TEST(BatcherTest, CountOrTimeClosesOnWhicheverFirst) {
  Batcher b("F", "s", Spec(BatchSpec::Mode::kCountOrTime, 3, 100));
  // Count path:
  b.OnFileDelivered(1, 0, 10);
  b.OnFileDelivered(2, 0, 20);
  auto e = b.OnFileDelivered(3, 0, 30);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->reason, BatchEvent::Reason::kCount);
  // Timeout path:
  b.OnFileDelivered(4, 0, 40);
  auto t = b.OnTick(140);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->reason, BatchEvent::Reason::kTimeout);
  EXPECT_EQ(t->files, std::vector<FileId>{4});
}

TEST(BatcherTest, LateDeliveryPastTimeoutClosesInline) {
  // If the tick cadence is coarse, OnFileDelivered itself notices the
  // expired timeout.
  Batcher b("F", "s", Spec(BatchSpec::Mode::kTime, 0, 100));
  b.OnFileDelivered(1, 0, 10);
  auto e = b.OnFileDelivered(2, 0, 500);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->files, (std::vector<FileId>{1, 2}));
}

TEST(BatcherTest, PunctuationModeOnlyClosesOnMarker) {
  Batcher b("F", "s", Spec(BatchSpec::Mode::kPunctuation));
  EXPECT_FALSE(b.OnFileDelivered(1, 100, 10).has_value());
  EXPECT_FALSE(b.OnFileDelivered(2, 200, 20).has_value());  // no rollover
  EXPECT_FALSE(b.OnTick(100000).has_value());
  auto e = b.OnPunctuation(50);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->files, (std::vector<FileId>{1, 2}));
  EXPECT_EQ(e->reason, BatchEvent::Reason::kPunctuation);
  EXPECT_FALSE(b.OnPunctuation(60).has_value());  // empty
}

TEST(BatcherTest, FlushClosesOpenBatch) {
  Batcher b("F", "s", Spec(BatchSpec::Mode::kCount, 10));
  b.OnFileDelivered(1, 0, 10);
  auto e = b.Flush(99);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->files, std::vector<FileId>{1});
  EXPECT_FALSE(b.Flush(100).has_value());
}

// ---------------------------------------------------------------- Invokers

TEST(CallbackInvokerTest, DispatchesByCommand) {
  CallbackInvoker invoker;
  int calls = 0;
  invoker.Register("load", [&](const BatchEvent& e) {
    calls++;
    EXPECT_EQ(e.feed, "F");
    return Status::OK();
  });
  BatchEvent event;
  event.feed = "F";
  EXPECT_TRUE(invoker.Invoke("load", event).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(invoker.Invoke("missing", event).IsNotFound());
}

TEST(RecordingInvokerTest, RecordsEverything) {
  RecordingInvoker invoker;
  BatchEvent event;
  event.feed = "F";
  event.files = {1, 2};
  ASSERT_TRUE(invoker.Invoke("cmd", event).ok());
  ASSERT_EQ(invoker.invocations().size(), 1u);
  EXPECT_EQ(invoker.invocations()[0].command, "cmd");
  EXPECT_EQ(invoker.invocations()[0].batch.files.size(), 2u);
  invoker.Clear();
  EXPECT_TRUE(invoker.invocations().empty());
}

TEST(CommandInvokerTest, RunsShellCommand) {
  CommandInvoker invoker;
  BatchEvent event;
  event.feed = "F";
  event.subscriber = "s";
  event.files = {1};
  EXPECT_TRUE(invoker.Invoke("true", event).ok());
  EXPECT_FALSE(invoker.Invoke("false", event).ok());
}

}  // namespace
}  // namespace bistro

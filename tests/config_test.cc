// Tests for the Bistro configuration language and feed registry:
// parsing, error reporting, FormatConfig round-trips, hierarchy expansion
// and subscription resolution.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "config/parser.h"
#include "config/registry.h"

namespace bistro {
namespace {

constexpr char kSnmpConfig[] = R"(
# SNMP measurement feeds (paper Section 3.1 example hierarchy)
group SNMP {
  group CPU {
    feed POLLER1 { pattern "CPU_POLL1_%Y%m%d%H%M.txt"; }
    feed POLLER2 { pattern "CPU_POLL2_%Y%m%d%H%M.txt"; }
  }
  feed BPS {
    pattern "BPS_%s_%Y%m%d%H.csv";
    normalize "%Y/%m/%d/BPS_%s_%H.csv";
    compress lz;
    tardiness 30s;
  }
  feed MEMORY {
    pattern "MEMORY_POLLER%i_%Y%m%d%H_%M.csv";
    decompress;
  }
}

subscriber dallas_warehouse {
  host "dallas.example.com";
  destination "/data/incoming";
  feeds SNMP.CPU, SNMP.BPS;
  method push;
  trigger batch count 3 timeout 5m exec "load_partition.sh";
  window 2d;
}

subscriber atlanta_marketing {
  host "atlanta.example.com";
  feeds SNMP;
  method notify;
  trigger file exec "notify.sh" remote;
}
)";

TEST(ConfigParseTest, ParsesFullExample) {
  auto config = ParseConfig(kSnmpConfig);
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->feeds.size(), 4u);
  EXPECT_EQ(config->feeds[0].name, "SNMP.CPU.POLLER1");
  EXPECT_EQ(config->feeds[1].name, "SNMP.CPU.POLLER2");
  EXPECT_EQ(config->feeds[2].name, "SNMP.BPS");
  EXPECT_EQ(config->feeds[3].name, "SNMP.MEMORY");

  const FeedSpec& bps = config->feeds[2];
  EXPECT_EQ(bps.pattern, "BPS_%s_%Y%m%d%H.csv");
  EXPECT_EQ(bps.normalize.rename_template, "%Y/%m/%d/BPS_%s_%H.csv");
  EXPECT_EQ(bps.normalize.action, CompressionAction::kCompress);
  EXPECT_EQ(bps.normalize.codec, CodecKind::kLz);
  EXPECT_EQ(bps.tardiness, 30 * kSecond);
  EXPECT_EQ(config->feeds[3].normalize.action, CompressionAction::kDecompress);
  EXPECT_EQ(config->feeds[0].tardiness, kDefaultTardiness);

  ASSERT_EQ(config->subscribers.size(), 2u);
  const SubscriberSpec& dallas = config->subscribers[0];
  EXPECT_EQ(dallas.name, "dallas_warehouse");
  EXPECT_EQ(dallas.host, "dallas.example.com");
  EXPECT_EQ(dallas.destination, "/data/incoming");
  EXPECT_EQ(dallas.feeds, (std::vector<FeedName>{"SNMP.CPU", "SNMP.BPS"}));
  EXPECT_EQ(dallas.method, DeliveryMethod::kPush);
  EXPECT_EQ(dallas.trigger.batch.mode, BatchSpec::Mode::kCountOrTime);
  EXPECT_EQ(dallas.trigger.batch.count, 3);
  EXPECT_EQ(dallas.trigger.batch.timeout, 5 * kMinute);
  EXPECT_EQ(dallas.trigger.command, "load_partition.sh");
  EXPECT_FALSE(dallas.trigger.remote);
  EXPECT_EQ(dallas.window, 2 * kDay);

  const SubscriberSpec& atlanta = config->subscribers[1];
  EXPECT_EQ(atlanta.method, DeliveryMethod::kNotify);
  EXPECT_EQ(atlanta.trigger.batch.mode, BatchSpec::Mode::kPerFile);
  EXPECT_TRUE(atlanta.trigger.remote);
}

TEST(ConfigParseTest, EmptyConfigIsValid) {
  auto config = ParseConfig("");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->feeds.empty());
  EXPECT_TRUE(config->subscribers.empty());
}

TEST(ConfigParseTest, ErrorsCarryLineNumbers) {
  auto config = ParseConfig("feed F {\n  pattern \"ok_%Y\";\n  bogus 7;\n}");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("line 3"), std::string::npos)
      << config.status();
}

TEST(ConfigParseTest, RejectsBadPatternAtParseTime) {
  auto config = ParseConfig(R"(feed F { pattern "bad_%q"; })");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigParseTest, RejectsFeedWithoutPattern) {
  EXPECT_FALSE(ParseConfig("feed F { tardiness 5s; }").ok());
}

TEST(ConfigParseTest, RejectsSubscriberWithoutFeeds) {
  EXPECT_FALSE(ParseConfig(R"(subscriber s { host "h"; })").ok());
}

TEST(ConfigParseTest, RejectsUnterminatedConstructs) {
  EXPECT_FALSE(ParseConfig("feed F { pattern \"x\";").ok());
  EXPECT_FALSE(ParseConfig("group G { feed F { pattern \"x\"; }").ok());
  EXPECT_FALSE(ParseConfig(R"(feed F { pattern "unterminated)").ok());
}

TEST(ConfigParseTest, RejectsBatchTriggerWithoutOptions) {
  EXPECT_FALSE(
      ParseConfig(R"(subscriber s { feeds F; trigger batch exec "x"; })").ok());
  EXPECT_FALSE(
      ParseConfig(R"(subscriber s { feeds F; trigger batch count -3; })").ok());
}

TEST(ConfigParseTest, PunctuationTrigger) {
  auto config = ParseConfig(R"(
feed F { pattern "f_%Y%m%d"; }
subscriber s { feeds F; trigger punctuation exec "go.sh"; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->subscribers[0].trigger.batch.mode,
            BatchSpec::Mode::kPunctuation);
}

TEST(ConfigParseTest, CommentsAndWhitespaceIgnored)
{
  auto config = ParseConfig("# leading comment\n\n  feed F{pattern \"x_%i\";}#trailing\n");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->feeds.size(), 1u);
}

TEST(ConfigParseTest, DeliveryTuningBlock) {
  auto config = ParseConfig(R"(
feed F { pattern "f_%i"; }
delivery {
  retry_backoff_min 2s;
  retry_backoff_max 1m;
  retry_multiplier 2.5;
  retry_jitter off;
  max_attempts 7;
  offline_after 5;
  probe_interval 45s;
  window 8;
  coalesce_bytes 65536;
  cache_bytes 1048576;
  receipt_group 32;
  receipt_flush_interval 250ms;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const DeliveryTuningSpec& d = config->delivery;
  EXPECT_EQ(d.retry_backoff_min, 2 * kSecond);
  EXPECT_EQ(d.retry_backoff_max, kMinute);
  EXPECT_EQ(d.retry_multiplier, 2.5);
  EXPECT_EQ(d.retry_jitter, false);
  EXPECT_EQ(d.max_attempts, 7);
  EXPECT_EQ(d.offline_after, 5);
  EXPECT_EQ(d.probe_interval, 45 * kSecond);
  EXPECT_EQ(d.window, 8);
  EXPECT_EQ(d.coalesce_bytes, 65536);
  EXPECT_EQ(d.cache_bytes, 1048576);
  EXPECT_EQ(d.receipt_group, 32);
  EXPECT_EQ(d.receipt_flush_interval, 250 * kMillisecond);
}

TEST(ConfigParseTest, DeliveryRetryBackoffLegacyKeyIsAlias) {
  // The pre-exponential-backoff key keeps working and sets the floor.
  auto config = ParseConfig("delivery { retry_backoff 9s; }");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->delivery.retry_backoff_min, 9 * kSecond);
}

TEST(ConfigParseTest, DeliveryBlockRejectsBadValues) {
  EXPECT_FALSE(ParseConfig("delivery { retry_multiplier 0.5; }").ok());
  EXPECT_FALSE(ParseConfig("delivery { max_attempts 0; }").ok());
  EXPECT_FALSE(ParseConfig("delivery { retry_jitter maybe; }").ok());
  EXPECT_FALSE(ParseConfig("delivery { frobnicate 1; }").ok());
  EXPECT_FALSE(ParseConfig("delivery { window -1; }").ok());
  EXPECT_FALSE(ParseConfig("delivery { coalesce_bytes -1; }").ok());
  EXPECT_FALSE(ParseConfig("delivery { cache_bytes -4; }").ok());
  EXPECT_FALSE(ParseConfig("delivery { receipt_group 0; }").ok());
}

TEST(ConfigParseTest, AnalyzerTuningBlock) {
  auto config = ParseConfig(R"(
feed F { pattern "f_%i"; }
analyzer {
  workers 2;
  max_corpus 50000;
  shards 8;
  cycle_interval 5m;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const AnalyzerTuningSpec& a = config->analyzer;
  EXPECT_EQ(a.workers, 2);
  EXPECT_EQ(a.max_corpus, 50000);
  EXPECT_EQ(a.shards, 8);
  EXPECT_EQ(a.cycle_interval, 5 * kMinute);
  // Unset keys stay unset (the engine keeps its compiled-in defaults).
  auto partial = ParseConfig("analyzer { workers 0; }");
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->analyzer.workers, 0);
  EXPECT_FALSE(partial->analyzer.max_corpus.has_value());
  EXPECT_FALSE(partial->analyzer.empty());
}

TEST(ConfigParseTest, AnalyzerBlockRejectsBadValues) {
  EXPECT_FALSE(ParseConfig("analyzer { workers -1; }").ok());
  EXPECT_FALSE(ParseConfig("analyzer { max_corpus 0; }").ok());
  EXPECT_FALSE(ParseConfig("analyzer { shards 0; }").ok());
  EXPECT_FALSE(ParseConfig("analyzer { cycle_interval 0s; }").ok());
  EXPECT_FALSE(ParseConfig("analyzer { frobnicate 1; }").ok());
  EXPECT_FALSE(ParseConfig("analyzer { workers 1; ").ok());  // unterminated
}

TEST(ConfigParseTest, ServerBlock) {
  auto config = ParseConfig(R"(
server {
  listen "0.0.0.0:4400";
  max_frame_bytes 8388608;
  outbound_queue_bytes 33554432;
  reconnect_backoff_min 100ms;
  reconnect_backoff_max 5s;
  ack_timeout 20s;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const ServerNetSpec& s = config->server;
  EXPECT_EQ(s.listen, "0.0.0.0:4400");
  EXPECT_EQ(s.max_frame_bytes, 8388608);
  EXPECT_EQ(s.outbound_queue_bytes, 33554432);
  EXPECT_EQ(s.reconnect_backoff_min, 100 * kMillisecond);
  EXPECT_EQ(s.reconnect_backoff_max, 5 * kSecond);
  EXPECT_EQ(s.ack_timeout, 20 * kSecond);
  // Unset tuning keys stay unset (transport keeps compiled-in defaults).
  auto partial = ParseConfig(R"(server { listen "127.0.0.1:0"; })");
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_FALSE(partial->server.max_frame_bytes.has_value());
  EXPECT_FALSE(partial->server.empty());
}

TEST(ConfigParseTest, ServerBlockRejectsBadValues) {
  EXPECT_FALSE(ParseConfig("server { max_frame_bytes 0; }").ok());
  EXPECT_FALSE(ParseConfig("server { outbound_queue_bytes -1; }").ok());
  EXPECT_FALSE(ParseConfig("server { reconnect_backoff_min 0s; }").ok());
  EXPECT_FALSE(ParseConfig("server { ack_timeout 0s; }").ok());
  EXPECT_FALSE(ParseConfig("server { frobnicate 1; }").ok());
  EXPECT_FALSE(ParseConfig(R"(server { listen "x:y"; )").ok());  // unterminated
}

TEST(ConfigParseTest, PeerBlocks) {
  auto config = ParseConfig(R"(
feed SNMP.CPU { pattern "cpu_%i"; }
feed SNMP.MEM { pattern "mem_%i"; }
peer east { address "10.0.0.2:4400"; feeds SNMP.CPU, SNMP.MEM; window 1h; }
peer west { address "10.0.0.3:4400"; shard 1 of 4; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->peers.size(), 2u);
  const PeerSpec& east = config->peers[0];
  EXPECT_EQ(east.name, "east");
  EXPECT_EQ(east.address, "10.0.0.2:4400");
  EXPECT_EQ(east.feeds, (std::vector<FeedName>{"SNMP.CPU", "SNMP.MEM"}));
  EXPECT_EQ(east.window, kHour);
  EXPECT_EQ(east.shard_count, 0);
  const PeerSpec& west = config->peers[1];
  EXPECT_TRUE(west.feeds.empty());
  EXPECT_EQ(west.shard_index, 1);
  EXPECT_EQ(west.shard_count, 4);
}

TEST(ConfigParseTest, PeerRejectsBadValues) {
  // No address.
  EXPECT_FALSE(ParseConfig("peer p { feeds F; }").ok());
  // Explicit feeds and sharding are alternative routing policies.
  EXPECT_FALSE(
      ParseConfig(R"(peer p { address "h:1"; feeds F; shard 0 of 2; })").ok());
  // Shard index out of [0, count).
  EXPECT_FALSE(ParseConfig(R"(peer p { address "h:1"; shard 2 of 2; })").ok());
  EXPECT_FALSE(ParseConfig(R"(peer p { address "h:1"; shard 0 of 0; })").ok());
  EXPECT_FALSE(ParseConfig(R"(peer p { address "h:1"; frobnicate 1; })").ok());
  EXPECT_FALSE(ParseConfig(R"(peer p { address "h:1"; )").ok());  // unterminated
}

TEST(ConfigParseTest, PeerHealthAndFailoverKeys) {
  auto config = ParseConfig(R"(
feed SNMP.CPU { pattern "cpu_%i"; }
peer east {
  address "10.0.0.2:4400"; shard 0 of 4; replicas 2;
  failover west; probe_interval 2s; suspect_after 2; down_after 5;
}
peer west { address "10.0.0.3:4400"; shard 1 of 4; replicas 2; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const PeerSpec& east = config->peers[0];
  EXPECT_EQ(east.replicas, 2);
  EXPECT_EQ(east.failover, "west");
  EXPECT_EQ(east.probe_interval, 2 * kSecond);
  EXPECT_EQ(east.suspect_after, 2);
  EXPECT_EQ(east.down_after, 5);
  const PeerSpec& west = config->peers[1];
  EXPECT_EQ(west.replicas, 2);
  EXPECT_TRUE(west.failover.empty());
  EXPECT_FALSE(west.probe_interval.has_value());
}

TEST(ConfigParseTest, PeerHealthAndFailoverRejectBadValues) {
  // replicas needs sharding, and can't exceed the shard count.
  EXPECT_FALSE(
      ParseConfig(R"(peer p { address "h:1"; replicas 2; })").ok());
  EXPECT_FALSE(
      ParseConfig(R"(peer p { address "h:1"; shard 0 of 2; replicas 3; })")
          .ok());
  EXPECT_FALSE(ParseConfig(R"(peer p { address "h:1"; replicas 0; })").ok());
  // A failover target must be another configured peer.
  EXPECT_FALSE(
      ParseConfig(R"(peer p { address "h:1"; failover ghost; })").ok());
  EXPECT_FALSE(ParseConfig(R"(peer p { address "h:1"; failover p; })").ok());
  // Threshold ordering and positivity.
  EXPECT_FALSE(ParseConfig(
                   R"(peer p { address "h:1"; suspect_after 5; down_after 2; })")
                   .ok());
  EXPECT_FALSE(
      ParseConfig(R"(peer p { address "h:1"; suspect_after 0; })").ok());
  EXPECT_FALSE(
      ParseConfig(R"(peer p { address "h:1"; probe_interval 0s; })").ok());
}

TEST(ConfigFormatTest, ServerAndPeerBlocksRoundTrip) {
  auto config = ParseConfig(R"(
feed SNMP.CPU { pattern "cpu_%i"; }
server { listen "127.0.0.1:4400"; ack_timeout 15s; max_frame_bytes 1048576; }
peer east { address "10.0.0.2:4400"; feeds SNMP.CPU; window 30m; failover west; probe_interval 2s; suspect_after 2; down_after 4; }
peer west { address "10.0.0.3:4400"; shard 0 of 2; replicas 2; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  std::string formatted = FormatConfig(*config);
  auto reparsed = ParseConfig(formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << formatted;
  EXPECT_EQ(*reparsed, *config) << formatted;
}

TEST(ConfigFormatTest, AnalyzerBlockRoundTrips) {
  auto config = ParseConfig(R"(
feed F { pattern "f_%i"; }
analyzer { workers 4; max_corpus 200000; shards 32; cycle_interval 90s; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  std::string formatted = FormatConfig(*config);
  auto reparsed = ParseConfig(formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << formatted;
  EXPECT_EQ(*reparsed, *config) << formatted;
}

TEST(ConfigFormatTest, DeliveryBlockRoundTrips) {
  auto config = ParseConfig(R"(
feed F { pattern "f_%i"; }
delivery {
  retry_backoff_min 3s; retry_multiplier 4; retry_jitter on;
  window 4; coalesce_bytes 32768; cache_bytes 0; receipt_group 8;
  receipt_flush_interval 75ms;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  std::string formatted = FormatConfig(*config);
  auto reparsed = ParseConfig(formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << formatted;
  EXPECT_EQ(*reparsed, *config) << formatted;
}

TEST(ConfigFormatTest, ClassifierBlockRoundTrips) {
  for (const char* mode : {"automaton", "trie", "linear"}) {
    auto config = ParseConfig(StrFormat(
        "feed F { pattern \"f_%%i\"; }\nclassifier { mode %s; }\n", mode));
    ASSERT_TRUE(config.ok()) << config.status();
    ASSERT_TRUE(config->classifier.mode.has_value());
    EXPECT_EQ(*config->classifier.mode, mode);
    std::string formatted = FormatConfig(*config);
    auto reparsed = ParseConfig(formatted);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << formatted;
    EXPECT_EQ(*reparsed, *config) << formatted;
  }
  EXPECT_FALSE(ParseConfig("classifier { mode hash; }").ok());
  EXPECT_FALSE(ParseConfig("classifier { workers 2; }").ok());
}

TEST(ConfigFormatTest, RoundTripsThroughParse) {
  auto config = ParseConfig(kSnmpConfig);
  ASSERT_TRUE(config.ok());
  std::string formatted = FormatConfig(*config);
  auto reparsed = ParseConfig(formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << formatted;
  EXPECT_EQ(*reparsed, *config);
}

TEST(ConfigFormatTest, QuotesEscaped) {
  ServerConfig config;
  FeedSpec feed;
  feed.name = "F";
  feed.pattern = "weird_%s";
  config.feeds.push_back(feed);
  SubscriberSpec sub;
  sub.name = "s";
  sub.feeds = {"F"};
  sub.trigger.command = "run \"quoted\" \\ back";
  sub.trigger.batch.mode = BatchSpec::Mode::kTime;
  sub.trigger.batch.timeout = 90 * kSecond;
  config.subscribers.push_back(sub);
  auto reparsed = ParseConfig(FormatConfig(config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, config);
}

// ---------------------------------------------------------------- Registry

std::unique_ptr<FeedRegistry> MustRegistry(std::string_view text) {
  auto config = ParseConfig(text);
  EXPECT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  EXPECT_TRUE(registry.ok()) << registry.status();
  return std::move(*registry);
}

TEST(RegistryTest, ExpandGroupToLeaves) {
  auto registry = MustRegistry(kSnmpConfig);
  EXPECT_EQ(registry->Expand("SNMP.CPU"),
            (std::vector<FeedName>{"SNMP.CPU.POLLER1", "SNMP.CPU.POLLER2"}));
  EXPECT_EQ(registry->Expand("SNMP.BPS"),
            std::vector<FeedName>{"SNMP.BPS"});
  EXPECT_EQ(registry->Expand("SNMP").size(), 4u);
  EXPECT_TRUE(registry->Expand("UNKNOWN").empty());
  // Prefix must respect dot boundaries: "SNMP.CP" is not a group.
  EXPECT_TRUE(registry->Expand("SNMP.CP").empty());
}

TEST(RegistryTest, SubscribedFeedsDeduplicates) {
  auto registry = MustRegistry(R"(
group G {
  feed A { pattern "a_%i"; }
  feed B { pattern "b_%i"; }
}
subscriber s { feeds G, G.A; }
)");
  auto feeds = registry->SubscribedFeeds(*registry->FindSubscriber("s"));
  EXPECT_EQ(feeds, (std::vector<FeedName>{"G.A", "G.B"}));
}

TEST(RegistryTest, SubscribersOfResolvesGroups) {
  auto registry = MustRegistry(kSnmpConfig);
  auto subs = registry->SubscribersOf("SNMP.CPU.POLLER1");
  ASSERT_EQ(subs.size(), 2u);  // dallas (via SNMP.CPU) and atlanta (via SNMP)
  auto bps_subs = registry->SubscribersOf("SNMP.BPS");
  ASSERT_EQ(bps_subs.size(), 2u);
  auto memory_subs = registry->SubscribersOf("SNMP.MEMORY");
  ASSERT_EQ(memory_subs.size(), 1u);
  EXPECT_EQ(memory_subs[0]->name, "atlanta_marketing");
}

TEST(RegistryTest, RejectsDuplicateFeed) {
  auto config = ParseConfig(R"(
feed F { pattern "a_%i"; }
feed F { pattern "b_%i"; }
)");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(FeedRegistry::Create(*config).ok());
}

TEST(RegistryTest, RejectsFeedNameThatIsAlsoGroup) {
  auto config = ParseConfig(R"(
feed SNMP { pattern "a_%i"; }
group SNMP { feed CPU { pattern "b_%i"; } }
)");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(FeedRegistry::Create(*config).ok());
}

TEST(RegistryTest, RejectsUnknownSubscription) {
  auto config = ParseConfig(R"(
feed F { pattern "a_%i"; }
subscriber s { feeds NOPE; }
)");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(FeedRegistry::Create(*config).ok());
}

TEST(RegistryTest, UpdateFeedReplacesPattern) {
  auto registry = MustRegistry(R"(feed F { pattern "old_%i"; })");
  EXPECT_TRUE(registry->FindFeed("F")->pattern.Matches("old_1"));
  FeedSpec revised = registry->FindFeed("F")->spec;
  revised.pattern = "new_%i";
  ASSERT_TRUE(registry->UpdateFeed(revised).ok());
  EXPECT_FALSE(registry->FindFeed("F")->pattern.Matches("old_1"));
  EXPECT_TRUE(registry->FindFeed("F")->pattern.Matches("new_1"));
}

TEST(RegistryTest, AddSubscriberAtRuntime) {
  auto registry = MustRegistry(R"(feed F { pattern "a_%i"; })");
  SubscriberSpec sub;
  sub.name = "late_joiner";
  sub.feeds = {"F"};
  ASSERT_TRUE(registry->AddSubscriber(sub).ok());
  EXPECT_EQ(registry->SubscribersOf("F").size(), 1u);
  EXPECT_TRUE(registry->AddSubscriber(sub).IsAlreadyExists());
  SubscriberSpec bad;
  bad.name = "bad";
  bad.feeds = {"MISSING"};
  EXPECT_FALSE(registry->AddSubscriber(bad).ok());
}

}  // namespace
}  // namespace bistro

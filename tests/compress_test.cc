// Tests for the compression codecs: round trips, corruption detection,
// frame auto-detection, and compression-ratio sanity. Parameterized across
// codecs and data shapes.

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/codec.h"

namespace bistro {
namespace {

TEST(CodecNameTest, RoundTrip) {
  for (CodecKind k : {CodecKind::kNone, CodecKind::kRle, CodecKind::kLz}) {
    auto parsed = CodecKindFromName(CodecKindName(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(CodecKindFromName("gzip").ok());
}

// Data shapes that exercise different codec behaviours.
std::string MakeInput(const std::string& shape, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(n);
  if (shape == "zeros") {
    out.assign(n, '\0');
  } else if (shape == "random") {
    while (out.size() < n) out += static_cast<char>(rng.Next() & 0xFF);
  } else if (shape == "csv") {
    // Repetitive measurement rows, LZ-friendly.
    while (out.size() < n) {
      out += "router_a,poller" + std::to_string(rng.Uniform(3)) + ",cpu," +
             std::to_string(rng.Uniform(100)) + ",2010-09-25\n";
    }
    out.resize(n);
  } else if (shape == "runs") {
    while (out.size() < n) {
      out.append(rng.Uniform(50) + 1, static_cast<char>('a' + rng.Uniform(4)));
    }
    out.resize(n);
  }
  return out;
}

struct Param {
  CodecKind kind;
  const char* shape;
};

class CodecRoundTripTest : public ::testing::TestWithParam<Param> {};

TEST_P(CodecRoundTripTest, RoundTripsAllSizes) {
  const Codec* codec = GetCodec(GetParam().kind);
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 17u, 100u, 4096u, 100000u}) {
    std::string input = MakeInput(GetParam().shape, n, /*seed=*/n + 1);
    std::string compressed = codec->Compress(input);
    auto out = codec->Decompress(compressed);
    ASSERT_TRUE(out.ok()) << GetParam().shape << " n=" << n << ": "
                          << out.status();
    EXPECT_EQ(*out, input) << GetParam().shape << " n=" << n;
  }
}

TEST_P(CodecRoundTripTest, AutoDecompressRoutes) {
  const Codec* codec = GetCodec(GetParam().kind);
  std::string input = MakeInput(GetParam().shape, 1000, 7);
  auto out = AutoDecompress(codec->Compress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllShapes, CodecRoundTripTest,
    ::testing::Values(Param{CodecKind::kNone, "csv"},
                      Param{CodecKind::kNone, "random"},
                      Param{CodecKind::kRle, "zeros"},
                      Param{CodecKind::kRle, "runs"},
                      Param{CodecKind::kRle, "random"},
                      Param{CodecKind::kLz, "csv"},
                      Param{CodecKind::kLz, "zeros"},
                      Param{CodecKind::kLz, "runs"},
                      Param{CodecKind::kLz, "random"}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(CodecKindName(info.param.kind)) + "_" +
             info.param.shape;
    });

TEST(CodecTest, RleCompressesRuns) {
  std::string input(10000, 'x');
  std::string compressed = GetCodec(CodecKind::kRle)->Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 100);
}

TEST(CodecTest, LzCompressesRepetitiveCsv) {
  std::string input = MakeInput("csv", 100000, 3);
  std::string compressed = GetCodec(CodecKind::kLz)->Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 2);
}

TEST(CodecTest, CorruptPayloadDetected) {
  std::string input = MakeInput("csv", 5000, 9);
  for (CodecKind k : {CodecKind::kNone, CodecKind::kRle, CodecKind::kLz}) {
    std::string compressed = GetCodec(k)->Compress(input);
    // Flip a byte in the payload area.
    compressed[compressed.size() / 2] ^= 0x41;
    auto out = GetCodec(k)->Decompress(compressed);
    EXPECT_FALSE(out.ok()) << CodecKindName(k);
  }
}

TEST(CodecTest, TruncatedFrameDetected) {
  std::string compressed = GetCodec(CodecKind::kLz)->Compress("hello world hello world");
  for (size_t cut : {0u, 4u, 8u}) {
    auto out = GetCodec(CodecKind::kLz)->Decompress(
        std::string_view(compressed).substr(0, cut));
    EXPECT_FALSE(out.ok()) << "cut=" << cut;
  }
  // Truncating the payload must also fail (CRC or structure).
  auto out = GetCodec(CodecKind::kLz)->Decompress(
      std::string_view(compressed).substr(0, compressed.size() - 3));
  EXPECT_FALSE(out.ok());
}

TEST(CodecTest, AutoDecompressPassesThroughPlainData) {
  std::string plain = "not a frame at all";
  auto out = AutoDecompress(plain);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, plain);
  EXPECT_FALSE(HasCodecFrame(plain));
}

TEST(CodecTest, FrameDetection) {
  std::string compressed = GetCodec(CodecKind::kRle)->Compress("abc");
  EXPECT_TRUE(HasCodecFrame(compressed));
}

// Property-style: random inputs across sizes must always round trip for LZ
// (the codec with the most complex token stream).
class LzPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LzPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  const Codec* codec = GetCodec(CodecKind::kLz);
  for (int iter = 0; iter < 20; ++iter) {
    size_t n = rng.Uniform(20000);
    // Mix of random and self-similar content.
    std::string input = MakeInput(rng.Bernoulli(0.5) ? "csv" : "runs", n,
                                  rng.Next());
    auto out = codec->Decompress(codec->Compress(input));
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(*out, input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzPropertyTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace bistro

// Fan-out subsystem tests: subscription index (and the no-full-scan
// regression probe), subscriber groups with straggler catch-up,
// dissemination relays with durable spools and crash replay, sharded
// receipt stores (torn-tail rollback, golden equivalence vs the
// unsharded layout), the admin `subscriptions` view, and a multi-hop
// cascade (server -> relay -> federated server) smoke test.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/admin.h"
#include "core/server.h"
#include "fanout/group.h"
#include "fanout/relay.h"
#include "fanout/subscription_index.h"
#include "federation/federation.h"
#include "kv/receipts.h"
#include "vfs/memfs.h"

namespace bistro {
namespace fanout {
namespace {

// ------------------------------------------------------------ helpers

Message FileMsg(FileId id, const std::string& name, const std::string& body,
                const FeedName& feed = "FED") {
  Message m;
  m.type = MessageType::kFileData;
  m.file_id = id;
  m.feed = feed;
  m.name = name;
  m.dest_path = name;
  m.payload_crc = Crc32(body);
  m.payload = SharedPayload(std::string(body));
  return m;
}

size_t CountReceiptRows(ReceiptDatabase* db, const std::string& prefix) {
  size_t n = 0;
  for (size_t i = 0; i < db->shard_count(); ++i) {
    n += db->kv(i)->ScanPrefix(prefix).size();
  }
  return n;
}

// ------------------------------------------------- config: new blocks

TEST(FanoutConfigTest, ParsesGroupRelayAndReceiptsBlocks) {
  auto config = ParseConfig(R"(
group SNMP {
  feed CPU { pattern "CPU_%i_%Y%m%d%H%M.txt"; }
}
group analytics {
  feeds SNMP, OTHER;
  members a1, a2, a3;
  window 2d;
  straggler_after 5;
}
feed OTHER { pattern "other_%s.dat"; }
relay edge1 {
  children analytics, leaf9;
  spool "/spool/edge1";
  retry_backoff 5s;
  max_attempts 4;
}
receipts { shards 8; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->groups.size(), 1u);
  const GroupSpec& g = config->groups[0];
  EXPECT_EQ(g.name, "analytics");
  EXPECT_EQ(g.feeds, (std::vector<FeedName>{"SNMP", "OTHER"}));
  EXPECT_EQ(g.members, (std::vector<std::string>{"a1", "a2", "a3"}));
  EXPECT_EQ(g.window, 2 * kDay);
  EXPECT_EQ(g.straggler_after, 5);
  ASSERT_EQ(config->relays.size(), 1u);
  const RelaySpec& r = config->relays[0];
  EXPECT_EQ(r.name, "edge1");
  EXPECT_EQ(r.children, (std::vector<std::string>{"analytics", "leaf9"}));
  EXPECT_EQ(r.spool, "/spool/edge1");
  EXPECT_EQ(r.retry_backoff, 5 * kSecond);
  EXPECT_EQ(r.max_attempts, 4);
  EXPECT_EQ(config->receipts.shards, 8);
}

TEST(FanoutConfigTest, FormatRoundTripsFanoutBlocks) {
  auto config = ParseConfig(R"(
feed FED { pattern "fed_%i.dat"; }
group g1 { feeds FED; members m1, m2; straggler_after 2; }
relay r1 { children m1; spool "/sp"; }
receipts { shards 4; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  auto round = ParseConfig(FormatConfig(*config));
  ASSERT_TRUE(round.ok()) << round.status() << "\n" << FormatConfig(*config);
  EXPECT_EQ(*config, *round);
}

TEST(FanoutConfigTest, RejectsInvalidFanoutBlocks) {
  // A subscriber group needs members and feeds.
  EXPECT_FALSE(ParseConfig("group g { feeds F; }").ok());
  EXPECT_FALSE(ParseConfig("group g { members a; }").ok());
  // Duplicate members.
  EXPECT_FALSE(ParseConfig("group g { feeds F; members a, a; }").ok());
  // Subscriber groups cannot nest inside a feed-hierarchy group.
  EXPECT_FALSE(
      ParseConfig("group SNMP { group g { feeds F; members a; } }").ok());
  // Relays need children; shard count is bounded.
  EXPECT_FALSE(ParseConfig("relay r { spool \"/s\"; }").ok());
  EXPECT_FALSE(ParseConfig("receipts { shards 0; }").ok());
  EXPECT_FALSE(ParseConfig("receipts { shards 512; }").ok());
}

// -------------------------------------------------- subscription index

constexpr char kIndexConfig[] = R"(
group SNMP {
  feed CPU { pattern "CPU_%i_%Y%m%d%H%M.txt"; }
  feed MEMORY { pattern "MEM_%s.csv"; }
}
subscriber warehouse { destination "/w"; feeds SNMP; method push; }
subscriber dashboard { destination "/d"; feeds SNMP.CPU; method notify; }
)";

TEST(SubscriptionIndexTest, InvertsInterestSets) {
  auto config = ParseConfig(kIndexConfig);
  ASSERT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok()) << registry.status();
  SubscriptionIndex index(registry->get());

  const auto& cpu = index.PostingsFor("SNMP.CPU");
  ASSERT_EQ(cpu.size(), 2u);
  EXPECT_EQ(cpu[0]->name, "warehouse");
  EXPECT_EQ(cpu[1]->name, "dashboard");
  const auto& mem = index.PostingsFor("SNMP.MEMORY");
  ASSERT_EQ(mem.size(), 1u);
  EXPECT_EQ(mem[0]->name, "warehouse");
  EXPECT_TRUE(index.PostingsFor("NO.SUCH.FEED").empty());
  EXPECT_EQ(index.ActiveSubscribers(),
            (std::vector<SubscriberName>{"dashboard", "warehouse"}));
}

TEST(SubscriptionIndexTest, RebuildsLazilyOnRegistryVersionBump) {
  auto config = ParseConfig(kIndexConfig);
  ASSERT_TRUE(config.ok());
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok());
  SubscriptionIndex index(registry->get());

  index.PostingsFor("SNMP.CPU");
  index.PostingsFor("SNMP.MEMORY");
  index.PostingsFor("SNMP.CPU");
  EXPECT_EQ(index.rebuilds(), 1u);  // one build serves many lookups

  SubscriberSpec extra;
  extra.name = "archiver";
  extra.feeds = {"SNMP.MEMORY"};
  extra.method = DeliveryMethod::kPush;
  ASSERT_TRUE((*registry)->AddSubscriber(extra).ok());
  const auto& mem = index.PostingsFor("SNMP.MEMORY");
  EXPECT_EQ(index.rebuilds(), 2u);  // version bump forced a rebuild
  ASSERT_EQ(mem.size(), 2u);
  EXPECT_EQ(mem[1]->name, "archiver");
}

// ------------------------------------ server fixture (groups + shards)

constexpr char kServerConfig[] = R"(
group SNMP {
  feed CPU {
    pattern "CPU_POLL%i_%Y%m%d%H%M.txt";
    normalize "%Y/%m/%d/CPU_POLL%i_%H%M.txt";
  }
}
subscriber warehouse { destination "/warehouse"; feeds SNMP; method push; }
group analytics {
  feeds SNMP;
  members a1, a2, a3;
  straggler_after 2;
}
receipts { shards 4; }
)";

class FanoutServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimClock>(FromCivil(CivilTime{2010, 9, 25}));
    loop_ = std::make_unique<EventLoop>(clock_.get());
    fs_ = std::make_unique<InMemoryFileSystem>();
    transport_ = std::make_unique<LoopbackTransport>(loop_.get());
    invoker_ = std::make_unique<RecordingInvoker>();
    logger_ = std::make_unique<Logger>(clock_.get());
    logger_->SetMinLevel(LogLevel::kError);

    warehouse_ = std::make_unique<FileSinkEndpoint>(fs_.get(), "/warehouse");
    transport_->Register("warehouse", warehouse_.get());
    for (const char* name : {"a1", "a2", "a3"}) {
      members_[name] = std::make_unique<FileSinkEndpoint>(
          fs_.get(), std::string("/m/") + name);
    }

    config_ = *ParseConfig(kServerConfig);
    Boot();
  }

  void Boot() {
    auto server =
        BistroServer::Create(BistroServer::Options(), config_, fs_.get(),
                             transport_.get(), loop_.get(), invoker_.get(),
                             logger_.get());
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
    GroupManager::Options opts;
    opts.catchup_interval = 0;  // tests drive CatchUpStragglers directly
    groups_ = std::make_unique<GroupManager>(server_.get(), fs_.get(),
                                             loop_.get(), logger_.get(), opts);
    ASSERT_TRUE(groups_
                    ->Wire(
                        config_.groups,
                        [this](const std::string& m) -> Endpoint* {
                          auto it = members_.find(m);
                          return it == members_.end() ? nullptr
                                                      : it->second.get();
                        },
                        [this](const std::string& name, Endpoint* ep) {
                          transport_->Register(name, ep);
                        })
                    .ok());
  }

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<InMemoryFileSystem> fs_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<RecordingInvoker> invoker_;
  std::unique_ptr<Logger> logger_;
  std::unique_ptr<FileSinkEndpoint> warehouse_;
  std::map<std::string, std::unique_ptr<FileSinkEndpoint>> members_;
  ServerConfig config_;
  std::unique_ptr<BistroServer> server_;
  std::unique_ptr<GroupManager> groups_;
};

// Satellite (a): the regression probe. FeedRegistry counts every
// SubscribersOf full scan; deposits, punctuation, subscriber backfill,
// feed revision and startup must all route through the index instead.
TEST_F(FanoutServerTest, NoFullSubscriberScanOnAnyHotPath) {
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250400.txt", "cpu=1").ok());
  loop_->RunUntilIdle();
  server_->SourceEndOfBatch("SNMP.CPU", loop_->Now());
  loop_->RunUntilIdle();

  SubscriberSpec late;
  late.name = "latecomer";
  late.host = "warehouse";  // reuse a registered endpoint
  late.feeds = {"SNMP"};
  late.method = DeliveryMethod::kPush;
  ASSERT_TRUE(server_->AddSubscriber(late).ok());
  loop_->RunUntilIdle();

  FeedSpec revised = server_->registry()->FindFeed("SNMP.CPU")->spec;
  revised.tardiness = 2 * kMinute;
  ASSERT_TRUE(server_->ReviseFeed(revised).ok());
  loop_->RunUntilIdle();

  EXPECT_EQ(server_->registry()->subscriber_scans(), 0u)
      << "a delivery path fell back to the O(subscribers x feeds) scan";
  EXPECT_GT(server_->delivery()->subscription_index()->lookups(), 0u);
}

TEST_F(FanoutServerTest, GroupSharesOneCursorAndOneReceiptRow) {
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250400.txt", "cpu=1").ok());
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250405.txt", "cpu=2").ok());
  loop_->RunUntilIdle();

  // Every member landed both files...
  for (const char* m : {"a1", "a2", "a3"}) {
    auto got = fs_->ReadFile(std::string("/m/") + m +
                             "/SNMP.CPU/2010/09/25/CPU_POLL1_0400.txt");
    ASSERT_TRUE(got.ok()) << m << ": " << got.status();
    EXPECT_EQ(*got, "cpu=1");
    EXPECT_EQ(members_[m]->files_received(), 2u);
  }
  // ...but the receipt store holds ONE delivery row per file for the
  // whole group (plus the individual subscriber's), not one per member.
  EXPECT_TRUE(server_->receipts()->Delivered("analytics", 1));
  EXPECT_TRUE(server_->receipts()->Delivered("analytics", 2));
  EXPECT_FALSE(server_->receipts()->Delivered("a1", 1));
  EXPECT_EQ(CountReceiptRows(server_->receipts(), "d/analytics/"), 2u);
  EXPECT_EQ(CountReceiptRows(server_->receipts(), "d/analytics~"), 0u);

  GroupRelay* relay = groups_->relay("analytics");
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->files_acked(), 2u);
  EXPECT_EQ(relay->cursor(), 2u);
  EXPECT_EQ(relay->straggler_count(), 0u);
  // The group counts as ONE subscriber in the engine's queue math.
  EXPECT_TRUE(server_->receipts()
                  ->ComputeDeliveryQueue("analytics", {"SNMP.CPU"})
                  .empty());
}

TEST_F(FanoutServerTest, StragglerGetsDeltaCatchUpAndRejoins) {
  members_["a3"]->SetFailing(true);
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250400.txt", "cpu=1").ok());
  loop_->RunUntilIdle();

  // a3 failed straggler_after (2) consecutive times: the group acked
  // without it and tracked the miss per member.
  GroupRelay* relay = groups_->relay("analytics");
  EXPECT_EQ(relay->files_acked(), 1u);
  EXPECT_EQ(relay->straggler_count(), 1u);
  EXPECT_EQ(relay->straggler_lag(), 1u);
  EXPECT_TRUE(server_->receipts()->Delivered("analytics", 1));
  EXPECT_EQ(members_["a1"]->files_received(), 1u);
  EXPECT_EQ(members_["a3"]->files_received(), 0u);

  // Files arriving while a3 is a straggler go straight to its backlog —
  // no NACK churn on the healthy members.
  uint64_t nacks_before = relay->nacks();
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250405.txt", "cpu=2").ok());
  loop_->RunUntilIdle();
  EXPECT_EQ(relay->nacks(), nacks_before);
  EXPECT_EQ(relay->straggler_lag(), 2u);

  // Recovery: catch-up replays exactly the delta, records the
  // per-member d/<group>~<member>/ receipts, and a3 rejoins the ack set.
  members_["a3"]->SetFailing(false);
  EXPECT_EQ(groups_->CatchUpStragglers(), 2u);
  EXPECT_EQ(members_["a3"]->files_received(), 2u);
  EXPECT_EQ(relay->straggler_count(), 0u);
  EXPECT_EQ(relay->straggler_lag(), 0u);
  EXPECT_TRUE(server_->receipts()->Delivered("analytics~a3", 1));
  EXPECT_TRUE(server_->receipts()->Delivered("analytics~a3", 2));
  EXPECT_EQ(CountReceiptRows(server_->receipts(), "d/analytics~a3/"), 2u);
}

TEST_F(FanoutServerTest, RestartResyncIsAbsorbedByMemberDedupe) {
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250400.txt", "cpu=1").ok());
  loop_->RunUntilIdle();
  for (const char* m : {"a1", "a2", "a3"}) {
    EXPECT_EQ(members_[m]->files_received(), 1u);
  }

  // Server restart: receipts and staging survive on fs_, members keep
  // their own dedupe state (they are external processes).
  groups_.reset();
  server_.reset();
  Boot();
  loop_->RunUntilIdle();  // backfill finds nothing undelivered
  ASSERT_TRUE(groups_->Resync().ok());
  loop_->RunUntilIdle();

  for (const char* m : {"a1", "a2", "a3"}) {
    EXPECT_EQ(members_[m]->files_received(), 1u) << m << " re-landed a file";
    EXPECT_GE(members_[m]->duplicates(), 1u) << m << " saw no re-offer";
  }
  EXPECT_EQ(CountReceiptRows(server_->receipts(), "d/analytics/"), 1u);
}

// ------------------------------------------------- group relay (unit)

TEST(GroupRelayTest, NacksUntilStragglerThenAcksWithoutIt) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  Logger logger(&clock);
  InMemoryFileSystem fs;
  FileSinkEndpoint ok1(&fs, "/ok1");
  FileSinkEndpoint bad(&fs, "/bad");
  bad.SetFailing(true);

  GroupRelay relay("g", /*straggler_after=*/2, &logger);
  relay.AddMember("ok1", &ok1);
  relay.AddMember("bad", &bad);

  Message msg = FileMsg(1, "fed_1.dat", "x");
  EXPECT_FALSE(relay.HandleMessage(msg).ok());  // healthy-member failure
  EXPECT_EQ(relay.nacks(), 1u);
  EXPECT_EQ(relay.files_acked(), 0u);

  // The retry tips `bad` over straggler_after: group acks without it.
  EXPECT_TRUE(relay.HandleMessage(msg).ok());
  EXPECT_EQ(relay.straggler_count(), 1u);
  EXPECT_EQ(relay.cursor(), 1u);
  EXPECT_EQ(ok1.files_received(), 1u);
  EXPECT_EQ(ok1.duplicates(), 1u);  // retry absorbed by FileId dedupe

  // Catch-up drains the backlog and the member rejoins.
  bad.SetFailing(false);
  std::vector<std::pair<std::string, FileId>> deltas;
  size_t n = relay.CatchUp(
      [&](FileId id) -> Result<Message> {
        return FileMsg(id, StrFormat("fed_%llu.dat", (unsigned long long)id),
                       "x");
      },
      [&](const std::string& member, FileId id, bool ok) {
        if (ok) deltas.emplace_back(member, id);
      });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(deltas,
            (std::vector<std::pair<std::string, FileId>>{{"bad", 1}}));
  EXPECT_EQ(bad.files_received(), 1u);
  EXPECT_EQ(relay.straggler_count(), 0u);
}

TEST(GroupRelayTest, ReofferQueuesFailuresInsteadOfNacking) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  Logger logger(&clock);
  InMemoryFileSystem fs;
  FileSinkEndpoint ok1(&fs, "/ok1");
  FileSinkEndpoint bad(&fs, "/bad");
  bad.SetFailing(true);

  GroupRelay relay("g", 3, &logger);
  relay.AddMember("ok1", &ok1);
  relay.AddMember("bad", &bad);
  relay.Reoffer(FileMsg(7, "fed_7.dat", "x"));

  EXPECT_EQ(relay.nacks(), 0u);
  EXPECT_EQ(ok1.files_received(), 1u);
  EXPECT_EQ(relay.straggler_lag(), 1u);  // queued for catch-up, not lost

  bad.SetFailing(false);
  size_t n = relay.CatchUp(
      [&](FileId id) -> Result<Message> { return FileMsg(id, "fed_7.dat", "x"); },
      [](const std::string&, FileId, bool) {});
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(bad.files_received(), 1u);
  EXPECT_EQ(relay.straggler_lag(), 0u);
}

TEST(GroupRelayTest, CatchUpDropsFilesExpiredFromHistory) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  Logger logger(&clock);
  InMemoryFileSystem fs;
  FileSinkEndpoint bad(&fs, "/bad");
  bad.SetFailing(true);

  GroupRelay relay("g", 1, &logger);
  relay.AddMember("bad", &bad);
  relay.HandleMessage(FileMsg(1, "a.dat", "x"));
  relay.HandleMessage(FileMsg(2, "b.dat", "x"));
  EXPECT_EQ(relay.straggler_lag(), 2u);

  bad.SetFailing(false);
  size_t n = relay.CatchUp(
      [&](FileId id) -> Result<Message> {
        if (id == 1) return Status::NotFound("expired");
        return FileMsg(id, "b.dat", "x");
      },
      [](const std::string&, FileId, bool) {});
  EXPECT_EQ(n, 1u);  // the expired file is dropped, not retried forever
  EXPECT_EQ(relay.straggler_lag(), 0u);
  EXPECT_EQ(bad.files_received(), 1u);
}

// --------------------------------------------------- sharded receipts

TEST(ShardedReceiptsTest, RoutesRowsByShardAndMergesIndexes) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts", KvStore::Options(), 4);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->shard_count(), 4u);

  std::vector<ArrivalReceipt> group(5);
  for (size_t i = 0; i < group.size(); ++i) {
    group[i].name = StrFormat("f%zu.dat", i);
    group[i].staged_path = StrFormat("/stage/f%zu.dat", i);
    group[i].feeds = {"FED"};
    group[i].arrival_time = 100 + static_cast<TimePoint>(i);
  }
  ASSERT_TRUE((*db)->RecordArrivalGroup(&group).ok());
  for (size_t i = 0; i < group.size(); ++i) {
    EXPECT_EQ(group[i].file_id, static_cast<FileId>(i + 1));
  }
  // Shard directories exist; rows are colocated by id hash.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        fs.ReadFile(StrFormat("/receipts/shard-%03d/wal.log", i)).ok());
  }
  // Per-feed index and name lookup merge across shards.
  EXPECT_EQ((*db)->FilesInFeed("FED"),
            (std::vector<FileId>{1, 2, 3, 4, 5}));
  auto id = (*db)->FindIdByName("f3.dat");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 4u);

  // Delivery rows partition by subscriber, not file.
  ASSERT_TRUE((*db)->RecordDeliveryGroup({{"subA", 1, 200},
                                          {"subA", 2, 200},
                                          {"subB", 1, 200}})
                  .ok());
  EXPECT_TRUE((*db)->Delivered("subA", 1));
  EXPECT_TRUE((*db)->Delivered("subB", 1));
  EXPECT_FALSE((*db)->Delivered("subB", 2));
  EXPECT_EQ((*db)->ComputeDeliveryQueue("subA", {"FED"}).size(), 3u);
}

TEST(ShardedReceiptsTest, GoldenEquivalenceWithUnshardedLayout) {
  InMemoryFileSystem fs;
  auto one = ReceiptDatabase::Open(&fs, "/r1", KvStore::Options(), 1);
  auto four = ReceiptDatabase::Open(&fs, "/r4", KvStore::Options(), 4);
  ASSERT_TRUE(one.ok() && four.ok());

  auto workload = [](ReceiptDatabase* db) {
    std::vector<ArrivalReceipt> group(9);
    for (size_t i = 0; i < group.size(); ++i) {
      group[i].name = StrFormat("f%zu.dat", i);
      group[i].staged_path = StrFormat("/stage/f%zu.dat", i);
      group[i].feeds = {i % 2 == 0 ? "EVEN" : "ODD"};
      group[i].arrival_time = 100 + static_cast<TimePoint>(i);
    }
    ASSERT_TRUE(db->RecordArrivalGroup(&group).ok());
    ASSERT_TRUE(db->RecordDeliveryGroup(
                      {{"alpha", 1, 150}, {"alpha", 3, 150}, {"beta", 2, 150}})
                    .ok());
    ASSERT_TRUE(db->RecordDelivery("gamma", 5, 160).ok());
  };
  workload(one->get());
  workload(four->get());

  // Crash-restart both stores, then demand identical recovered queues.
  one->reset();
  four->reset();
  one = ReceiptDatabase::Open(&fs, "/r1", KvStore::Options(), 1);
  four = ReceiptDatabase::Open(&fs, "/r4", KvStore::Options(), 4);
  ASSERT_TRUE(one.ok() && four.ok());

  EXPECT_EQ((*one)->ArrivalCount(), (*four)->ArrivalCount());
  EXPECT_EQ((*one)->FilesInFeed("EVEN"), (*four)->FilesInFeed("EVEN"));
  EXPECT_EQ((*one)->FilesInFeed("ODD"), (*four)->FilesInFeed("ODD"));
  for (const char* sub : {"alpha", "beta", "gamma", "newcomer"}) {
    auto q1 = (*one)->ComputeDeliveryQueue(sub, {"EVEN", "ODD"});
    auto q4 = (*four)->ComputeDeliveryQueue(sub, {"EVEN", "ODD"});
    ASSERT_EQ(q1.size(), q4.size()) << sub;
    for (size_t i = 0; i < q1.size(); ++i) {
      EXPECT_EQ(q1[i].file_id, q4[i].file_id) << sub;
      EXPECT_EQ(q1[i].name, q4[i].name) << sub;
    }
  }
}

TEST(ShardedReceiptsTest, TornShardTailLosesOnlyThatShardsSuffix) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts", KvStore::Options(), 4);
  ASSERT_TRUE(db.ok());
  // Four group commits of two receipts each: ids 1..8, shard = id % 4.
  for (int g = 0; g < 4; ++g) {
    std::vector<ArrivalReceipt> group(2);
    for (int i = 0; i < 2; ++i) {
      group[i].name = StrFormat("g%d_%d.dat", g, i);
      group[i].staged_path = "/stage/" + group[i].name;
      group[i].feeds = {"FED"};
      group[i].arrival_time = 100 + g;
    }
    ASSERT_TRUE((*db)->RecordArrivalGroup(&group).ok());
  }
  db->reset();

  // Crash mid-append in shard 2: its WAL loses the trailing record (the
  // group that carried id 6); every other shard's rows are untouched.
  std::string wal = *fs.ReadFile("/receipts/shard-002/wal.log");
  ASSERT_TRUE(fs.WriteFile("/receipts/shard-002/wal.log",
                           std::string_view(wal).substr(0, wal.size() - 3))
                  .ok());

  db = ReceiptDatabase::Open(&fs, "/receipts", KvStore::Options(), 4);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->ArrivalCount(), 7u);
  EXPECT_FALSE((*db)->GetArrival(6).ok());
  for (FileId id : {1, 2, 3, 4, 5, 7, 8}) {
    EXPECT_TRUE((*db)->GetArrival(id).ok()) << "id " << id;
  }
  // The sequence lives in shard 0 and committed first: the torn group
  // burned id 6 but a new arrival can never reuse it.
  auto next = (*db)->NextFileId();
  ASSERT_TRUE(next.ok());
  EXPECT_GE(*next, 9u);
}

// ------------------------------------------------- dissemination relay

class RelayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimClock>(FromCivil(CivilTime{2010, 9, 25}));
    loop_ = std::make_unique<EventLoop>(clock_.get());
    fs_ = std::make_unique<InMemoryFileSystem>();
    transport_ = std::make_unique<LoopbackTransport>(loop_.get());
    logger_ = std::make_unique<Logger>(clock_.get());
    logger_->SetMinLevel(LogLevel::kError);
    c1_ = std::make_unique<FileSinkEndpoint>(fs_.get(), "/c1");
    c2_ = std::make_unique<FileSinkEndpoint>(fs_.get(), "/c2");
    transport_->Register("c1", c1_.get());
    transport_->Register("c2", c2_.get());
  }

  Result<std::unique_ptr<RelayNode>> OpenRelay() {
    RelayNode::Options options;
    options.spool_dir = "/spool/r1";
    return RelayNode::Open("r1", {"c1", "c2"}, fs_.get(), transport_.get(),
                           loop_.get(), logger_.get(), options);
  }

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<InMemoryFileSystem> fs_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<Logger> logger_;
  std::unique_ptr<FileSinkEndpoint> c1_;
  std::unique_ptr<FileSinkEndpoint> c2_;
};

TEST_F(RelayTest, AcksAfterSpoolThenFansOutAndDrains) {
  auto relay = OpenRelay();
  ASSERT_TRUE(relay.ok()) << relay.status();

  // The upstream ack is synchronous (after the durable spool write);
  // fan-out to the children happens on the loop afterwards.
  ASSERT_TRUE((*relay)->HandleMessage(FileMsg(1, "fed_1.dat", "x")).ok());
  EXPECT_EQ((*relay)->Backlog(), 1u);
  EXPECT_EQ(c1_->files_received(), 0u);
  loop_->RunUntilIdle();
  EXPECT_EQ(c1_->files_received(), 1u);
  EXPECT_EQ(c2_->files_received(), 1u);
  EXPECT_EQ((*relay)->forwarded(), 2u);
  EXPECT_EQ((*relay)->Backlog(), 0u);
  // Fully-acked entries leave the spool (nothing to replay on reopen).
  relay->reset();
  auto reopened = OpenRelay();
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->replayed(), 0u);
}

TEST_F(RelayTest, RetriesFailedChildWithBackoff) {
  auto relay = OpenRelay();
  ASSERT_TRUE(relay.ok());
  c2_->SetFailing(true);
  ASSERT_TRUE((*relay)->HandleMessage(FileMsg(1, "fed_1.dat", "x")).ok());
  loop_->RunFor(5 * kSecond);
  EXPECT_EQ(c1_->files_received(), 1u);
  EXPECT_EQ(c2_->files_received(), 0u);
  EXPECT_EQ((*relay)->Backlog(), 1u);  // still owed to c2

  c2_->SetFailing(false);
  loop_->RunFor(kMinute);
  EXPECT_EQ(c2_->files_received(), 1u);
  EXPECT_EQ((*relay)->Backlog(), 0u);
  EXPECT_EQ(c1_->duplicates(), 0u);  // retry targeted only the failed child
}

TEST_F(RelayTest, CrashReplaysOnlyUnackedChildren) {
  {
    auto relay = OpenRelay();
    ASSERT_TRUE(relay.ok());
    c2_->SetFailing(true);
    ASSERT_TRUE((*relay)->HandleMessage(FileMsg(1, "fed_1.dat", "x")).ok());
    loop_->RunFor(3 * kSecond);  // c1 acked, c2 still pending
    EXPECT_EQ(c1_->files_received(), 1u);
  }  // relay destroyed with the entry mid-retry: the spool keeps it

  c2_->SetFailing(false);
  auto relay = OpenRelay();
  ASSERT_TRUE(relay.ok()) << relay.status();
  EXPECT_EQ((*relay)->replayed(), 1u);
  loop_->RunFor(kMinute);
  EXPECT_EQ(c2_->files_received(), 1u);
  // The durable waiting set excluded c1, so the replay did not resend
  // to it — and even if it had, the sink's dedupe absorbs it.
  EXPECT_EQ(c1_->files_received(), 1u);
  EXPECT_EQ(c1_->duplicates(), 0u);
  EXPECT_EQ((*relay)->Backlog(), 0u);
}

TEST(RelayTreeDepthTest, ComputesDepthAndCutsCycles) {
  std::vector<RelaySpec> specs(3);
  specs[0].name = "root";
  specs[0].children = {"mid", "leaf_sub"};
  specs[1].name = "mid";
  specs[1].children = {"edge"};
  specs[2].name = "edge";
  specs[2].children = {"s1", "s2"};
  EXPECT_EQ(RelayTreeDepth(specs, "edge"), 1);
  EXPECT_EQ(RelayTreeDepth(specs, "mid"), 2);
  EXPECT_EQ(RelayTreeDepth(specs, "root"), 3);
  // A cycle is a misconfiguration; depth stays finite.
  specs[2].children = {"root"};
  EXPECT_EQ(RelayTreeDepth(specs, "root"), 3);
}

// ------------------------------------------------------- admin console

TEST_F(FanoutServerTest, SubscriptionsCommandRendersGroupsAndRelays) {
  members_["a3"]->SetFailing(true);
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250400.txt", "cpu=1").ok());
  loop_->RunUntilIdle();

  AdminFanout fanout;
  fanout.groups = groups_.get();
  RelaySpec spec;
  spec.name = "edge1";
  spec.children = {"a1", "a2"};
  fanout.relay_specs = {spec};

  std::string out =
      ExecuteAdminCommand(server_.get(), "subscriptions", nullptr, fanout);
  EXPECT_NE(out.find("individual subscribers: 1"), std::string::npos) << out;
  EXPECT_NE(out.find("analytics"), std::string::npos) << out;
  EXPECT_NE(out.find("3 member(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("stragglers 1 (owed 1)"), std::string::npos) << out;
  EXPECT_NE(out.find("[STRAGGLER, owes 1]"), std::string::npos) << out;
  EXPECT_NE(out.find("edge1"), std::string::npos) << out;
  EXPECT_NE(out.find("depth 1"), std::string::npos) << out;

  std::string status =
      ExecuteAdminCommand(server_.get(), "status", nullptr, fanout);
  EXPECT_NE(
      status.find("groups: 1 group(s) covering 3 member(s), 1 straggler(s)"),
      std::string::npos)
      << status;
  std::string help = ExecuteAdminCommand(server_.get(), "help");
  EXPECT_NE(help.find("subscriptions"), std::string::npos);
}

// ------------------------------------- multi-hop cascade (satellite d)

// A -> relay (durable middle hop) -> B (federated ingest) -> leaf sink.
// The relay's child is down when the file arrives; the origin still gets
// its ack, the relay crashes and replays, and the file lands exactly
// once after the child comes back.
TEST(CascadeTest, RelayMiddleHopSurvivesDownstreamOutageAndCrash) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  RecordingInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kError);

  constexpr char kUpstream[] = R"(
feed FED { pattern "fed_%i_%Y%m%d%H%M.dat"; }
subscriber hop { destination "/unused"; feeds FED; method push; host "relayB"; }
)";
  constexpr char kDownstream[] = R"(
feed FED { pattern "fed_%i_%Y%m%d%H%M.dat"; }
subscriber leaf { destination "/unused"; feeds FED; method push; }
)";

  auto conf_a = ParseConfig(kUpstream);
  ASSERT_TRUE(conf_a.ok()) << conf_a.status();
  BistroServer::Options opts_a;
  opts_a.landing_root = "/a/landing";
  opts_a.staging_root = "/a/staging";
  opts_a.db_dir = "/a/db";
  auto server_a = BistroServer::Create(opts_a, *conf_a, &fs, &transport,
                                       &loop, &invoker, &logger);
  ASSERT_TRUE(server_a.ok()) << server_a.status();

  auto conf_b = ParseConfig(kDownstream);
  ASSERT_TRUE(conf_b.ok()) << conf_b.status();
  BistroServer::Options opts_b;
  opts_b.landing_root = "/b/landing";
  opts_b.staging_root = "/b/staging";
  opts_b.db_dir = "/b/db";
  auto server_b = BistroServer::Create(opts_b, *conf_b, &fs, &transport,
                                       &loop, &invoker, &logger);
  ASSERT_TRUE(server_b.ok()) << server_b.status();
  FederationInbound inbound_b(server_b->get(), &logger);
  FileSinkEndpoint leaf(&fs, "/leaf");
  transport.Register("leaf", &leaf);

  RelayNode::Options relay_options;
  relay_options.spool_dir = "/spool/relayB";
  relay_options.retry_backoff = 2 * kSecond;
  auto relay = RelayNode::Open("relayB", {"bsrv"}, &fs, &transport, &loop,
                               &logger, relay_options);
  ASSERT_TRUE(relay.ok()) << relay.status();
  transport.Register("relayB", relay->get());
  // NOTE: "bsrv" (B's federation inbound) is NOT registered yet — the
  // downstream hop is dark when the file arrives.

  ASSERT_TRUE(
      (*server_a)->Deposit("src", "fed_1_201009250400.dat", "payload").ok());
  loop.RunFor(10 * kSecond);
  // A considers the file delivered (the relay acked after spooling)...
  EXPECT_TRUE((*server_a)->receipts()->Delivered("hop", 1));
  // ...but nothing reached B yet; the relay still owes its child.
  EXPECT_EQ((*server_b)->receipts()->ArrivalCount(), 0u);
  EXPECT_EQ((*relay)->Backlog(), 1u);

  // The relay process crashes mid-outage and restarts from its spool.
  relay->reset();
  relay = RelayNode::Open("relayB", {"bsrv"}, &fs, &transport, &loop,
                          &logger, relay_options);
  ASSERT_TRUE(relay.ok()) << relay.status();
  transport.Register("relayB", relay->get());
  EXPECT_EQ((*relay)->replayed(), 1u);

  // Downstream failover completes: B comes up and the retry delivers.
  transport.Register("bsrv", &inbound_b);
  loop.RunFor(kMinute);
  loop.RunUntilIdle();
  EXPECT_EQ((*relay)->Backlog(), 0u);
  EXPECT_EQ((*server_b)->receipts()->ArrivalCount(), 1u);
  EXPECT_EQ(leaf.files_received(), 1u);
  EXPECT_EQ(inbound_b.files_ingested(), 1u);
  EXPECT_EQ(inbound_b.duplicates_absorbed(), 0u);
  auto got = fs.ReadFile("/leaf/FED/fed_1_201009250400.dat");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, "payload");
}

}  // namespace
}  // namespace fanout
}  // namespace bistro

// Tests for the feed-evolution loop (paper §2.1.3 + §5.2): multi-pattern
// feeds, analyzer-suggested revisions flowing back into the server, and
// the hybrid push-pull retrieval path.

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ----------------------------------------------------- multi-pattern feeds

TEST(MultiPatternTest, ParserTreatsRepeatedPatternsAsAlternates) {
  auto config = ParseConfig(R"(
feed MEMORY {
  pattern "MEMORY_poller%i_%Y%m%d.gz";
  pattern "MEMORY_Poller%i_%Y%m%d.gz";
  pattern "%Y/%m/%d/MEMORY_poller%i.bz2";
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const FeedSpec& feed = config->feeds[0];
  EXPECT_EQ(feed.pattern, "MEMORY_poller%i_%Y%m%d.gz");
  ASSERT_EQ(feed.alt_patterns.size(), 2u);
  EXPECT_EQ(feed.alt_patterns[0], "MEMORY_Poller%i_%Y%m%d.gz");
}

TEST(MultiPatternTest, FormatConfigRoundTripsAlternates) {
  auto config = ParseConfig(R"(
feed F { pattern "a_%i"; pattern "b_%i"; pattern "c_%i"; }
subscriber s { feeds F; }
)");
  ASSERT_TRUE(config.ok());
  auto reparsed = ParseConfig(FormatConfig(*config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, *config);
}

TEST(MultiPatternTest, ClassifierMatchesAllPatternsOfAFeed) {
  auto config = ParseConfig(R"(
feed MEMORY {
  pattern "MEMORY_poller%i_%Y%m%d.gz";
  pattern "MEMORY_Poller%i_%Y%m%d.gz";
}
)");
  ASSERT_TRUE(config.ok());
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok());
  for (auto mode : {FeedClassifier::IndexMode::kPrefixIndex,
                    FeedClassifier::IndexMode::kLinear}) {
    FeedClassifier classifier(registry->get(), mode);
    auto old_style = classifier.Classify("MEMORY_poller1_20100925.gz");
    auto new_style = classifier.Classify("MEMORY_Poller1_20100926.gz");
    ASSERT_TRUE(old_style.matched());
    ASSERT_TRUE(new_style.matched());
    // One feed, listed once, with fields extracted from whichever
    // pattern matched.
    EXPECT_EQ(old_style.feeds, std::vector<FeedName>{"MEMORY"});
    EXPECT_EQ(new_style.feeds, std::vector<FeedName>{"MEMORY"});
    EXPECT_EQ(new_style.primary_match.ints[0], 1);
    EXPECT_EQ(*new_style.primary_match.timestamp,
              FromCivil(CivilTime{2010, 9, 26}));
  }
}

TEST(MultiPatternTest, RegisteredFeedMatchTriesAlternates) {
  auto config = ParseConfig(R"(
feed F { pattern "old_%i.log"; pattern "new_%i.log"; }
)");
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok());
  const RegisteredFeed* feed = (*registry)->FindFeed("F");
  EXPECT_TRUE(feed->Match("old_1.log").has_value());
  EXPECT_TRUE(feed->Match("new_2.log").has_value());
  EXPECT_FALSE(feed->Match("other_3.log").has_value());
}

TEST(MultiPatternTest, BadAlternateRejectedAtRegistryBuild) {
  ServerConfig config;
  FeedSpec feed;
  feed.name = "F";
  feed.pattern = "ok_%i";
  feed.alt_patterns = {"bad_%q"};
  config.feeds.push_back(feed);
  EXPECT_FALSE(FeedRegistry::Create(config).ok());
}

// --------------------------------------------- the full suggestion loop

TEST(EvolutionLoopTest, AnalyzerSuggestionHealsFalseNegatives) {
  // 1. Server with the original MEMORY definition.
  SimClock clock(FromCivil(CivilTime{2010, 9, 26}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  auto config = ParseConfig(R"(
feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
subscriber warehouse { feeds MEMORY; method push; }
)");
  ASSERT_TRUE(config.ok());
  FileSinkEndpoint warehouse(&fs, "/warehouse");
  transport.Register("warehouse", &warehouse);
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  ASSERT_TRUE(server.ok());

  // 2. The source's software update capitalizes "Poller": files stop
  //    matching.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        (*server)
            ->Deposit("src", StrFormat("MEMORY_Poller%d_20100926.gz", i), "x")
            .ok());
  }
  loop.RunUntil(clock.Now() + kSecond);
  EXPECT_EQ((*server)->stats().files_unmatched, 3u);
  EXPECT_EQ(warehouse.files_received(), 0u);

  // 3. The analyzer inspects the unmatched stream and produces a
  //    suggestion...
  FeedAnalyzer analyzer((*server)->registry(), &logger);
  std::vector<FileObservation> unmatched = (*server)->DrainUnmatched();
  auto reports = analyzer.DetectFalseNegatives(unmatched);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].feed, "MEMORY");
  ASSERT_EQ(reports[0].suggested_spec.alt_patterns.size(), 1u);

  // 4. ...which the subscribers approve and the administrator applies.
  ASSERT_TRUE((*server)->ReviseFeed(reports[0].suggested_spec).ok());

  // 5. New files under the new convention now classify and deliver; the
  //    old convention still works too (alternates never break old files).
  ASSERT_TRUE(
      (*server)->Deposit("src", "MEMORY_Poller4_20100926.gz", "new").ok());
  ASSERT_TRUE(
      (*server)->Deposit("src", "MEMORY_poller5_20100926.gz", "old").ok());
  loop.RunUntil(clock.Now() + kSecond);
  EXPECT_EQ(warehouse.files_received(), 2u);
  EXPECT_EQ((*server)->stats().files_unmatched, 3u);  // unchanged
}

// --------------------------------------------------- hybrid push-pull

TEST(HybridPullTest, NotifiedSubscriberRetrievesBytes) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber puller { feeds CPU; method notify; }
)");
  ASSERT_TRUE(config.ok());
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint puller(&sub_fs, "/pulled");
  transport.Register("puller", &puller);
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  ASSERT_TRUE(server.ok());

  // The subscriber's hook pulls content when notified — at its own pace.
  std::vector<FileId> notified;
  puller.SetMessageHook([&](const Message& msg) {
    if (msg.type == MessageType::kFileNotify) notified.push_back(msg.file_id);
  });
  ASSERT_TRUE(
      (*server)->Deposit("p", "CPU_POLL1_201009250400.txt", "payload").ok());
  loop.RunUntil(clock.Now() + kSecond);
  ASSERT_EQ(notified.size(), 1u);

  auto content = (*server)->Retrieve(notified[0]);
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(*content, "payload");

  // After the window expires, retrieval reports NotFound.
  EXPECT_TRUE((*server)->Retrieve(999).status().IsNotFound());
}

TEST(HybridPullTest, RetrieveFailsAfterExpiry) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method notify; }
)");
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/x");
  transport.Register("s", &sink);
  BistroServer::Options opts;
  opts.history_window = kHour;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  loop.RunUntil(clock.Now() + kSecond);
  EXPECT_TRUE((*server)->Retrieve(1).ok());
  clock.Advance(2 * kHour);
  (*server)->RunMaintenance();
  EXPECT_TRUE((*server)->Retrieve(1).status().IsNotFound());
}

}  // namespace
}  // namespace bistro

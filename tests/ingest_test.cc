// Tests for the staged ingest pipeline: the group-commit KV layer
// (AppendBatch / ApplyMulti / RecordArrivalGroup), both pipeline modes
// (synchronous inline and threaded), per-feed ordering, the overload
// policies, and the crash-consistency contract with the landing-zone
// scan and the startup backfill.

#include <gtest/gtest.h>

#include "classify/classifier.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "ingest/pipeline.h"
#include "kv/kvstore.h"
#include "kv/receipts.h"
#include "kv/wal.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ------------------------------------------------------ WAL group append

TEST(WalBatchTest, AppendBatchReplaysEveryRecord) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  ASSERT_TRUE(wal.AppendBatch({"one", "two", "three"}).ok());
  ASSERT_TRUE(wal.Append("four").ok());
  std::vector<std::string> seen;
  bool torn = false;
  ASSERT_TRUE(
      wal.Replay([&](std::string_view r) { seen.emplace_back(r); }, &torn)
          .ok());
  EXPECT_FALSE(torn);
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two", "three", "four"}));
}

TEST(WalBatchTest, TornGroupRecoversCleanPrefix) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  ASSERT_TRUE(wal.AppendBatch({"alpha", "beta", "gamma"}).ok());
  // Crash mid-group-write: the file keeps a byte prefix that tears the
  // last record. Replay must keep the intact records and flag the tail.
  std::string data = *fs.ReadFile("/db/wal.log");
  ASSERT_TRUE(
      fs.WriteFile("/db/wal.log",
                   std::string_view(data).substr(0, data.size() - 3))
          .ok());
  std::vector<std::string> seen;
  bool torn = false;
  ASSERT_TRUE(
      wal.Replay([&](std::string_view r) { seen.emplace_back(r); }, &torn)
          .ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(seen, (std::vector<std::string>{"alpha", "beta"}));
}

TEST(WalBatchTest, EmptyBatchIsNoOp) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  ASSERT_TRUE(wal.AppendBatch({}).ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
}

// --------------------------------------------------- KvStore ApplyMulti

TEST(KvMultiTest, ApplyMultiAppliesAndSurvivesReopen) {
  InMemoryFileSystem fs;
  {
    auto kv = KvStore::Open(&fs, "/db");
    ASSERT_TRUE(kv.ok());
    std::vector<std::vector<KvStore::Write>> batches;
    batches.push_back({KvStore::Write::Put("a", "1")});
    batches.push_back(
        {KvStore::Write::Put("b", "2"), KvStore::Write::Put("c", "3")});
    batches.push_back({KvStore::Write::Del("a")});
    ASSERT_TRUE((*kv)->ApplyMulti(batches).ok());
    EXPECT_FALSE((*kv)->Contains("a"));
    EXPECT_EQ(*(*kv)->Get("b"), "2");
  }
  auto kv = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(kv.ok());
  EXPECT_FALSE((*kv)->Contains("a"));
  EXPECT_EQ(*(*kv)->Get("b"), "2");
  EXPECT_EQ(*(*kv)->Get("c"), "3");
}

// --------------------------------------------- Receipt group commit

ArrivalReceipt SampleReceipt(const std::string& name, const FeedName& feed,
                             TimePoint at) {
  ArrivalReceipt r;
  r.name = name;
  r.staged_path = "/bistro/staging/" + feed + "/" + name;
  r.rel_path = feed + "/" + name;
  r.size = 3;
  r.arrival_time = at;
  r.feeds = {feed};
  return r;
}

TEST(ReceiptGroupTest, GroupCommitAssignsAscendingIdsAndIndexes) {
  InMemoryFileSystem fs;
  {
    auto db = ReceiptDatabase::Open(&fs, "/db");
    ASSERT_TRUE(db.ok());
    std::vector<ArrivalReceipt> group = {SampleReceipt("f1.csv", "F", 10),
                                         SampleReceipt("f2.csv", "F", 11),
                                         SampleReceipt("f3.csv", "G", 12)};
    ASSERT_TRUE((*db)->RecordArrivalGroup(&group).ok());
    EXPECT_EQ(group[0].file_id, 1u);
    EXPECT_EQ(group[1].file_id, 2u);
    EXPECT_EQ(group[2].file_id, 3u);
    EXPECT_EQ((*db)->FilesInFeed("F"),
              (std::vector<FileId>{1, 2}));
    EXPECT_EQ(*(*db)->FindIdByName("f2.csv"), 2u);
  }
  // The group (and the sequence bump) is durable across reopen: the next
  // id continues after the group, never reusing a committed id.
  auto db = ReceiptDatabase::Open(&fs, "/db");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->ArrivalCount(), 3u);
  EXPECT_EQ(*(*db)->NextFileId(), 4u);
  auto arrival = (*db)->GetArrival(3);
  ASSERT_TRUE(arrival.ok());
  EXPECT_EQ(arrival->name, "f3.csv");
  EXPECT_EQ(arrival->feeds, (std::vector<FeedName>{"G"}));
}

TEST(ReceiptGroupTest, DeliveryGroupCommitIsDurableAndCounted) {
  InMemoryFileSystem fs;
  MetricsRegistry registry;
  {
    auto db = ReceiptDatabase::Open(&fs, "/db");
    ASSERT_TRUE(db.ok());
    (*db)->AttachMetrics(&registry);
    std::vector<ArrivalReceipt> group = {SampleReceipt("f1.csv", "F", 10),
                                         SampleReceipt("f2.csv", "F", 11),
                                         SampleReceipt("f3.csv", "F", 12)};
    ASSERT_TRUE((*db)->RecordArrivalGroup(&group).ok());
    std::vector<ReceiptDatabase::DeliveryRecord> deliveries = {
        {"s", 1, 20}, {"s", 2, 21}, {"t", 1, 22}};
    ASSERT_TRUE((*db)->RecordDeliveryGroup(deliveries).ok());
    EXPECT_TRUE((*db)->Delivered("s", 1));
    EXPECT_TRUE((*db)->Delivered("s", 2));
    EXPECT_TRUE((*db)->Delivered("t", 1));
    EXPECT_FALSE((*db)->Delivered("t", 2));
    EXPECT_EQ(registry
                  .GetCounter("bistro_receipts_delivery_group_commits_total",
                              "")
                  ->value(),
              1u);
    EXPECT_EQ(
        registry.GetCounter("bistro_receipts_delivery_group_files_total", "")
            ->value(),
        3u);
  }
  // The whole group survives reopen and drops out of the recomputed
  // delivery queues.
  auto db = ReceiptDatabase::Open(&fs, "/db");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Delivered("s", 1));
  EXPECT_TRUE((*db)->Delivered("t", 1));
  auto queue_s = (*db)->ComputeDeliveryQueue("s", {"F"});
  ASSERT_EQ(queue_s.size(), 1u);
  EXPECT_EQ(queue_s[0].file_id, 3u);
  EXPECT_EQ((*db)->ComputeDeliveryQueue("t", {"F"}).size(), 2u);
}

TEST(ReceiptGroupTest, EmptyDeliveryGroupIsANoOp) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/db");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->RecordDeliveryGroup({}).ok());
}

TEST(ReceiptGroupTest, FindIdByNameTracksLatestArrival) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/db");
  ASSERT_TRUE(db.ok());
  std::vector<ArrivalReceipt> first = {SampleReceipt("same.csv", "F", 10)};
  ASSERT_TRUE((*db)->RecordArrivalGroup(&first).ok());
  std::vector<ArrivalReceipt> second = {SampleReceipt("same.csv", "F", 20)};
  ASSERT_TRUE((*db)->RecordArrivalGroup(&second).ok());
  EXPECT_EQ(*(*db)->FindIdByName("same.csv"), second[0].file_id);
  EXPECT_TRUE((*db)->FindIdByName("never.csv").status().IsNotFound());
}

// ------------------------------------------------- Pipeline (standalone)

constexpr char kTwoFeedConfig[] = R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
feed MEM { pattern "MEM_POLL%i_%Y%m%d%H%M.txt"; }
)";

struct PipelineRig {
  SimClock clock{FromCivil(CivilTime{2010, 9, 25})};
  EventLoop loop{&clock};
  InMemoryFileSystem fs;
  Logger logger{&clock};
  std::unique_ptr<FeedRegistry> registry;
  std::unique_ptr<FeedClassifier> classifier;
  std::unique_ptr<ReceiptDatabase> receipts;
  std::unique_ptr<IngestPipeline> pipeline;
  std::vector<std::string> committed;
  std::vector<Status> errors;

  explicit PipelineRig(IngestPipeline::Options opts) {
    logger.SetMinLevel(LogLevel::kAlarm);
    auto config = ParseConfig(kTwoFeedConfig);
    EXPECT_TRUE(config.ok()) << config.status();
    auto reg = FeedRegistry::Create(*config);
    EXPECT_TRUE(reg.ok()) << reg.status();
    registry = std::move(*reg);
    classifier = std::make_unique<FeedClassifier>(registry.get());
    auto db = ReceiptDatabase::Open(&fs, "/bistro/db");
    EXPECT_TRUE(db.ok()) << db.status();
    receipts = std::move(*db);
    pipeline = std::make_unique<IngestPipeline>(
        opts, &fs, classifier.get(), registry.get(), receipts.get(), &loop,
        &logger, nullptr);
    pipeline->SetCallbacks(
        nullptr, nullptr,
        [this](const IngestPipeline::Committed& c) {
          committed.push_back(c.staged.name);
        },
        [this](const IncomingFile&, const Status& s) { errors.push_back(s); });
  }

  /// Writes `name` into the landing zone and returns its IncomingFile.
  IncomingFile Land(const std::string& name, const std::string& content = "x") {
    IncomingFile f;
    f.name = name;
    f.landing_path = "/bistro/landing/p/" + name;
    f.size = content.size();
    f.arrival_time = clock.Now();
    f.source = "p";
    EXPECT_TRUE(fs.WriteFile(f.landing_path, content).ok());
    return f;
  }
};

TEST(IngestPipelineTest, SyncModeCommitsInline) {
  PipelineRig rig(IngestPipeline::Options{});
  IncomingFile f = rig.Land("CPU_POLL1_201009250400.txt");
  ASSERT_TRUE(rig.pipeline->Submit(f).ok());
  // Sync mode: committed inline, before any loop turn.
  ASSERT_EQ(rig.committed.size(), 1u);
  EXPECT_EQ(rig.committed[0], "CPU_POLL1_201009250400.txt");
  EXPECT_FALSE(rig.fs.Exists(f.landing_path));  // landing consumed
  auto arrival = rig.receipts->GetArrival(1);
  ASSERT_TRUE(arrival.ok());
  EXPECT_TRUE(rig.fs.Exists(arrival->staged_path));
  IngestStats s = rig.pipeline->stats();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.committed, 1u);
  EXPECT_EQ(s.in_flight, 0u);
}

TEST(IngestPipelineTest, UnmatchedFileLeavesLandingUntouched) {
  IngestPipeline::Options opts;
  opts.workers = 2;
  PipelineRig rig(opts);
  rig.pipeline->Start();
  IncomingFile junk = rig.Land("core.12345");
  ASSERT_TRUE(rig.pipeline->Submit(junk).ok());
  rig.pipeline->WaitIdle();
  rig.loop.RunUntilIdle();
  EXPECT_TRUE(rig.committed.empty());
  EXPECT_TRUE(rig.fs.Exists(junk.landing_path));
  EXPECT_EQ(rig.pipeline->stats().unmatched, 1u);
  rig.pipeline->Shutdown();
}

TEST(IngestPipelineTest, ThreadedCommitsAllAndPreservesPerFeedOrder) {
  IngestPipeline::Options opts;
  opts.workers = 3;
  opts.batch = 4;
  PipelineRig rig(opts);
  rig.pipeline->Start();
  std::vector<std::string> cpu_names, mem_names;
  for (int m = 0; m < 15; ++m) {
    cpu_names.push_back(StrFormat("CPU_POLL1_2010092504%02d.txt", m));
    mem_names.push_back(StrFormat("MEM_POLL1_2010092504%02d.txt", m));
    ASSERT_TRUE(rig.pipeline->Submit(rig.Land(cpu_names.back())).ok());
    ASSERT_TRUE(rig.pipeline->Submit(rig.Land(mem_names.back())).ok());
  }
  rig.pipeline->WaitIdle();
  rig.loop.RunUntilIdle();  // deliver posted completion callbacks
  EXPECT_EQ(rig.committed.size(), 30u);
  EXPECT_TRUE(rig.errors.empty());
  EXPECT_EQ(rig.receipts->ArrivalCount(), 30u);
  // Feed sharding keeps one feed's files FIFO through one worker: walking
  // each feed's receipts in FileId order must reproduce submission order.
  for (const auto& [feed, names] :
       {std::make_pair(FeedName("CPU"), cpu_names),
        std::make_pair(FeedName("MEM"), mem_names)}) {
    std::vector<FileId> ids = rig.receipts->FilesInFeed(feed);
    ASSERT_EQ(ids.size(), names.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(rig.receipts->GetArrival(ids[i])->name, names[i])
          << feed << " position " << i;
    }
  }
  // Every landing file was consumed after its group committed.
  for (const auto& name : cpu_names) {
    EXPECT_FALSE(rig.fs.Exists("/bistro/landing/p/" + name));
  }
  IngestStats s = rig.pipeline->stats();
  EXPECT_EQ(s.admitted, 30u);
  EXPECT_EQ(s.committed, 30u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  rig.pipeline->Shutdown();
}

TEST(IngestPipelineTest, ShedOldestEvictsOldestAndLeavesLandingForRescan) {
  IngestPipeline::Options opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.overload_policy = OverloadPolicy::kShedOldest;
  PipelineRig rig(opts);
  // Workers not started yet: queue growth is deterministic.
  IncomingFile f1 = rig.Land("CPU_POLL1_201009250400.txt");
  IncomingFile f2 = rig.Land("CPU_POLL1_201009250401.txt");
  IncomingFile f3 = rig.Land("CPU_POLL1_201009250402.txt");
  ASSERT_TRUE(rig.pipeline->Submit(f1).ok());
  ASSERT_TRUE(rig.pipeline->Submit(f2).ok());  // sheds f1
  ASSERT_TRUE(rig.pipeline->Submit(f3).ok());  // sheds f2
  IngestStats s = rig.pipeline->stats();
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.queue_depth, 1u);
  EXPECT_FALSE(rig.pipeline->InFlight(f1.landing_path));
  EXPECT_TRUE(rig.pipeline->InFlight(f3.landing_path));
  // Shed files keep their landing copies (a rescan re-admits them); the
  // survivor commits once the workers run.
  rig.pipeline->Start();
  rig.pipeline->WaitIdle();
  rig.loop.RunUntilIdle();
  EXPECT_EQ(rig.committed, (std::vector<std::string>{f3.name}));
  EXPECT_TRUE(rig.fs.Exists(f1.landing_path));
  EXPECT_TRUE(rig.fs.Exists(f2.landing_path));
  EXPECT_FALSE(rig.fs.Exists(f3.landing_path));
  rig.pipeline->Shutdown();
}

TEST(IngestPipelineTest, SpillParksOverflowThenDrainsWithoutLoss) {
  IngestPipeline::Options opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.overload_policy = OverloadPolicy::kSpillToDisk;
  opts.spill_path = "/bistro/db/ingest.spill";
  PipelineRig rig(opts);
  IncomingFile f1 = rig.Land("CPU_POLL1_201009250400.txt");
  IncomingFile f2 = rig.Land("CPU_POLL1_201009250401.txt");
  IncomingFile f3 = rig.Land("CPU_POLL1_201009250402.txt");
  ASSERT_TRUE(rig.pipeline->Submit(f1).ok());
  ASSERT_TRUE(rig.pipeline->Submit(f2).ok());
  ASSERT_TRUE(rig.pipeline->Submit(f3).ok());
  IngestStats s = rig.pipeline->stats();
  EXPECT_EQ(s.spilled, 2u);
  EXPECT_EQ(s.spill_depth, 2u);
  EXPECT_EQ(s.queue_depth, 1u);
  // The operator journal names the spilled files.
  auto journal = rig.fs.ReadFile("/bistro/db/ingest.spill");
  ASSERT_TRUE(journal.ok());
  EXPECT_NE(journal->find(f2.name), std::string::npos);
  EXPECT_NE(journal->find(f3.name), std::string::npos);
  // Once the workers drain the queue, the spill empties and nothing is
  // lost — all three commit.
  rig.pipeline->Start();
  rig.pipeline->WaitIdle();
  rig.loop.RunUntilIdle();
  EXPECT_EQ(rig.committed.size(), 3u);
  EXPECT_TRUE(rig.errors.empty());
  EXPECT_EQ(rig.pipeline->stats().spill_depth, 0u);
  EXPECT_EQ(rig.receipts->ArrivalCount(), 3u);
  rig.pipeline->Shutdown();
}

TEST(IngestPipelineTest, BlockPolicyAbsorbsBurstWithoutLoss) {
  IngestPipeline::Options opts;
  opts.workers = 2;
  opts.queue_depth = 2;
  opts.batch = 4;
  opts.overload_policy = OverloadPolicy::kBlock;
  PipelineRig rig(opts);
  rig.pipeline->Start();
  for (int m = 0; m < 20; ++m) {
    ASSERT_TRUE(
        rig.pipeline
            ->Submit(rig.Land(StrFormat("CPU_POLL1_2010092504%02d.txt", m)))
            .ok());
  }
  rig.pipeline->WaitIdle();
  rig.loop.RunUntilIdle();
  EXPECT_EQ(rig.committed.size(), 20u);
  IngestStats s = rig.pipeline->stats();
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.spilled, 0u);
  EXPECT_EQ(s.committed, 20u);
  rig.pipeline->Shutdown();
}

TEST(IngestPipelineTest, StageFailureLeavesLandingAndReportsError) {
  IngestPipeline::Options opts;
  opts.workers = 1;
  PipelineRig rig(opts);
  // Queue the file before the workers start, then destroy its landing
  // copy: the worker's read must fail without wedging the pipeline.
  IncomingFile f = rig.Land("CPU_POLL1_201009250400.txt");
  ASSERT_TRUE(rig.pipeline->Submit(f).ok());
  ASSERT_TRUE(rig.fs.Delete(f.landing_path).ok());
  rig.pipeline->Start();
  rig.pipeline->WaitIdle();
  rig.loop.RunUntilIdle();
  EXPECT_TRUE(rig.committed.empty());
  ASSERT_EQ(rig.errors.size(), 1u);
  EXPECT_EQ(rig.pipeline->stats().errors, 1u);
  EXPECT_EQ(rig.pipeline->stats().in_flight, 0u);
  EXPECT_EQ(rig.receipts->ArrivalCount(), 0u);
  rig.pipeline->Shutdown();
}

// --------------------------------------------------- Server integration

constexpr char kServerConfig[] = R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
feed MEM { pattern "MEM_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU, MEM; method push; }
)";

struct ServerRig {
  SimClock clock{FromCivil(CivilTime{2010, 9, 25})};
  EventLoop loop{&clock};
  InMemoryFileSystem fs;
  LoopbackTransport transport{&loop};
  RecordingInvoker invoker;
  Logger logger{&clock};
  std::unique_ptr<BistroServer> server;

  explicit ServerRig(BistroServer::Options options = BistroServer::Options(),
                     const char* config_text = kServerConfig) {
    logger.SetMinLevel(LogLevel::kAlarm);
    auto config = ParseConfig(config_text);
    EXPECT_TRUE(config.ok()) << config.status();
    auto s = BistroServer::Create(options, *config, &fs, &transport, &loop,
                                  &invoker, &logger);
    EXPECT_TRUE(s.ok()) << s.status();
    server = std::move(*s);
  }
};

TEST(IngestServerTest, ThreadedServerDeliversEverythingExactlyOnce) {
  BistroServer::Options opts;
  opts.ingest.workers = 4;
  opts.ingest.batch = 8;
  ServerRig rig(opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  for (int m = 0; m < 12; ++m) {
    ASSERT_TRUE(rig.server
                    ->Deposit("p", StrFormat("CPU_POLL1_2010092504%02d.txt", m),
                              "cpu data")
                    .ok());
    ASSERT_TRUE(rig.server
                    ->Deposit("p", StrFormat("MEM_POLL1_2010092504%02d.txt", m),
                              "mem data")
                    .ok());
  }
  rig.server->ingest()->WaitIdle();
  rig.loop.RunUntilIdle();
  EXPECT_EQ(sink.files_received(), 24u);
  EXPECT_EQ(sink.duplicates(), 0u);
  EXPECT_EQ(rig.server->receipts()->ArrivalCount(), 24u);
  for (FileId id = 1; id <= 24; ++id) {
    EXPECT_TRUE(rig.server->receipts()->Delivered("s", id)) << id;
  }
  EXPECT_EQ(rig.server->ingest()->stats().committed, 24u);
}

TEST(IngestServerTest, ScanSkipsLeftoverWithCommittedReceipt) {
  ServerRig rig;
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntilIdle();
  EXPECT_EQ(sink.files_received(), 1u);
  // Simulate the crash window between receipt commit and landing-file
  // removal: the same name reappears in the landing zone. The scan must
  // finish the removal without double-ingesting.
  std::string leftover = "/bistro/landing/p/CPU_POLL1_201009250400.txt";
  ASSERT_TRUE(rig.fs.WriteFile(leftover, "x").ok());
  auto n = rig.server->ScanLandingZone();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_FALSE(rig.fs.Exists(leftover));
  rig.loop.RunUntilIdle();
  EXPECT_EQ(rig.server->receipts()->ArrivalCount(), 1u);
  EXPECT_EQ(sink.files_received(), 1u);
  EXPECT_EQ(sink.duplicates(), 0u);
}

TEST(IngestServerTest, CommitWithoutScheduleRecoveredByStartupBackfill) {
  // A crash can land between a receipt's group commit and the scheduler
  // handoff: the receipt exists, the staged bytes exist, but no delivery
  // was ever submitted. The startup backfill must recover it.
  InMemoryFileSystem fs;
  {
    auto db = ReceiptDatabase::Open(&fs, "/bistro/db");
    ASSERT_TRUE(db.ok());
    ArrivalReceipt r;
    r.name = "CPU_POLL1_201009250400.txt";
    r.rel_path = "CPU/2010/09/25/CPU_POLL1_0400.txt";
    r.staged_path = "/bistro/staging/" + r.rel_path;
    r.size = 1;
    r.arrival_time = FromCivil(CivilTime{2010, 9, 25});
    r.feeds = {"CPU"};
    std::vector<ArrivalReceipt> group = {r};
    ASSERT_TRUE((*db)->RecordArrivalGroup(&group).ok());
    ASSERT_TRUE(fs.WriteFile(group[0].staged_path, "x").ok());
  }
  // "Restart": a fresh server over the same filesystem.
  SimClock clock{FromCivil(CivilTime{2010, 9, 25, 1, 0, 0})};
  EventLoop loop{&clock};
  LoopbackTransport transport{&loop};
  RecordingInvoker invoker;
  Logger logger{&clock};
  logger.SetMinLevel(LogLevel::kAlarm);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  transport.Register("s", &sink);
  auto config = ParseConfig(kServerConfig);
  ASSERT_TRUE(config.ok());
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  ASSERT_TRUE(server.ok()) << server.status();
  loop.RunUntilIdle();
  EXPECT_EQ(sink.files_received(), 1u);
  EXPECT_TRUE((*server)->receipts()->Delivered("s", 1));
}

// ------------------------------------------------------- Config plumbing

TEST(IngestConfigTest, ParsesIngestBlockAndRoundTrips) {
  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_%i.txt"; }
ingest { workers 4; queue_depth 128; batch 16; overload_policy spill; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_TRUE(config->ingest.workers.has_value());
  EXPECT_EQ(*config->ingest.workers, 4);
  EXPECT_EQ(*config->ingest.queue_depth, 128);
  EXPECT_EQ(*config->ingest.batch, 16);
  EXPECT_EQ(*config->ingest.overload_policy, "spill");
  std::string formatted = FormatConfig(*config);
  EXPECT_NE(formatted.find("ingest {"), std::string::npos);
  auto reparsed = ParseConfig(formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed->ingest.overload_policy, "spill");
}

TEST(IngestConfigTest, RejectsBadIngestValues) {
  EXPECT_FALSE(ParseConfig("ingest { workers -1; }").ok());
  EXPECT_FALSE(ParseConfig("ingest { queue_depth 0; }").ok());
  EXPECT_FALSE(ParseConfig("ingest { batch 0; }").ok());
  EXPECT_FALSE(ParseConfig("ingest { overload_policy panic; }").ok());
  EXPECT_FALSE(ParseConfig("ingest { turbo 9; }").ok());
}

TEST(IngestConfigTest, ServerHonorsConfiguredPolicy) {
  ServerRig rig(BistroServer::Options(), R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method push; }
ingest { workers 2; queue_depth 64; batch 8; overload_policy shed_oldest; }
)");
  const IngestPipeline::Options& o = rig.server->ingest()->options();
  EXPECT_EQ(o.workers, 2);
  EXPECT_EQ(o.queue_depth, 64u);
  EXPECT_EQ(o.batch, 8u);
  EXPECT_EQ(o.overload_policy, OverloadPolicy::kShedOldest);
  EXPECT_TRUE(rig.server->ingest()->threaded());
}

}  // namespace
}  // namespace bistro

// Tests for the protocol encoding and the transports.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <memory>

#include "common/random.h"
#include "common/strings.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "sim/event_loop.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

Message SampleMessage() {
  Message msg;
  msg.type = MessageType::kFileData;
  msg.file_id = 12345;
  msg.feed = "SNMP.CPU";
  msg.name = "CPU_POLL1_201009250502.txt";
  msg.dest_path = "SNMP.CPU/2010/09/25/CPU_POLL1_0502.txt";
  msg.payload = "some,measurement,rows\n";
  msg.data_time = FromCivil(CivilTime{2010, 9, 25, 5, 2, 0});
  msg.batch_time = -42;  // negative must survive (zigzag)
  msg.batch_count = 3;
  return msg;
}

TEST(ProtocolTest, RoundTrip) {
  Message msg = SampleMessage();
  auto decoded = DecodeMessage(EncodeMessage(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, msg);
}

TEST(ProtocolTest, RoundTripAllTypes) {
  for (auto type : {MessageType::kFileData, MessageType::kFileNotify,
                    MessageType::kEndOfBatch, MessageType::kSourceNotify,
                    MessageType::kAck, MessageType::kHeartbeat}) {
    Message msg;
    msg.type = type;
    auto decoded = DecodeMessage(EncodeMessage(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, type);
  }
}

TEST(ProtocolTest, EmptyFieldsAndLargePayload) {
  Message msg;
  msg.type = MessageType::kFileData;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    msg.payload.mutable_str() += static_cast<char>(rng.Next() & 0xFF);
  }
  auto decoded = DecodeMessage(EncodeMessage(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, msg);
}

TEST(ProtocolTest, CorruptionDetected) {
  std::string wire = EncodeMessage(SampleMessage());
  for (size_t pos : {size_t{2}, wire.size() / 2, wire.size() - 1}) {
    std::string bad = wire;
    bad[pos] ^= 0x40;
    auto decoded = DecodeMessage(bad);
    // Either CRC catches it, or (if the flipped bit was in the length
    // prefix) framing fails. Never a silent wrong message.
    if (decoded.ok()) {
      EXPECT_EQ(*decoded, SampleMessage()) << "undetected corruption at " << pos;
      FAIL() << "corruption silently accepted at " << pos;
    }
  }
}

TEST(ProtocolTest, TruncationDetected) {
  std::string wire = EncodeMessage(SampleMessage());
  for (size_t len = 0; len < wire.size(); len += 7) {
    EXPECT_FALSE(DecodeMessage(std::string_view(wire).substr(0, len)).ok());
  }
}

// ---------------------------------------------------------------- Loopback

TEST(LoopbackTransportTest, DeliversToEndpoint) {
  SimClock clock(0);
  EventLoop loop(&clock);
  LoopbackTransport transport(&loop);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  transport.Register("sub", &sink);

  Status result = Status::Internal("callback never ran");
  transport.Send("sub", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(sink.files_received(), 1u);
  auto data = fs.ReadFile("/dest/SNMP.CPU/2010/09/25/CPU_POLL1_0502.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "some,measurement,rows\n");
}

TEST(LoopbackTransportTest, UnknownEndpointFails) {
  SimClock clock(0);
  EventLoop loop(&clock);
  LoopbackTransport transport(&loop);
  Status result;
  transport.Send("ghost", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  EXPECT_TRUE(result.IsUnavailable());
}

TEST(LoopbackTransportTest, EndpointErrorPropagates) {
  SimClock clock(0);
  EventLoop loop(&clock);
  LoopbackTransport transport(&loop);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  sink.SetFailing(true);
  transport.Register("sub", &sink);
  Status result;
  transport.Send("sub", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  EXPECT_TRUE(result.IsUnavailable());
  EXPECT_EQ(sink.files_received(), 0u);
}

// ---------------------------------------------------------------- SimTransport

TEST(SimTransportTest, DeliveryTakesSimulatedTime) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(1);
  SimNetwork net(&rng);
  LinkSpec link;
  link.bandwidth_bytes_per_sec = 1000;
  link.latency = 0;
  net.SetLink("sub", link);
  SimTransport transport(&loop, &net);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  transport.Register("sub", &sink);

  Message msg = SampleMessage();
  TimePoint done_at = -1;
  transport.Send("sub", msg, [&](const Status& s) {
    ASSERT_TRUE(s.ok()) << s;
    done_at = clock.Now();
  });
  loop.RunUntilIdle();
  // ~ (payload + name + 64) bytes at 1000 B/s.
  uint64_t bytes = msg.payload.size() + msg.name.size() + 64;
  EXPECT_EQ(done_at, static_cast<TimePoint>(bytes * kSecond / 1000));
  EXPECT_EQ(sink.files_received(), 1u);
}

TEST(SimTransportTest, OfflineSubscriberFailsFast) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(1);
  SimNetwork net(&rng);
  net.SetLink("sub", LinkSpec::Fast());
  net.SetOnline("sub", false);
  SimTransport transport(&loop, &net);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  transport.Register("sub", &sink);
  Status result;
  transport.Send("sub", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  EXPECT_TRUE(result.IsUnavailable());
}

TEST(FileSinkEndpointTest, DedupeSetBoundedByCapacity) {
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/d", /*dedupe_capacity=*/4);
  auto file = [](FileId id) {
    Message m;
    m.type = MessageType::kFileData;
    m.file_id = id;
    m.name = StrFormat("f%llu.txt", (unsigned long long)id);
    m.payload = "x";
    return m;
  };
  for (FileId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(sink.HandleMessage(file(id)).ok());
  }
  // Only the 4 newest ids are remembered; the 6 oldest were evicted.
  EXPECT_EQ(sink.files_received(), 10u);
  EXPECT_EQ(sink.dedupe_size(), 4u);
  EXPECT_EQ(sink.dedupe_evictions(), 6u);
  // A recent id redelivered is still absorbed as a duplicate...
  ASSERT_TRUE(sink.HandleMessage(file(10)).ok());
  EXPECT_EQ(sink.duplicates(), 1u);
  EXPECT_EQ(sink.files_received(), 10u);
  // ...while an evicted id re-lands (rewrites the same destination file,
  // which is safe) instead of growing the set without bound.
  ASSERT_TRUE(sink.HandleMessage(file(1)).ok());
  EXPECT_EQ(sink.duplicates(), 1u);
  EXPECT_EQ(sink.files_received(), 11u);
  EXPECT_EQ(sink.dedupe_size(), 4u);
}

TEST(FileSinkEndpointTest, CountsNotificationsAndBatches) {
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/d");
  Message notify;
  notify.type = MessageType::kFileNotify;
  Message eob;
  eob.type = MessageType::kEndOfBatch;
  int hooks = 0;
  sink.SetMessageHook([&](const Message&) { hooks++; });
  ASSERT_TRUE(sink.HandleMessage(notify).ok());
  ASSERT_TRUE(sink.HandleMessage(eob).ok());
  EXPECT_EQ(sink.notifications(), 1u);
  EXPECT_EQ(sink.batches(), 1u);
  EXPECT_EQ(hooks, 2);
}

// ------------------------------------------------------ SocketTransport

// Endpoint that records every message and answers with a fixed status.
class CollectingEndpoint : public Endpoint {
 public:
  Status HandleMessage(const Message& msg) override {
    messages.push_back(msg);
    return reply;
  }
  std::vector<Message> messages;
  Status reply = Status::OK();
};

// Runs the loop in short real-time slices until `pred` holds (or 10s).
void PumpUntil(EventLoop* loop, const std::function<bool()>& pred) {
  TimePoint deadline = RealClock::Get()->Now() + 10 * kSecond;
  while (!pred() && RealClock::Get()->Now() < deadline) {
    loop->RunFor(10 * kMillisecond);
  }
}

TEST(ParseInetAddressTest, AcceptsAndRejects) {
  auto ok = ParseInetAddress("127.0.0.1:4400");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->second, 4400);
  EXPECT_TRUE(ParseInetAddress("localhost:0").ok());
  EXPECT_TRUE(ParseInetAddress(":9100").ok());  // INADDR_ANY listener
  EXPECT_FALSE(ParseInetAddress("").ok());
  EXPECT_FALSE(ParseInetAddress("127.0.0.1").ok());
  EXPECT_FALSE(ParseInetAddress("bistro.example.com:9100").ok());
  EXPECT_FALSE(ParseInetAddress("127.0.0.1:notaport").ok());
  EXPECT_FALSE(ParseInetAddress("127.0.0.1:70000").ok());
}

TEST(SocketTransportTest, SendsAndAcksOverRealTcp) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  SocketTransport server(&loop, server_opts);
  CollectingEndpoint inbound;
  server.SetInboundEndpoint(&inbound);
  ASSERT_TRUE(server.Listen().ok());
  ASSERT_GT(server.listen_port(), 0);

  SocketTransport client(&loop, {});
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server.listen_port()));

  Message msg = SampleMessage();
  Status result = Status::TimedOut("no callback");
  bool done = false;
  client.Send("srv", msg, [&](const Status& s) {
    result = s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok()) << result;
  ASSERT_EQ(inbound.messages.size(), 1u);
  // net_seq is stamped by the transport; everything else round-trips.
  Message got = inbound.messages[0];
  got.net_seq = 0;
  EXPECT_EQ(got, msg);
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(server.accepts(), 1u);
  EXPECT_TRUE(client.PeerConnected("srv"));
}

TEST(SocketTransportTest, RemoteHandlerErrorPropagatesThroughAck) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "localhost:0";
  SocketTransport server(&loop, server_opts);
  CollectingEndpoint inbound;
  inbound.reply = Status::Corruption("payload checksum mismatch");
  server.SetInboundEndpoint(&inbound);
  ASSERT_TRUE(server.Listen().ok());

  SocketTransport client(&loop, {});
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server.listen_port()));

  Status result;
  bool done = false;
  client.Send("srv", SampleMessage(), [&](const Status& s) {
    result = s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsCorruption()) << result;
  EXPECT_NE(result.message().find("checksum"), std::string::npos);
}

// Large payloads over loopback force partial writes (the socket buffer is
// far smaller than the queued bytes); rapid-fire sends interleave many
// frames in single reads. Order and integrity must survive both.
TEST(SocketTransportTest, PartialWritesAndInterleavedFramesKeepOrder) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  SocketTransport server(&loop, server_opts);
  CollectingEndpoint inbound;
  server.SetInboundEndpoint(&inbound);
  ASSERT_TRUE(server.Listen().ok());

  SocketTransport client(&loop, {});
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server.listen_port()));

  constexpr int kCount = 64;
  Rng rng(7);
  int acked = 0;
  int failed = 0;
  std::vector<std::string> payloads;
  for (int i = 0; i < kCount; i++) {
    Message msg;
    msg.type = MessageType::kFileData;
    msg.file_id = static_cast<uint64_t>(i) + 1;
    msg.feed = "BULK";
    msg.name = "file_" + std::to_string(i);
    // Mix tiny frames (interleaving) with ~256 KiB frames (partial writes).
    size_t size = (i % 4 == 0) ? (256u << 10) + rng.Uniform(1024) : rng.Uniform(64) + 1;
    std::string payload;
    payload.reserve(size);
    for (size_t b = 0; b < size; b++) {
      payload.push_back(static_cast<char>('a' + (b + i) % 26));
    }
    msg.payload = payload;
    payloads.push_back(std::move(payload));
    client.Send("srv", msg, [&](const Status& s) { s.ok() ? acked++ : failed++; });
  }
  PumpUntil(&loop, [&] { return acked + failed == kCount; });
  EXPECT_EQ(acked, kCount);
  EXPECT_EQ(failed, 0);
  ASSERT_EQ(inbound.messages.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; i++) {
    EXPECT_EQ(inbound.messages[i].name, "file_" + std::to_string(i));
    EXPECT_EQ(inbound.messages[i].payload.str(), payloads[i]) << i;
  }
}

TEST(SocketTransportTest, SendBundleAcksEveryItem) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  SocketTransport server(&loop, server_opts);
  CollectingEndpoint inbound;
  server.SetInboundEndpoint(&inbound);
  ASSERT_TRUE(server.Listen().ok());

  SocketTransport client(&loop, {});
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server.listen_port()));

  int acked = 0;
  std::vector<BundleItem> items;
  for (int i = 0; i < 5; i++) {
    BundleItem item;
    item.msg = SampleMessage();
    item.msg.file_id = 100 + static_cast<uint64_t>(i);
    item.msg.name = "bundle_" + std::to_string(i);
    item.done = [&](const Status& s) {
      ASSERT_TRUE(s.ok()) << s;
      acked++;
    };
    items.push_back(std::move(item));
  }
  client.SendBundle("srv", std::move(items));
  PumpUntil(&loop, [&] { return acked == 5; });
  EXPECT_EQ(acked, 5);
  ASSERT_EQ(inbound.messages.size(), 5u);
  EXPECT_EQ(inbound.messages[4].name, "bundle_4");
}

TEST(SocketTransportTest, UnknownEndpointFailsUnavailable) {
  EventLoop loop(RealClock::Get());
  SocketTransport client(&loop, {});
  Status result;
  bool done = false;
  client.Send("nobody", SampleMessage(), [&](const Status& s) {
    result = s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsUnavailable()) << result;
}

TEST(SocketTransportTest, LocalEndpointWinsOverPeerName) {
  EventLoop loop(RealClock::Get());
  SocketTransport transport(&loop, {});
  CollectingEndpoint local;
  transport.AddPeer("dual", "127.0.0.1:1");  // nothing listens there
  transport.Register("dual", &local);
  bool done = false;
  Status result;
  transport.Send("dual", SampleMessage(), [&](const Status& s) {
    result = s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok()) << result;
  EXPECT_EQ(local.messages.size(), 1u);
}

TEST(SocketTransportTest, QueueCapRejectsOversizedBacklog) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options opts;
  opts.outbound_queue_bytes = 4096;
  SocketTransport client(&loop, opts);
  client.AddPeer("srv", "127.0.0.1:1");  // never connects; sends just queue

  Message big = SampleMessage();
  big.payload = std::string(8192, 'x');
  Status result;
  bool done = false;
  client.Send("srv", big, [&](const Status& s) {
    result = s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsUnavailable()) << result;
  EXPECT_NE(result.message().find("queue"), std::string::npos) << result;
}

TEST(SocketTransportTest, AckTimeoutFailsSendAndDropsConnection) {
  EventLoop loop(RealClock::Get());
  // Raw listener that completes handshakes (kernel backlog) but never
  // reads or acks: the peer looks connected yet is effectively dead.
  int raw = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(raw, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(raw, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  int port = ntohs(addr.sin_port);

  SocketTransport::Options opts;
  opts.ack_timeout = 200 * kMillisecond;
  opts.reconnect_backoff_min = kHour;  // keep it down once dropped
  opts.reconnect_backoff_max = kHour;
  SocketTransport client(&loop, opts);
  client.AddPeer("dead", "127.0.0.1:" + std::to_string(port));

  Status result;
  bool done = false;
  client.Send("dead", SampleMessage(), [&](const Status& s) {
    result = s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.IsUnavailable()) << result;
  EXPECT_GE(client.ack_timeouts(), 1u);
  EXPECT_GE(client.disconnects(), 1u);
  EXPECT_FALSE(client.PeerConnected("dead"));
  ::close(raw);
}

// A peer that dies and comes back on a new port is reachable again after
// re-addressing (the upstream restart path) — queued sends survive the
// outage as delivery-engine retries would.
TEST(SocketTransportTest, ReconnectsAfterPeerRestart) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  auto server = std::make_unique<SocketTransport>(&loop, server_opts);
  CollectingEndpoint first_inbound;
  server->SetInboundEndpoint(&first_inbound);
  ASSERT_TRUE(server->Listen().ok());

  SocketTransport::Options client_opts;
  client_opts.reconnect_backoff_min = 10 * kMillisecond;
  client_opts.reconnect_backoff_max = 50 * kMillisecond;
  SocketTransport client(&loop, client_opts);
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server->listen_port()));

  bool done = false;
  client.Send("srv", SampleMessage(), [&](const Status& s) {
    ASSERT_TRUE(s.ok()) << s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  ASSERT_TRUE(done);

  // Kill the server; the established connection drops.
  server.reset();
  PumpUntil(&loop, [&] { return !client.PeerConnected("srv"); });
  EXPECT_FALSE(client.PeerConnected("srv"));

  // An in-outage send fails Unavailable (the delivery engine would retry).
  Status outage;
  bool outage_done = false;
  client.Send("srv", SampleMessage(), [&](const Status& s) {
    outage = s;
    outage_done = true;
  });
  PumpUntil(&loop, [&] { return outage_done; });

  // Restart on a fresh ephemeral port and re-address the peer.
  SocketTransport revived(&loop, server_opts);
  CollectingEndpoint second_inbound;
  revived.SetInboundEndpoint(&second_inbound);
  ASSERT_TRUE(revived.Listen().ok());
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(revived.listen_port()));

  bool again = false;
  client.Send("srv", SampleMessage(), [&](const Status& s) {
    ASSERT_TRUE(s.ok()) << s;
    again = true;
  });
  PumpUntil(&loop, [&] { return again; });
  ASSERT_TRUE(again);
  EXPECT_EQ(second_inbound.messages.size(), 1u);
  EXPECT_GE(client.connects(), 2u);
}

// A reader that dies mid-stream turns our connection into a write to a
// closed socket. Every write(2)-family call in the transport goes through
// the single MSG_NOSIGNAL send() in FlushWrites, so the process survives
// with a retryable error instead of dying on SIGPIPE. SIGPIPE is reset to
// its default disposition here to prove the transport doesn't depend on
// the embedding process ignoring it.
TEST(SocketTransportTest, SigpipeSafeWhenReaderDiesMidStream) {
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGPIPE, &dfl, &old), 0);

  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  auto server = std::make_unique<SocketTransport>(&loop, server_opts);
  CollectingEndpoint inbound;
  server->SetInboundEndpoint(&inbound);
  ASSERT_TRUE(server->Listen().ok());

  SocketTransport::Options client_opts;
  client_opts.reconnect_backoff_min = kHour;  // no reconnect noise
  client_opts.reconnect_backoff_max = kHour;
  client_opts.ack_timeout = 300 * kMillisecond;  // bound the failure path
  SocketTransport client(&loop, client_opts);
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server->listen_port()));

  // Establish the connection with one acked message.
  bool warm = false;
  client.Send("srv", SampleMessage(), [&](const Status& s) {
    ASSERT_TRUE(s.ok()) << s;
    warm = true;
  });
  PumpUntil(&loop, [&] { return warm; });
  ASSERT_TRUE(warm);

  // Kill the reader, then stream large frames into the dead connection.
  // Once the RST lands, send() returns EPIPE — which must surface as a
  // failed callback (directly, or via the ack-timeout sweep for frames
  // that made it into the socket buffer), never as a fatal signal.
  server.reset();
  int failed = 0;
  int completed = 0;
  for (int i = 0; i < 8; i++) {
    Message big = SampleMessage();
    big.name = "post_mortem_" + std::to_string(i);
    big.payload = std::string(512u << 10, 'x');
    client.Send("srv", big, [&](const Status& s) {
      completed++;
      if (!s.ok()) {
        EXPECT_TRUE(s.IsUnavailable()) << s;
        failed++;
      }
    });
  }
  PumpUntil(&loop, [&] { return completed == 8; });
  EXPECT_EQ(completed, 8);  // reaching here at all means no SIGPIPE death
  EXPECT_GE(failed, 1);
  ASSERT_EQ(sigaction(SIGPIPE, &old, nullptr), 0);
}

// Records every PeerObserver callback.
class RecordingObserver : public SocketTransport::PeerObserver {
 public:
  void OnPeerConnected(const std::string&) override { connected++; }
  void OnPeerConnectFailed(const std::string&, const Status&) override {
    connect_failed++;
  }
  void OnPeerDisconnected(const std::string&, const Status&) override {
    disconnected++;
  }
  void OnPeerAckTimeout(const std::string&) override { ack_timeouts++; }
  void OnPeerAck(const std::string&, const Status& s) override {
    acks++;
    last_ack_status = s;
  }
  int connected = 0;
  int connect_failed = 0;
  int disconnected = 0;
  int ack_timeouts = 0;
  int acks = 0;
  Status last_ack_status;
};

TEST(SocketTransportTest, ObserverSeesConnectAckAndDisconnect) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options server_opts;
  server_opts.listen_address = "127.0.0.1:0";
  auto server = std::make_unique<SocketTransport>(&loop, server_opts);
  CollectingEndpoint inbound;
  server->SetInboundEndpoint(&inbound);
  ASSERT_TRUE(server->Listen().ok());

  SocketTransport::Options client_opts;
  client_opts.reconnect_backoff_min = 10 * kMillisecond;
  client_opts.reconnect_backoff_max = 20 * kMillisecond;
  SocketTransport client(&loop, client_opts);
  RecordingObserver observer;
  client.SetPeerObserver(&observer);
  client.AddPeer("srv", "127.0.0.1:" + std::to_string(server->listen_port()));

  bool done = false;
  client.Send("srv", SampleMessage(), [&](const Status&) { done = true; });
  PumpUntil(&loop, [&] { return done; });
  EXPECT_EQ(observer.connected, 1);
  EXPECT_EQ(observer.acks, 1);
  EXPECT_TRUE(observer.last_ack_status.ok());

  // Remote handler errors still arrive as acks: the wire works.
  inbound.reply = Status::Corruption("bad");
  done = false;
  client.Send("srv", SampleMessage(), [&](const Status&) { done = true; });
  PumpUntil(&loop, [&] { return done; });
  EXPECT_EQ(observer.acks, 2);
  EXPECT_TRUE(observer.last_ack_status.IsCorruption());

  // Peer death: one disconnect, then connect-failed on each reconnect try.
  server.reset();
  PumpUntil(&loop, [&] { return observer.connect_failed >= 1; });
  EXPECT_EQ(observer.disconnected, 1);
  EXPECT_GE(observer.connect_failed, 1);
}

TEST(SocketTransportTest, AckTimeoutReportsOnceNotAlsoAsDisconnect) {
  EventLoop loop(RealClock::Get());
  // Handshake-only listener: connects succeed, nothing is ever acked.
  int raw = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(raw, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(raw, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  SocketTransport::Options opts;
  opts.ack_timeout = 100 * kMillisecond;
  opts.reconnect_backoff_min = kHour;
  opts.reconnect_backoff_max = kHour;
  SocketTransport client(&loop, opts);
  RecordingObserver observer;
  client.SetPeerObserver(&observer);
  client.AddPeer("dead", "127.0.0.1:" + std::to_string(ntohs(addr.sin_port)));

  bool done = false;
  client.Send("dead", SampleMessage(), [&](const Status&) { done = true; });
  PumpUntil(&loop, [&] { return done; });
  // The drop reports as exactly one ack-timeout — not a second time as a
  // disconnect — so a health tracker weighs the failure once.
  EXPECT_EQ(observer.ack_timeouts, 1);
  EXPECT_EQ(observer.disconnected, 0);
  EXPECT_EQ(observer.acks, 0);
  ::close(raw);
}

TEST(SocketTransportTest, SendGateFailsFastWithoutQueueing) {
  EventLoop loop(RealClock::Get());
  SocketTransport client(&loop, {});
  client.AddPeer("srv", "127.0.0.1:1");  // never connects
  client.SetSendGate([](const std::string& peer, const Message& msg) {
    if (msg.type == MessageType::kHeartbeat) return Status::OK();
    return Status::Unavailable("peer " + peer + " is down (circuit open)");
  });

  Status result;
  bool done = false;
  client.Send("srv", SampleMessage(), [&](const Status& s) {
    result = s;
    done = true;
  });
  PumpUntil(&loop, [&] { return done; });
  EXPECT_TRUE(result.IsUnavailable()) << result;
  EXPECT_NE(result.message().find("circuit"), std::string::npos);
  EXPECT_EQ(client.gate_rejects(), 1u);
  // Nothing queued: the rejected send never consumed outbound bytes.
  EXPECT_EQ(client.GetPeerStats("srv").queued_bytes, 0u);

  // Heartbeats pass the gate: the probe queues toward the (unreachable)
  // peer instead of being rejected. Checked before running the loop —
  // the refused connect then fails it like any other queued send.
  Message probe;
  probe.type = MessageType::kHeartbeat;
  client.Send("srv", probe, [](const Status&) {});
  EXPECT_EQ(client.gate_rejects(), 1u);
  EXPECT_GT(client.GetPeerStats("srv").queued_bytes, 0u);
  loop.RunFor(10 * kMillisecond);

  std::vector<BundleItem> items;
  int bundle_failed = 0;
  for (int i = 0; i < 3; i++) {
    BundleItem item;
    item.msg = SampleMessage();
    item.done = [&](const Status& s) {
      if (s.IsUnavailable()) bundle_failed++;
    };
    items.push_back(std::move(item));
  }
  client.SendBundle("srv", std::move(items));
  PumpUntil(&loop, [&] { return bundle_failed == 3; });
  EXPECT_EQ(bundle_failed, 3);  // one gate verdict fails every item
}

TEST(SocketTransportTest, PeerStatsTrackReconnectsAndOutage) {
  EventLoop loop(RealClock::Get());
  SocketTransport::Options opts;
  opts.reconnect_backoff_min = 10 * kMillisecond;
  opts.reconnect_backoff_max = 20 * kMillisecond;
  SocketTransport client(&loop, opts);
  MetricsRegistry registry;
  client.AttachMetrics(&registry);

  EXPECT_FALSE(client.GetPeerStats("ghost").known);

  client.AddPeer("srv", "127.0.0.1:1");  // unreachable
  bool done = false;
  client.Send("srv", SampleMessage(), [&](const Status&) { done = true; });
  // Let a few reconnect attempts fail.
  TimePoint until = RealClock::Get()->Now() + 300 * kMillisecond;
  while (RealClock::Get()->Now() < until) loop.RunFor(20 * kMillisecond);

  SocketTransport::PeerNetStats stats = client.GetPeerStats("srv");
  ASSERT_TRUE(stats.known);
  EXPECT_FALSE(stats.connected);
  EXPECT_GE(stats.reconnect_attempts, 2u);
  EXPECT_GT(stats.disconnected_total, 0);
  EXPECT_EQ(stats.last_ack_age, -1);
  EXPECT_EQ(client.PeerNames(), std::vector<std::string>{"srv"});

  // The per-peer series mirror the stats.
  bool saw_reconnects = false;
  for (const MetricSnapshot& m : registry.Collect()) {
    if (m.name == "bistro_net_peer_srv_reconnects_total") {
      saw_reconnects = true;
      EXPECT_GE(m.counter_value, 2u);
    }
  }
  EXPECT_TRUE(saw_reconnects);
}

}  // namespace
}  // namespace bistro

// Tests for the protocol encoding and the transports.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "net/transport.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

Message SampleMessage() {
  Message msg;
  msg.type = MessageType::kFileData;
  msg.file_id = 12345;
  msg.feed = "SNMP.CPU";
  msg.name = "CPU_POLL1_201009250502.txt";
  msg.dest_path = "SNMP.CPU/2010/09/25/CPU_POLL1_0502.txt";
  msg.payload = "some,measurement,rows\n";
  msg.data_time = FromCivil(CivilTime{2010, 9, 25, 5, 2, 0});
  msg.batch_time = -42;  // negative must survive (zigzag)
  msg.batch_count = 3;
  return msg;
}

TEST(ProtocolTest, RoundTrip) {
  Message msg = SampleMessage();
  auto decoded = DecodeMessage(EncodeMessage(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, msg);
}

TEST(ProtocolTest, RoundTripAllTypes) {
  for (auto type : {MessageType::kFileData, MessageType::kFileNotify,
                    MessageType::kEndOfBatch, MessageType::kSourceNotify,
                    MessageType::kAck, MessageType::kHeartbeat}) {
    Message msg;
    msg.type = type;
    auto decoded = DecodeMessage(EncodeMessage(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, type);
  }
}

TEST(ProtocolTest, EmptyFieldsAndLargePayload) {
  Message msg;
  msg.type = MessageType::kFileData;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    msg.payload.mutable_str() += static_cast<char>(rng.Next() & 0xFF);
  }
  auto decoded = DecodeMessage(EncodeMessage(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, msg);
}

TEST(ProtocolTest, CorruptionDetected) {
  std::string wire = EncodeMessage(SampleMessage());
  for (size_t pos : {size_t{2}, wire.size() / 2, wire.size() - 1}) {
    std::string bad = wire;
    bad[pos] ^= 0x40;
    auto decoded = DecodeMessage(bad);
    // Either CRC catches it, or (if the flipped bit was in the length
    // prefix) framing fails. Never a silent wrong message.
    if (decoded.ok()) {
      EXPECT_EQ(*decoded, SampleMessage()) << "undetected corruption at " << pos;
      FAIL() << "corruption silently accepted at " << pos;
    }
  }
}

TEST(ProtocolTest, TruncationDetected) {
  std::string wire = EncodeMessage(SampleMessage());
  for (size_t len = 0; len < wire.size(); len += 7) {
    EXPECT_FALSE(DecodeMessage(std::string_view(wire).substr(0, len)).ok());
  }
}

// ---------------------------------------------------------------- Loopback

TEST(LoopbackTransportTest, DeliversToEndpoint) {
  SimClock clock(0);
  EventLoop loop(&clock);
  LoopbackTransport transport(&loop);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  transport.Register("sub", &sink);

  Status result = Status::Internal("callback never ran");
  transport.Send("sub", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(sink.files_received(), 1u);
  auto data = fs.ReadFile("/dest/SNMP.CPU/2010/09/25/CPU_POLL1_0502.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "some,measurement,rows\n");
}

TEST(LoopbackTransportTest, UnknownEndpointFails) {
  SimClock clock(0);
  EventLoop loop(&clock);
  LoopbackTransport transport(&loop);
  Status result;
  transport.Send("ghost", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  EXPECT_TRUE(result.IsUnavailable());
}

TEST(LoopbackTransportTest, EndpointErrorPropagates) {
  SimClock clock(0);
  EventLoop loop(&clock);
  LoopbackTransport transport(&loop);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  sink.SetFailing(true);
  transport.Register("sub", &sink);
  Status result;
  transport.Send("sub", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  EXPECT_TRUE(result.IsUnavailable());
  EXPECT_EQ(sink.files_received(), 0u);
}

// ---------------------------------------------------------------- SimTransport

TEST(SimTransportTest, DeliveryTakesSimulatedTime) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(1);
  SimNetwork net(&rng);
  LinkSpec link;
  link.bandwidth_bytes_per_sec = 1000;
  link.latency = 0;
  net.SetLink("sub", link);
  SimTransport transport(&loop, &net);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  transport.Register("sub", &sink);

  Message msg = SampleMessage();
  TimePoint done_at = -1;
  transport.Send("sub", msg, [&](const Status& s) {
    ASSERT_TRUE(s.ok()) << s;
    done_at = clock.Now();
  });
  loop.RunUntilIdle();
  // ~ (payload + name + 64) bytes at 1000 B/s.
  uint64_t bytes = msg.payload.size() + msg.name.size() + 64;
  EXPECT_EQ(done_at, static_cast<TimePoint>(bytes * kSecond / 1000));
  EXPECT_EQ(sink.files_received(), 1u);
}

TEST(SimTransportTest, OfflineSubscriberFailsFast) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(1);
  SimNetwork net(&rng);
  net.SetLink("sub", LinkSpec::Fast());
  net.SetOnline("sub", false);
  SimTransport transport(&loop, &net);
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/dest");
  transport.Register("sub", &sink);
  Status result;
  transport.Send("sub", SampleMessage(), [&](const Status& s) { result = s; });
  loop.RunUntilIdle();
  EXPECT_TRUE(result.IsUnavailable());
}

TEST(FileSinkEndpointTest, DedupeSetBoundedByCapacity) {
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/d", /*dedupe_capacity=*/4);
  auto file = [](FileId id) {
    Message m;
    m.type = MessageType::kFileData;
    m.file_id = id;
    m.name = StrFormat("f%llu.txt", (unsigned long long)id);
    m.payload = "x";
    return m;
  };
  for (FileId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(sink.HandleMessage(file(id)).ok());
  }
  // Only the 4 newest ids are remembered; the 6 oldest were evicted.
  EXPECT_EQ(sink.files_received(), 10u);
  EXPECT_EQ(sink.dedupe_size(), 4u);
  EXPECT_EQ(sink.dedupe_evictions(), 6u);
  // A recent id redelivered is still absorbed as a duplicate...
  ASSERT_TRUE(sink.HandleMessage(file(10)).ok());
  EXPECT_EQ(sink.duplicates(), 1u);
  EXPECT_EQ(sink.files_received(), 10u);
  // ...while an evicted id re-lands (rewrites the same destination file,
  // which is safe) instead of growing the set without bound.
  ASSERT_TRUE(sink.HandleMessage(file(1)).ok());
  EXPECT_EQ(sink.duplicates(), 1u);
  EXPECT_EQ(sink.files_received(), 11u);
  EXPECT_EQ(sink.dedupe_size(), 4u);
}

TEST(FileSinkEndpointTest, CountsNotificationsAndBatches) {
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/d");
  Message notify;
  notify.type = MessageType::kFileNotify;
  Message eob;
  eob.type = MessageType::kEndOfBatch;
  int hooks = 0;
  sink.SetMessageHook([&](const Message&) { hooks++; });
  ASSERT_TRUE(sink.HandleMessage(notify).ok());
  ASSERT_TRUE(sink.HandleMessage(eob).ok());
  EXPECT_EQ(sink.notifications(), 1u);
  EXPECT_EQ(sink.batches(), 1u);
  EXPECT_EQ(hooks, 2);
}

}  // namespace
}  // namespace bistro

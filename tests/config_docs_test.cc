// Keeps the operator documentation honest: every ```bistro fenced snippet
// in docs/ must parse with the real config parser, every ```bistro-fault
// snippet with the real fault-plan parser, configs/example.conf must load
// and round-trip, and OPERATIONS.md must mention every key the parser
// accepts — so neither the docs nor the example can silently rot.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/parser.h"
#include "fault/plan.h"

namespace bistro {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string DocPath(const char* rel) {
  return std::string(BISTRO_REPO_ROOT) + "/" + rel;
}

struct Snippet {
  int line = 0;  // line of the opening fence, for failure messages
  std::string text;
};

// Extracts fenced code blocks whose info string is exactly `tag`.
std::vector<Snippet> ExtractFenced(const std::string& markdown,
                                   const std::string& tag) {
  std::vector<Snippet> out;
  std::istringstream in(markdown);
  std::string line;
  int lineno = 0;
  const std::string open = "```" + tag;
  bool in_block = false;
  Snippet current;
  while (std::getline(in, line)) {
    ++lineno;
    if (!in_block) {
      if (line == open) {
        in_block = true;
        current = Snippet{lineno, ""};
      }
    } else if (line.rfind("```", 0) == 0) {
      in_block = false;
      out.push_back(std::move(current));
    } else {
      current.text += line;
      current.text += '\n';
    }
  }
  EXPECT_FALSE(in_block) << "unterminated ```" << tag << " fence";
  return out;
}

void ExpectDocConfigsParse(const char* rel, size_t min_blocks) {
  const std::string doc = ReadFileOrDie(DocPath(rel));
  const std::vector<Snippet> snippets = ExtractFenced(doc, "bistro");
  EXPECT_GE(snippets.size(), min_blocks)
      << rel << ": fence extraction found fewer ```bistro blocks than "
      << "expected — did the tag convention change?";
  for (const Snippet& s : snippets) {
    auto config = ParseConfig(s.text);
    EXPECT_TRUE(config.ok()) << rel << " snippet at line " << s.line
                             << " does not parse: "
                             << config.status().message() << "\n"
                             << s.text;
  }
}

TEST(ConfigDocsTest, ExampleConfParsesAndRoundTrips) {
  const std::string text = ReadFileOrDie(DocPath("configs/example.conf"));
  auto config = ParseConfig(text);
  ASSERT_TRUE(config.ok()) << config.status().message();
  EXPECT_FALSE(config->feeds.empty());
  EXPECT_FALSE(config->subscribers.empty());

  auto reparsed = ParseConfig(FormatConfig(*config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(FormatConfig(*config), FormatConfig(*reparsed));
}

TEST(ConfigDocsTest, OperationsSnippetsParse) {
  ExpectDocConfigsParse("docs/OPERATIONS.md", 4);
}

TEST(ConfigDocsTest, PatternsSnippetsParse) {
  ExpectDocConfigsParse("docs/PATTERNS.md", 3);
}

// The ingestion-plan operator guide: the opening grammar block plus the
// four worked recipes (multi-tenant quota, A/B split, archival vs
// real-time, sampled feed) must all go through the real parser.
TEST(ConfigDocsTest, PlansSnippetsParse) {
  ExpectDocConfigsParse("docs/PLANS.md", 5);
}

TEST(ConfigDocsTest, PlansGuideCoversEveryPlanKey) {
  const std::string doc = ReadFileOrDie(DocPath("docs/PLANS.md"));
  // Every keyword and enum value of the plan grammar (mirrors
  // ParsePlan in src/config/parser.cc).
  const char* kPlanKeys[] = {
      "plan", "route", "split", "to", "replicate", "sample", "transform",
      "none", "rle", "lz", "decompress", "quota", "quota_bytes", "per",
      "slo", "interactive", "standard", "bulk", "enrich", "provenance",
      "checksum",
  };
  for (const char* key : kPlanKeys) {
    EXPECT_NE(doc.find(key), std::string::npos)
        << "docs/PLANS.md never mentions plan key '" << key << "'";
  }
}

TEST(ConfigDocsTest, OperationsFaultSnippetsParse) {
  const std::string doc = ReadFileOrDie(DocPath("docs/OPERATIONS.md"));
  const std::vector<Snippet> snippets = ExtractFenced(doc, "bistro-fault");
  EXPECT_GE(snippets.size(), 1u);
  for (const Snippet& s : snippets) {
    auto plan = ParseFaultPlan(s.text);
    EXPECT_TRUE(plan.ok()) << "OPERATIONS.md fault snippet at line " << s.line
                           << " does not parse: " << plan.status().message()
                           << "\n"
                           << s.text;
  }
}

TEST(ConfigDocsTest, OperationsCoversEveryParserKey) {
  const std::string doc = ReadFileOrDie(DocPath("docs/OPERATIONS.md"));
  // Every keyword and enum value the parsers accept (mirrors
  // src/config/parser.cc and src/fault/plan.cc). Adding a config key
  // without documenting it fails here.
  const char* kKeys[] = {
      // top-level blocks
      "group", "feed", "subscriber", "delivery", "ingest", "analyzer",
      // feed attributes + codec names
      "pattern", "normalize", "compress", "decompress", "tardiness",
      "none", "rle", "lz",
      // subscriber attributes + enum values
      "host", "destination", "feeds", "method", "push", "notify",
      "window", "trigger",
      // trigger grammar
      "file", "punctuation", "batch", "count", "timeout", "exec", "remote",
      // delivery tuning
      "retry_backoff_min", "retry_backoff", "retry_backoff_max",
      "retry_multiplier", "retry_jitter", "max_attempts", "offline_after",
      "probe_interval", "coalesce_bytes", "cache_bytes", "receipt_group",
      "receipt_flush_interval",
      // ingest tuning + overload policies
      "workers", "queue_depth", "overload_policy",
      "block", "shed_oldest", "spill",
      // analyzer tuning
      "max_corpus", "shards", "cycle_interval",
      // fan-out: subscriber groups, dissemination relays, receipt shards
      "members", "straggler_after", "relay", "children", "spool", "receipts",
      // classifier strategy
      "classifier", "mode", "automaton", "trie", "linear",
      // federation: server { } identity/socket tuning and peer blocks
      "server", "listen", "max_frame_bytes", "outbound_queue_bytes",
      "reconnect_backoff_min", "reconnect_backoff_max", "ack_timeout",
      "peer", "address", "shard", "of",
      // peer health + failover
      "suspect_after", "down_after", "failover", "replicas",
      // ingestion plans (full reference in docs/PLANS.md)
      "plan", "route", "split", "to", "replicate", "sample", "transform",
      "quota", "quota_bytes", "per", "slo", "interactive", "standard",
      "bulk", "enrich", "provenance", "checksum",
      // fault plans
      "fault_plan", "seed", "write_error", "torn_write", "sync_error",
      "scope", "send_failure", "corrupt", "ack_loss", "flap", "degrade",
      // network-partition link directives
      "partition", "blackhole", "slow_link", "heal", "at",
      // booleans
      "on", "off",
  };
  for (const char* key : kKeys) {
    EXPECT_NE(doc.find(key), std::string::npos)
        << "docs/OPERATIONS.md never mentions config key '" << key << "'";
  }
}

}  // namespace
}  // namespace bistro

// Tests for the extension modules: the mini streaming warehouse (the
// paper's motivating subscriber), the Max-Benefit scheduling policy, and
// atomic-feed group suggestion (the paper's §5.1 future work).

#include <gtest/gtest.h>

#include "analyzer/grouping.h"
#include "common/strings.h"
#include "compress/codec.h"
#include "config/parser.h"
#include "core/server.h"
#include "sched/policy.h"
#include "vfs/memfs.h"
#include "warehouse/warehouse.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- Warehouse

Message FileFor(TimePoint data_time, const std::string& name,
                std::string rows) {
  Message msg;
  msg.type = MessageType::kFileData;
  msg.name = name;
  msg.payload = std::move(rows);
  msg.data_time = data_time;
  return msg;
}

TEST(WarehouseTest, AggregatesRowsPerPartition) {
  StreamWarehouse wh(5 * kMinute);
  TimePoint t0 = FromCivil(CivilTime{2010, 9, 25, 4, 0, 0});
  ASSERT_TRUE(wh.HandleMessage(FileFor(t0, "a", "router_a,cpu,10\nrouter_b,cpu,20\n")).ok());
  ASSERT_TRUE(wh.HandleMessage(FileFor(t0 + kMinute, "b", "router_a,cpu,5\n")).ok());
  EXPECT_EQ(wh.dirty_count(), 1u);  // same partition
  EXPECT_EQ(wh.RecomputeDirty(), 1u);
  auto view = wh.View(t0 + 2 * kMinute);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->raw_files, 2u);
  EXPECT_EQ(view->rows, 3u);
  EXPECT_EQ(view->by_entity.at("router_a").first, 2u);
  EXPECT_DOUBLE_EQ(view->by_entity.at("router_a").second, 15.0);
  EXPECT_DOUBLE_EQ(view->by_entity.at("router_b").second, 20.0);
  // Uncomputed partitions report NotFound.
  EXPECT_TRUE(wh.View(t0 + kHour).status().IsNotFound());
}

TEST(WarehouseTest, PartitionBoundaries) {
  StreamWarehouse wh(5 * kMinute);
  TimePoint t0 = FromCivil(CivilTime{2010, 9, 25, 4, 0, 0});
  ASSERT_TRUE(wh.HandleMessage(FileFor(t0 + 4 * kMinute, "a", "x,1\n")).ok());
  ASSERT_TRUE(wh.HandleMessage(FileFor(t0 + 5 * kMinute, "b", "x,2\n")).ok());
  EXPECT_EQ(wh.dirty_count(), 2u);
  EXPECT_EQ(wh.RecomputeDirty(), 2u);
  EXPECT_DOUBLE_EQ(wh.View(t0)->by_entity.at("x").second, 1.0);
  EXPECT_DOUBLE_EQ(wh.View(t0 + 5 * kMinute)->by_entity.at("x").second, 2.0);
  EXPECT_EQ(wh.PartitionStart(t0 + 4 * kMinute), t0);
}

TEST(WarehouseTest, LateFileRecomputesOnlyItsPartition) {
  StreamWarehouse wh(5 * kMinute);
  TimePoint t0 = 0;
  ASSERT_TRUE(wh.HandleMessage(FileFor(t0, "a", "x,1\n")).ok());
  ASSERT_TRUE(wh.HandleMessage(FileFor(t0 + 10 * kMinute, "b", "x,2\n")).ok());
  EXPECT_EQ(wh.RecomputeDirty(), 2u);
  // A straggler for the old partition arrives (§2.2: out-of-order files).
  ASSERT_TRUE(wh.HandleMessage(FileFor(t0 + kMinute, "late", "x,7\n")).ok());
  EXPECT_EQ(wh.dirty_count(), 1u);
  EXPECT_EQ(wh.RecomputeDirty(), 1u);
  EXPECT_DOUBLE_EQ(wh.View(t0)->by_entity.at("x").second, 8.0);
  EXPECT_EQ(wh.View(t0)->recomputes, 2u);
  EXPECT_EQ(wh.View(t0 + 10 * kMinute)->recomputes, 1u);
}

TEST(WarehouseTest, ExpandsCompressedPayloadsAndSkipsBadRows) {
  StreamWarehouse wh;
  std::string rows = "router_a,cpu,42\ngarbage line\n,\n";
  std::string compressed = GetCodec(CodecKind::kLz)->Compress(rows);
  ASSERT_TRUE(wh.HandleMessage(FileFor(0, "c", compressed)).ok());
  wh.RecomputeDirty();
  auto view = wh.View(0);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->rows, 1u);
  EXPECT_EQ(view->bad_rows, 2u);
}

TEST(WarehouseTest, BatchTriggerRecomputesOncePerBatch) {
  // The §2.3 argument, end to end: per-file triggers recompute the same
  // partition once per file; a count-batch trigger once per batch.
  for (bool batch : {false, true}) {
    SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
    EventLoop loop(&clock);
    InMemoryFileSystem fs;
    LoopbackTransport transport(&loop);
    CallbackInvoker invoker;
    Logger logger(&clock);
    logger.SetMinLevel(LogLevel::kAlarm);
    std::string config_text = StrFormat(R"(
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt"; }
subscriber wh { feeds CPU; method push; trigger %s exec "recompute"; }
)", batch ? "batch count 4 timeout 2m" : "file");
    auto config = ParseConfig(config_text);
    ASSERT_TRUE(config.ok()) << config.status();
    StreamWarehouse warehouse(5 * kMinute);
    transport.Register("wh", &warehouse);
    invoker.Register("recompute", [&](const BatchEvent&) {
      warehouse.RecomputeDirty();
      return Status::OK();
    });
    auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                       &transport, &loop, &invoker, &logger);
    ASSERT_TRUE(server.ok());
    for (int p = 1; p <= 4; ++p) {
      ASSERT_TRUE(
          (*server)
              ->Deposit("src", StrFormat("CPU_POLL%d_201009250400.txt", p),
                        StrFormat("router_%d,cpu,%d\n", p, p * 10))
              .ok());
    }
    loop.RunUntil(clock.Now() + kSecond);
    auto view = warehouse.View(FromCivil(CivilTime{2010, 9, 25, 4, 0, 0}));
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->raw_files, 4u);
    EXPECT_EQ(view->rows, 4u);
    if (batch) {
      EXPECT_EQ(warehouse.total_recomputes(), 1u) << "batch mode";
    } else {
      EXPECT_EQ(warehouse.total_recomputes(), 4u) << "per-file mode";
    }
  }
}

// ---------------------------------------------------------------- MaxBenefit

TEST(MaxBenefitPolicyTest, PrefersSmallTransfersThenDeadline) {
  auto p = MakePolicy(PolicyKind::kMaxBenefit);
  TransferJob big;
  big.file_id = 1;
  big.size = 1000000;
  big.deadline = 10;
  TransferJob small_late;
  small_late.file_id = 2;
  small_late.size = 100;
  small_late.deadline = 500;
  TransferJob small_urgent;
  small_urgent.file_id = 3;
  small_urgent.size = 100;
  small_urgent.deadline = 50;
  p->Add(big);
  p->Add(small_late);
  p->Add(small_urgent);
  EXPECT_EQ(p->Next()->file_id, 3u);  // smallest + earliest deadline
  EXPECT_EQ(p->Next()->file_id, 2u);
  EXPECT_EQ(p->Next()->file_id, 1u);
  EXPECT_FALSE(p->Next().has_value());
}

TEST(MaxBenefitPolicyTest, NameRoundTripAndNextForFile) {
  auto parsed = PolicyKindFromName("maxbenefit");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, PolicyKind::kMaxBenefit);
  EXPECT_EQ(PolicyKindName(PolicyKind::kMaxBenefit), "maxbenefit");
  auto p = MakePolicy(PolicyKind::kMaxBenefit);
  TransferJob a;
  a.file_id = 7;
  a.size = 10;
  p->Add(a);
  EXPECT_TRUE(p->NextForFile(7).has_value());
  EXPECT_FALSE(p->NextForFile(7).has_value());
}

// ---------------------------------------------------------------- Grouping

TEST(GroupingTest, GroupsByStemWithCohesion) {
  std::vector<AtomicFeed> feeds;
  for (const char* pattern :
       {"CPU_POLL%i_%Y%m%d%H%M.txt", "CPU_UTIL%i_%Y%m%d%H%M.txt",
        "MEMORY_POLL%i_%Y%m%d%H%M.txt", "MEMORY_FREE%i_%Y%m%d%H%M.txt",
        "unrelated_%s.pdf"}) {
    AtomicFeed f;
    f.pattern = pattern;
    feeds.push_back(f);
  }
  auto groups = SuggestFeedGroups(feeds);
  ASSERT_EQ(groups.size(), 2u);
  std::set<std::string> names{groups[0].name, groups[1].name};
  EXPECT_TRUE(names.count("CPU"));
  EXPECT_TRUE(names.count("MEMORY"));
  for (const auto& g : groups) {
    EXPECT_EQ(g.member_patterns.size(), 2u);
    EXPECT_GT(g.cohesion, 0.4);
  }
}

TEST(GroupingTest, SingletonsAndEmptyStemsExcluded) {
  std::vector<AtomicFeed> feeds;
  AtomicFeed lone;
  lone.pattern = "LONELY_%i.dat";
  feeds.push_back(lone);
  AtomicFeed no_stem;
  no_stem.pattern = "%s.dat";
  feeds.push_back(no_stem);
  EXPECT_TRUE(SuggestFeedGroups(feeds).empty());
}

TEST(GroupingTest, LowCohesionStemCollisionFiltered) {
  // Same stem, totally different structure: should not group under a
  // strict cohesion bar.
  std::vector<AtomicFeed> feeds;
  AtomicFeed a;
  a.pattern = "X%i_%Y%m%d%H%M%S_%s_%s_%s.tar";
  AtomicFeed b;
  b.pattern = "X.log";
  feeds.push_back(a);
  feeds.push_back(b);
  GroupingOptions strict;
  strict.min_cohesion = 0.9;
  EXPECT_TRUE(SuggestFeedGroups(feeds, strict).empty());
}

}  // namespace
}  // namespace bistro

// Observability subsystem: histogram quantile math, registry semantics,
// exporter round-trips, the file-lifecycle tracer, the monitor's stall
// re-arm behaviour, and an end-to-end metrics check over a simulated WAN.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "config/parser.h"
#include "core/monitor.h"
#include "core/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, ExactValuesAtBucketBoundaries) {
  // min_bound=1, growth=2 -> bounds 1, 2, 4, 8, ...
  Histogram h;
  h.Record(1);
  h.Record(2);
  h.Record(4);
  h.Record(8);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 15);
  EXPECT_EQ(h.Max(), 8);
  // rank = ceil(q * 4): boundary samples resolve exactly.
  EXPECT_EQ(h.Quantile(0.25), 1);
  EXPECT_EQ(h.Quantile(0.50), 2);
  EXPECT_EQ(h.Quantile(0.75), 4);
  EXPECT_EQ(h.Quantile(1.00), 8);
  EXPECT_EQ(h.Quantile(0.0), 1);  // rank clamps to 1
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.Quantile(1.0), 0);
}

TEST(HistogramTest, SingleSampleExactAtEveryQuantile) {
  Histogram h;
  h.Record(5);  // lands in the (4, 8] bucket
  // Every quantile is min(bucket bound 8, exact max 5) = 5.
  EXPECT_EQ(h.Quantile(0.0), 5);
  EXPECT_EQ(h.Quantile(0.5), 5);
  EXPECT_EQ(h.Quantile(0.99), 5);
  EXPECT_EQ(h.Quantile(1.0), 5);
}

TEST(HistogramTest, OverflowBucketResolvesToMax) {
  Histogram::Options options;
  options.num_buckets = 4;  // bounds 1, 2, 4, 8; >8 overflows
  Histogram h(options);
  h.Record(2);
  h.Record(1000);
  h.Record(5000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.BucketCount(h.bounds().size()), 2u);  // overflow bucket
  EXPECT_EQ(h.Quantile(1.0), 5000);   // overflow rank -> exact max
  EXPECT_EQ(h.Quantile(0.99), 5000);  // rank 3 also overflows
  EXPECT_EQ(h.Quantile(0.33), 2);     // rank 1 still in bounded buckets
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-17);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Quantile(1.0), 0);
}

// -------------------------------------------------------------- Registry

TEST(MetricsRegistryTest, SameNameReturnsStablePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("bistro_test_total", "help");
  Counter* b = registry.GetCounter("bistro_test_total", "ignored");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, CollectSnapshotsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("bistro_b_total", "b")->Increment(2);
  registry.GetGauge("bistro_a_level", "a")->Set(-5);
  registry.GetHistogram("bistro_c_us", "c")->Record(7);
  auto snapshots = registry.Collect();
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0].name, "bistro_a_level");
  EXPECT_EQ(snapshots[0].gauge_value, -5);
  EXPECT_EQ(snapshots[1].name, "bistro_b_total");
  EXPECT_EQ(snapshots[1].counter_value, 2u);
  EXPECT_EQ(snapshots[2].name, "bistro_c_us");
  EXPECT_EQ(snapshots[2].count, 1u);
  EXPECT_EQ(snapshots[2].p50, 7);
}

TEST(MetricsRegistryTest, CollectHooksRefreshGauges) {
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("bistro_queue_depth", "depth");
  int source = 0;
  registry.AddCollectHook([&] { depth->Set(source); });
  source = 42;
  auto snapshots = registry.Collect();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].gauge_value, 42);
}

// ------------------------------------------------------------- Exporters

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.GetCounter("bistro_x_total", "events")->Increment(11);
    registry_.GetGauge("bistro_y_level", "level")->Set(-3);
    Histogram* h = registry_.GetHistogram("bistro_z_us", "latency");
    h->Record(1);
    h->Record(3);
    h->Record(100);
  }

  MetricsRegistry registry_;
};

TEST_F(ExportTest, PrometheusRoundTripsAllRegisteredMetrics) {
  std::string text = ExportPrometheus(&registry_);
  auto parsed = ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ((*parsed)["bistro_x_total"], 11.0);
  EXPECT_DOUBLE_EQ((*parsed)["bistro_y_level"], -3.0);
  EXPECT_DOUBLE_EQ((*parsed)["bistro_z_us_count"], 3.0);
  EXPECT_DOUBLE_EQ((*parsed)["bistro_z_us_sum"], 104.0);
  // Cumulative le buckets: <=1 holds one sample, <=4 holds two, +Inf all.
  EXPECT_DOUBLE_EQ((*parsed)["bistro_z_us_bucket{le=\"1\"}"], 1.0);
  EXPECT_DOUBLE_EQ((*parsed)["bistro_z_us_bucket{le=\"4\"}"], 2.0);
  EXPECT_DOUBLE_EQ((*parsed)["bistro_z_us_bucket{le=\"+Inf\"}"], 3.0);
  // Every collected metric appears as at least one sample.
  for (const MetricSnapshot& m : registry_.Collect()) {
    bool found = false;
    for (const auto& [key, _] : *parsed) {
      if (key.rfind(m.name, 0) == 0) found = true;
    }
    EXPECT_TRUE(found) << "no sample exported for " << m.name;
  }
}

TEST_F(ExportTest, JsonRoundTripsAllRegisteredMetrics) {
  std::string json = ExportJson(&registry_);
  auto parsed = ParseJsonNumbers(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ((*parsed)["counters.bistro_x_total"], 11.0);
  EXPECT_DOUBLE_EQ((*parsed)["gauges.bistro_y_level"], -3.0);
  EXPECT_DOUBLE_EQ((*parsed)["histograms.bistro_z_us.count"], 3.0);
  EXPECT_DOUBLE_EQ((*parsed)["histograms.bistro_z_us.sum"], 104.0);
  EXPECT_DOUBLE_EQ((*parsed)["histograms.bistro_z_us.max"], 100.0);
  // Per-bucket counts survive: bucket 0 has bound 1 and one sample.
  EXPECT_DOUBLE_EQ((*parsed)["histograms.bistro_z_us.buckets.0.le"], 1.0);
  EXPECT_DOUBLE_EQ((*parsed)["histograms.bistro_z_us.buckets.0.count"], 1.0);
  for (const MetricSnapshot& m : registry_.Collect()) {
    bool found = false;
    for (const auto& [key, _] : *parsed) {
      if (key.find("." + m.name) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "no JSON value exported for " << m.name;
  }
}

TEST(ExportEmptyTest, EmptyRegistryProducesParseableOutput) {
  MetricsRegistry registry;
  EXPECT_TRUE(ParsePrometheusText(ExportPrometheus(&registry)).ok());
  EXPECT_TRUE(ParseJsonNumbers(ExportJson(&registry)).ok());
}

TEST(ScrapeTest, PeriodicScrapeStopsWhenHandleDropped) {
  SimClock clock(0);
  EventLoop loop(&clock);
  MetricsRegistry registry;
  registry.GetCounter("bistro_x_total", "x")->Increment();
  std::vector<std::string> scrapes;
  ScrapeHandle handle = StartMetricsScrape(
      &loop, &registry, kSecond,
      [&](const std::string& text) { scrapes.push_back(text); });
  loop.RunUntil(3 * kSecond + kSecond / 2);
  EXPECT_EQ(scrapes.size(), 3u);
  EXPECT_NE(scrapes[0].find("bistro_x_total 1"), std::string::npos);
  handle.reset();
  loop.RunUntil(10 * kSecond);
  EXPECT_EQ(scrapes.size(), 3u);  // queued ticks became no-ops
}

// ---------------------------------------------------------------- Tracer

TEST(FileTracerTest, SpansOrderedAndRolledUpUnderSimClock) {
  MetricsRegistry registry;
  FileTracer tracer(&registry);
  const TimePoint t0 = 1000 * kSecond;
  tracer.Begin(7, "CPU_1.txt", "SNMP.CPU", t0);
  tracer.Mark(7, PipelineStage::kClassify, t0 + 2 * kMillisecond);
  tracer.Mark(7, PipelineStage::kNormalize, t0 + 3 * kMillisecond);
  tracer.Mark(7, PipelineStage::kStage, t0 + 5 * kMillisecond);
  tracer.Mark(7, PipelineStage::kReceipt, t0 + 6 * kMillisecond);
  tracer.Mark(7, PipelineStage::kSchedule, t0 + 7 * kMillisecond);
  tracer.Mark(7, PipelineStage::kSend, t0 + 10 * kMillisecond);
  tracer.Mark(7, PipelineStage::kDeliveryReceipt, t0 + 30 * kMillisecond);

  auto trace = tracer.Trace(7);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->name, "CPU_1.txt");
  ASSERT_EQ(trace->marks.size(), 8u);
  for (size_t i = 0; i < trace->marks.size(); ++i) {
    EXPECT_EQ(trace->marks[i].stage, static_cast<PipelineStage>(i));
    if (i > 0) EXPECT_GE(trace->marks[i].at, trace->marks[i - 1].at);
  }
  EXPECT_EQ(trace->start(), t0);

  // End-to-end latency recorded once, exactly landing -> delivery receipt.
  Histogram* e2e = registry.GetHistogram("bistro_pipeline_e2e_latency_us", "");
  EXPECT_EQ(e2e->Count(), 1u);
  EXPECT_EQ(e2e->Max(), 30 * kMillisecond);

  // Per-feed rollup holds each stage span (send -> delivery receipt: 20ms).
  auto rollup = tracer.FeedRollup("SNMP.CPU");
  size_t receipt_idx = static_cast<size_t>(PipelineStage::kDeliveryReceipt);
  EXPECT_EQ(rollup[receipt_idx].count, 1u);
  EXPECT_EQ(rollup[receipt_idx].max, 20 * kMillisecond);
  EXPECT_EQ(tracer.RolledUpFeeds(), std::vector<FeedName>{"SNMP.CPU"});
}

TEST(FileTracerTest, RingBufferEvictsOldestTrace) {
  MetricsRegistry registry;
  FileTracer::Options options;
  options.capacity = 2;
  FileTracer tracer(&registry, options);
  tracer.Begin(1, "a", "F", 0);
  tracer.Begin(2, "b", "F", 0);
  tracer.Begin(3, "c", "F", 0);
  EXPECT_EQ(tracer.retained(), 2u);
  EXPECT_FALSE(tracer.Trace(1).has_value());
  EXPECT_TRUE(tracer.Trace(3).has_value());
  // Marks on evicted ids are ignored, not resurrected.
  tracer.Mark(1, PipelineStage::kClassify, kSecond);
  EXPECT_EQ(tracer.retained(), 2u);
  EXPECT_EQ(registry.GetCounter("bistro_trace_evicted_total", "")->value(), 1u);
}

// --------------------------------------------------------------- Monitor

TEST(FeedMonitorTest, StallAlarmRearmsAfterResume) {
  SimClock clock(0);
  Logger logger(&clock);
  MetricsRegistry registry;
  FeedMonitor monitor(&logger);
  monitor.AttachMetrics(&registry);

  // Learn a 60s period (>= 5 files to pass the warm-up guard).
  const Duration period = kMinute;
  TimePoint t = 0;
  for (int i = 0; i < 6; ++i) {
    monitor.OnArrival("F", 100, t);
    t += period;
  }
  TimePoint last = t - period;

  // First stall: quiet for 4 periods.
  auto stalled = monitor.CheckStalls(last + 4 * period);
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], "F");

  // Resume. The outage gap must NOT inflate the period estimate.
  TimePoint resume = last + 4 * period;
  monitor.OnArrival("F", 100, resume);
  EXPECT_FALSE(monitor.Progress("F").stalled);
  Duration est_after_resume = monitor.Progress("F").est_period;
  EXPECT_LE(est_after_resume, 2 * period);

  // A few normal arrivals, then a second identical stall: the alarm must
  // fire again (regression: the resume gap used to pollute est_period and
  // mask the next episode).
  t = resume;
  for (int i = 0; i < 3; ++i) {
    t += period;
    monitor.OnArrival("F", 100, t);
  }
  auto stalled_again = monitor.CheckStalls(t + 4 * period);
  ASSERT_EQ(stalled_again.size(), 1u);
  EXPECT_EQ(stalled_again[0], "F");

  EXPECT_EQ(registry.GetCounter("bistro_monitor_stall_alarms_total", "")->value(),
            2u);
  EXPECT_EQ(registry.GetCounter("bistro_monitor_resumes_total", "")->value(), 1u);
}

// ------------------------------------------------------- End-to-end (WAN)

constexpr char kWanConfig[] = R"(
feed WAN {
  pattern "WAN_%s_%Y%m%d.csv";
  tardiness 60s;
}
subscriber warehouse {
  destination "/warehouse";
  feeds WAN;
  method push;
}
)";

TEST(ObsEndToEndTest, DeliveryCountersAndLatencyHistogramOverSimulatedWan) {
  const int kFiles = 5;
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(7);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  LinkSpec link;  // default: 10ms setup latency per transfer
  network.SetLink("warehouse", link);
  FileSinkEndpoint warehouse(&fs, "/warehouse");
  transport.Register("warehouse", &warehouse);

  auto config = ParseConfig(kWanConfig);
  ASSERT_TRUE(config.ok()) << config.status();
  MetricsRegistry registry;
  network.AttachMetrics(&registry);
  BistroServer::Options options;
  options.metrics = &registry;
  auto server = BistroServer::Create(options, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  ASSERT_TRUE(server.ok()) << server.status();

  for (int i = 0; i < kFiles; ++i) {
    std::string name = StrFormat("WAN_h%d_20100925.csv", i);
    ASSERT_TRUE((*server)->Deposit("src", name, "row," + std::to_string(i)).ok());
  }
  loop.RunUntilIdle();

  EXPECT_EQ(warehouse.files_received(), static_cast<uint64_t>(kFiles));
  EXPECT_EQ(
      registry.GetCounter("bistro_delivery_files_delivered_total", "")->value(),
      static_cast<uint64_t>(kFiles));
  EXPECT_EQ(registry.GetCounter("bistro_server_files_received_total", "")->value(),
            static_cast<uint64_t>(kFiles));

  // One e2e latency sample per delivery, all at least the 10ms link setup
  // latency and all bounded by the run (plausible sim-clock values).
  Histogram* e2e = registry.GetHistogram("bistro_pipeline_e2e_latency_us", "");
  EXPECT_EQ(e2e->Count(), static_cast<uint64_t>(kFiles));
  EXPECT_GE(e2e->Quantile(0.01), link.latency);
  EXPECT_GE(e2e->Sum(), kFiles * link.latency);
  EXPECT_LT(e2e->Max(), kMinute);

  // The file trace shows the pipeline stages in order.
  auto trace = (*server)->tracer()->Trace(1);
  ASSERT_TRUE(trace.has_value());
  ASSERT_GE(trace->marks.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(trace->marks[i].stage, static_cast<PipelineStage>(i));
    if (i > 0) EXPECT_GE(trace->marks[i].at, trace->marks[i - 1].at);
  }
  // Transport counters flowed through the shared registry too.
  EXPECT_GE(registry.GetCounter("bistro_net_sends_total", "")->value(),
            static_cast<uint64_t>(kFiles));
  EXPECT_EQ(registry.GetCounter("bistro_simnet_transfers_total", "")->value(),
            static_cast<uint64_t>(kFiles));

  // Both exporters render the full registry parseably.
  auto prom = ParsePrometheusText(ExportPrometheus(&registry));
  ASSERT_TRUE(prom.ok()) << prom.status();
  EXPECT_DOUBLE_EQ((*prom)["bistro_delivery_files_delivered_total"],
                   static_cast<double>(kFiles));
  auto json = ParseJsonNumbers(ExportJson(&registry));
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_DOUBLE_EQ((*json)["counters.bistro_delivery_files_delivered_total"],
                   static_cast<double>(kFiles));
  EXPECT_DOUBLE_EQ((*json)["histograms.bistro_pipeline_e2e_latency_us.count"],
                   static_cast<double>(kFiles));
}

}  // namespace
}  // namespace bistro

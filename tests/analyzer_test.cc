// Tests for the feed analyzer: tokenization, atomic-feed discovery with
// field typing and arrival-pattern inference, generalization, pattern
// similarity (including the paper's TRAP edit-distance counterexample),
// and the FN/FP report generators.

#include <set>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "analyzer/analyzer.h"
#include "config/parser.h"
#include "pattern/pattern.h"
#include "sim/sources.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, PaperExample) {
  auto tokens = TokenizeName("MEMORY_POLLER1_2010092504_51.csv.gz");
  std::vector<NameToken> expected = {
      {NameToken::Kind::kAlpha, "MEMORY"}, {NameToken::Kind::kSep, "_"},
      {NameToken::Kind::kAlpha, "POLLER"}, {NameToken::Kind::kDigits, "1"},
      {NameToken::Kind::kSep, "_"},        {NameToken::Kind::kDigits, "2010092504"},
      {NameToken::Kind::kSep, "_"},        {NameToken::Kind::kDigits, "51"},
      {NameToken::Kind::kSep, "."},        {NameToken::Kind::kAlpha, "csv"},
      {NameToken::Kind::kSep, "."},        {NameToken::Kind::kAlpha, "gz"},
  };
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, EmptyAndEdgeCases) {
  EXPECT_TRUE(TokenizeName("").empty());
  auto only_digits = TokenizeName("12345");
  ASSERT_EQ(only_digits.size(), 1u);
  EXPECT_EQ(only_digits[0].kind, NameToken::Kind::kDigits);
  auto seps = TokenizeName("__");
  EXPECT_EQ(seps.size(), 2u);
}

TEST(TokenizerTest, SignatureAbstractsDigitsOnly) {
  auto a = TokenizeName("CPU_POLL1_201009250502.txt");
  auto b = TokenizeName("CPU_POLL12_201012301159.txt");
  auto c = TokenizeName("MEM_POLL1_201009250502.txt");
  EXPECT_EQ(NameSignature(a), NameSignature(b));  // digit widths differ, same sig
  EXPECT_NE(NameSignature(a), NameSignature(c));  // alpha text differs
}

// ---------------------------------------------------------------- Discovery

std::vector<FileObservation> PaperSection51Corpus() {
  // The exact file set from §5.1 of the paper.
  return {
      {"MEMORY_POLLER1_2010092504_51.csv.gz", 0},
      {"CPU_POLL1_201009250502.txt", 0},
      {"MEMORY_POLLER2_2010092504_59.csv.gz", 0},
      {"MEMORY_POLLER1_2010092509_58.csv.gz", 0},
      {"CPU_POLL2_201009250503.txt", 0},
      {"MEMORY_POLLER2_2010092510_02.csv.gz", 0},
      {"CPU_POLL2_201009251001.txt", 0},
      {"CPU_POLL2_201009250959.txt", 0},
  };
}

TEST(DiscoveryTest, FindsThePaperTwoAtomicFeeds) {
  DiscoveryOptions options;
  options.min_support = 2;
  auto result = DiscoverFeeds(PaperSection51Corpus(), options);
  ASSERT_EQ(result.feeds.size(), 2u);
  EXPECT_TRUE(result.outliers.empty());
  // Both groups have 4 files; patterns match the paper's identification:
  // MEMORY_POLLERid_YYYYMMDDHH_MM.csv.gz and CPU_POLLid_YYYYMMDDHHMM.txt.
  std::set<std::string> patterns = {result.feeds[0].pattern,
                                    result.feeds[1].pattern};
  EXPECT_TRUE(patterns.count("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz"))
      << result.feeds[0].pattern << " / " << result.feeds[1].pattern;
  EXPECT_TRUE(patterns.count("CPU_POLL%i_%Y%m%d%H%M.txt"));
}

TEST(DiscoveryTest, InfersCategoricalPollerDomain) {
  DiscoveryOptions options;
  options.min_support = 2;
  auto result = DiscoverFeeds(PaperSection51Corpus(), options);
  for (const auto& feed : result.feeds) {
    // The poller-id field must be categorical with domain {1, 2}.
    bool found = false;
    for (const auto& field : feed.fields) {
      if (field.type == InferredField::Type::kCategorical) {
        EXPECT_EQ(field.domain, (std::set<std::string>{"1", "2"}));
        found = true;
      }
    }
    EXPECT_TRUE(found) << feed.pattern;
  }
}

TEST(DiscoveryTest, DiscoveredPatternsActuallyMatchTheirFiles) {
  DiscoveryOptions options;
  options.min_support = 2;
  auto corpus = PaperSection51Corpus();
  auto result = DiscoverFeeds(corpus, options);
  for (const auto& feed : result.feeds) {
    auto pattern = Pattern::Compile(feed.pattern);
    ASSERT_TRUE(pattern.ok()) << feed.pattern;
    size_t matched = 0;
    for (const auto& obs : corpus) {
      if (pattern->Matches(obs.name)) ++matched;
    }
    EXPECT_EQ(matched, feed.file_count) << feed.pattern;
  }
}

TEST(DiscoveryTest, EstimatesFiveMinutePeriod) {
  // Pollers report every 5 minutes; the paper says the analyzer should
  // conclude "a new file every 5 minutes from each poller".
  std::vector<FileObservation> corpus;
  TimePoint start = FromCivil(CivilTime{2010, 9, 25, 4, 0, 0});
  for (int i = 0; i < 24; ++i) {
    CivilTime c = ToCivil(start + i * 5 * kMinute);
    for (int p = 1; p <= 2; ++p) {
      corpus.push_back({StrFormat("CPU_POLL%d_%04d%02d%02d%02d%02d.txt", p,
                                  c.year, c.month, c.day, c.hour, c.minute),
                        start + i * 5 * kMinute});
    }
  }
  auto result = DiscoverFeeds(corpus);
  ASSERT_EQ(result.feeds.size(), 1u);
  EXPECT_EQ(result.feeds[0].est_period, 5 * kMinute);
  EXPECT_DOUBLE_EQ(result.feeds[0].files_per_interval, 2.0);
}

TEST(DiscoveryTest, SeparatedDateStyleRecognized) {
  std::vector<FileObservation> corpus;
  for (int d = 1; d <= 9; ++d) {
    corpus.push_back({StrFormat("BPS7_2010_12_%02d_05.csv", d), 0});
  }
  auto result = DiscoverFeeds(corpus);
  ASSERT_EQ(result.feeds.size(), 1u);
  EXPECT_EQ(result.feeds[0].pattern, "BPS%i_%Y_%m_%d_%H.csv");
}

TEST(DiscoveryTest, SmallGroupsAreOutliers) {
  std::vector<FileObservation> corpus = PaperSection51Corpus();
  corpus.push_back({"stray_report_900.pdf", 0});
  DiscoveryOptions options;
  options.min_support = 2;
  auto result = DiscoverFeeds(corpus, options);
  EXPECT_EQ(result.feeds.size(), 2u);
  ASSERT_EQ(result.outliers.size(), 1u);
  EXPECT_EQ(result.outliers[0].file_count, 1u);
}

TEST(DiscoveryTest, VariableWidthIdsBecomeIntegers) {
  std::vector<FileObservation> corpus;
  for (int p : {1, 2, 3, 7, 9, 10, 25, 118, 2000, 31, 44, 52}) {
    corpus.push_back({StrFormat("LOSS_P%d_20101230.dat", p), 0});
  }
  auto result = DiscoverFeeds(corpus);
  ASSERT_EQ(result.feeds.size(), 1u);
  EXPECT_EQ(result.feeds[0].pattern, "LOSS_P%i_%Y%m%d.dat");
  ASSERT_EQ(result.feeds[0].fields.size(), 2u);
  EXPECT_EQ(result.feeds[0].fields[0].type, InferredField::Type::kInteger);
}

TEST(DiscoveryTest, NonDateNumbersAreNotTimestamps) {
  // 8-digit values far outside civil ranges must not become %Y%m%d.
  std::vector<FileObservation> corpus;
  for (int i = 0; i < 5; ++i) {
    corpus.push_back({StrFormat("SEQ_%08d.bin", 99000000 + i), 0});
  }
  auto result = DiscoverFeeds(corpus);
  ASSERT_EQ(result.feeds.size(), 1u);
  EXPECT_EQ(result.feeds[0].pattern, "SEQ_%i.bin");
}

TEST(GeneralizeTest, SingleNameGeneralization) {
  EXPECT_EQ(GeneralizeName("MEMORY_Poller1_20100926.gz"),
            "MEMORY_Poller%i_%Y%m%d.gz");
  EXPECT_EQ(GeneralizeName("CPU_POLL2_201009250503.txt"),
            "CPU_POLL%i_%Y%m%d%H%M.txt");
  EXPECT_EQ(GeneralizeName("no_digits_here.txt"), "no_digits_here.txt");
}

// ---------------------------------------------------------------- Similarity

TEST(SimilarityTest, IdenticalPatternsAreOne) {
  EXPECT_DOUBLE_EQ(PatternSimilarity("A_%i_%Y%m%d.gz", "A_%i_%Y%m%d.gz"), 1.0);
}

TEST(SimilarityTest, CaseChangeScoresHigh) {
  // The §5.2 scenario: capitalizing 'p' in "poller".
  double sim = PatternSimilarity("MEMORY_Poller%i_%Y%m%d.gz",
                                 "MEMORY_poller%i_%Y%m%d.gz");
  EXPECT_GT(sim, 0.9);
}

TEST(SimilarityTest, UnrelatedPatternsScoreLow) {
  double sim = PatternSimilarity("MEMORY_poller%i_%Y%m%d.gz",
                                 "invoice-%i-final.pdf");
  EXPECT_LT(sim, 0.5);
}

TEST(SimilarityTest, PaperTrapExample) {
  // Feed pattern and false-negative file from §5.2. Edit distance is huge
  // (the paper reports 51) while the file is "intuitively highly similar".
  const std::string feed_pattern = "TRAP__%Y%m%d_DCTAGN_klpi.txt";
  const std::string file =
      "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_"
      "klpi.txt";
  // Raw edit distance fails: similarity is low.
  double ed_sim = EditDistanceSimilarity(file, feed_pattern);
  EXPECT_LT(ed_sim, 0.5);
  size_t ed = EditDistance(file, feed_pattern);
  EXPECT_GT(ed, 40u);  // the paper reports 51 for its exact spec form
  // Pattern similarity of the generalized file scores clearly higher
  // than the edit-distance view.
  std::string generalized = GeneralizeName(file);
  double psim = PatternSimilarity(generalized, feed_pattern);
  EXPECT_GT(psim, ed_sim);
  EXPECT_GT(psim, 0.5);
}

// ---------------------------------------------------------------- Analyzer

std::unique_ptr<FeedRegistry> MustRegistry(std::string_view text) {
  auto config = ParseConfig(text);
  EXPECT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  EXPECT_TRUE(registry.ok()) << registry.status();
  return std::move(*registry);
}

TEST(AnalyzerTest, DiscoverNewFeedsSuggestsSpecs) {
  auto registry = MustRegistry("");
  Logger logger;
  FeedAnalyzer::Options options;
  options.discovery.min_support = 2;
  FeedAnalyzer analyzer(registry.get(), &logger, options);
  auto suggestions = analyzer.DiscoverNewFeeds(PaperSection51Corpus());
  ASSERT_EQ(suggestions.size(), 2u);
  for (const auto& s : suggestions) {
    EXPECT_FALSE(s.suggested_spec.name.empty());
    EXPECT_TRUE(Pattern::Compile(s.suggested_spec.pattern).ok());
    EXPECT_EQ(s.feed.file_count, 4u);
  }
}

TEST(AnalyzerTest, DetectsCaseChangeFalseNegative) {
  auto registry = MustRegistry(R"(
feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
feed OTHER  { pattern "invoice-%i.pdf"; }
)");
  Logger logger;
  auto sink = std::make_shared<MemorySink>();
  logger.AddSink(sink);
  FeedAnalyzer analyzer(registry.get(), &logger);
  std::vector<FileObservation> unmatched = {
      {"MEMORY_Poller1_20100926.gz", 0},
      {"MEMORY_Poller2_20100926.gz", 0},
      {"MEMORY_Poller1_20100927.gz", 0},
  };
  auto reports = analyzer.DetectFalseNegatives(unmatched);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].feed, "MEMORY");
  EXPECT_EQ(reports[0].files.size(), 3u);
  EXPECT_GT(reports[0].similarity, 0.75);
  // One warning per generalized pattern, not per file (§5.2).
  EXPECT_EQ(sink->CountAtLeast(LogLevel::kWarning), 1u);
}

TEST(AnalyzerTest, UnrelatedJunkProducesNoFnReport) {
  auto registry = MustRegistry(R"(feed F { pattern "CPU_%i_%Y%m%d.txt"; })");
  Logger logger;
  FeedAnalyzer analyzer(registry.get(), &logger);
  std::vector<FileObservation> unmatched = {
      {"holiday-photo.jpeg", 0},
      {"backup.tar", 0},
  };
  EXPECT_TRUE(analyzer.DetectFalseNegatives(unmatched).empty());
}

TEST(AnalyzerTest, DetectsForeignSubfeedAsFalsePositive) {
  // A wildcard-broad feed accidentally matches PPS files mixed into a BPS
  // stream (the §2.1.3.2 scenario).
  auto registry = MustRegistry(R"(feed BPS { pattern "%s_%Y%m%d%H.csv"; })");
  Logger logger;
  FeedAnalyzer::Options options;
  options.fp_max_support = 0.2;
  FeedAnalyzer analyzer(registry.get(), &logger, options);
  std::vector<FileObservation> matched;
  TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  for (int i = 0; i < 40; ++i) {
    CivilTime c = ToCivil(start + i * kHour);
    matched.push_back({StrFormat("BPS_poller_%04d%02d%02d%02d.csv", c.year,
                                 c.month, c.day, c.hour),
                       0});
  }
  for (int i = 0; i < 3; ++i) {
    CivilTime c = ToCivil(start + i * kHour);
    matched.push_back({StrFormat("PPSx_%04d%02d%02d%02d.csv", c.year, c.month,
                                 c.day, c.hour),
                       0});
  }
  auto reports = analyzer.DetectFalsePositives("BPS", matched);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].outlier.file_count, 3u);
  EXPECT_NE(reports[0].dominant_pattern, reports[0].outlier.pattern);
}

TEST(AnalyzerTest, HomogeneousFeedHasNoFalsePositives) {
  auto registry = MustRegistry(R"(feed F { pattern "CPU_%i_%Y%m%d.txt"; })");
  Logger logger;
  FeedAnalyzer analyzer(registry.get(), &logger);
  std::vector<FileObservation> matched;
  for (int i = 1; i <= 20; ++i) {
    matched.push_back({StrFormat("CPU_%d_20101230.txt", i), 0});
  }
  EXPECT_TRUE(analyzer.DetectFalsePositives("F", matched).empty());
  EXPECT_TRUE(analyzer.DetectFalsePositives("F", {}).empty());
}

// --------------------------------------------------- end-to-end corpora

TEST(AnalyzerCorpusTest, RecoversGroundTruthTemplates) {
  Rng rng(77);
  CorpusGenerator gen(&rng);
  std::vector<CorpusGenerator::FeedTemplate> templates(3);
  templates[0].metric = "MEMORY";
  templates[0].style = CorpusGenerator::FeedTemplate::Style::kSplitStamp;
  templates[1].metric = "CPU";
  templates[1].style = CorpusGenerator::FeedTemplate::Style::kWideStamp;
  templates[2].metric = "BPS";
  templates[2].style = CorpusGenerator::FeedTemplate::Style::kSeparatedDate;
  auto corpus = gen.Generate(templates, /*junk=*/5,
                             FromCivil(CivilTime{2010, 9, 25}));
  std::vector<FileObservation> observations;
  for (const auto& l : corpus) observations.push_back(l.obs);
  DiscoveryOptions options;
  options.min_support = 3;
  auto result = DiscoverFeeds(observations, options);
  // All three truth templates recovered exactly.
  std::set<std::string> found;
  for (const auto& feed : result.feeds) found.insert(feed.pattern);
  for (const auto& t : templates) {
    EXPECT_TRUE(found.count(CorpusGenerator::TruthPattern(t)))
        << CorpusGenerator::TruthPattern(t);
  }
}

}  // namespace
}  // namespace bistro

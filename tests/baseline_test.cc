// Tests for the baseline delivery mechanisms the paper argues against:
// pull-based directory polling, rsync-style stateless sync, and the
// cron-style runner with overlapping jobs.

#include <gtest/gtest.h>

#include "baseline/pull_poller.h"
#include "baseline/rsync_like.h"
#include "common/strings.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- Pull

TEST(PullPollerTest, FetchesNewFilesOnce) {
  InMemoryFileSystem remote, local;
  ASSERT_TRUE(remote.WriteFile("/feed/a.csv", "A").ok());
  ASSERT_TRUE(remote.WriteFile("/feed/b.csv", "B").ok());
  PullPoller poller(&remote, "/feed", &local, "/mirror");
  auto n = poller.Poll(0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(*local.ReadFile("/mirror/a.csv"), "A");
  // Second poll fetches nothing new but still pays the scan.
  n = poller.Poll(kSecond);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  ASSERT_TRUE(remote.WriteFile("/feed/c.csv", "C").ok());
  n = poller.Poll(2 * kSecond);
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(poller.files_retrieved(), 3u);
}

TEST(PullPollerTest, ScanCostGrowsWithHistory) {
  InMemoryFileSystem remote, local;
  PullPoller poller(&remote, "/feed", &local, "/mirror");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        remote.WriteFile(StrFormat("/feed/f%03d.csv", i), "x").ok());
  }
  ASSERT_TRUE(poller.Poll(0).ok());
  remote.ResetStats();
  // Even a poll that finds nothing new must list every history entry.
  ASSERT_TRUE(poller.Poll(kSecond).ok());
  EXPECT_GE(remote.stats().list_entries, 100u);
}

TEST(PullPollerTest, LookbackCapMissesLateFiles) {
  // The §2.2.1 trade-off: capping the scan window bounds cost but
  // silently drops data that arrives (or was stamped) too far in the
  // past relative to the newest file.
  SimClock clock(0);
  InMemoryFileSystem remote(&clock);
  InMemoryFileSystem local;
  PullPoller::Options options;
  options.lookback = kHour;
  PullPoller poller(&remote, "/feed", &local, "/mirror", options);
  // An "old" file exists (mtime 0) and the feed then produces a new file
  // ten hours later — before the subscriber's first poll (e.g. it was
  // offline, exactly when late data accumulates).
  ASSERT_TRUE(remote.WriteFile("/feed/old.csv", "x").ok());
  clock.AdvanceTo(10 * kHour);
  ASSERT_TRUE(remote.WriteFile("/feed/new.csv", "y").ok());
  ASSERT_TRUE(poller.Poll(clock.Now()).ok());
  EXPECT_EQ(poller.files_retrieved(), 1u);
  EXPECT_EQ(poller.files_missed(), 1u);
  EXPECT_TRUE(local.Exists("/mirror/new.csv"));
  EXPECT_FALSE(local.Exists("/mirror/old.csv"));
  // An uncapped poller (the safe configuration) fetches everything but
  // pays the full scan forever.
  InMemoryFileSystem local2;
  PullPoller uncapped(&remote, "/feed", &local2, "/mirror");
  ASSERT_TRUE(uncapped.Poll(clock.Now()).ok());
  EXPECT_EQ(uncapped.files_retrieved(), 2u);
  EXPECT_EQ(uncapped.files_missed(), 0u);
}

// ---------------------------------------------------------------- Rsync

TEST(RsyncLikeTest, MirrorsSourceTree) {
  InMemoryFileSystem src, dst;
  ASSERT_TRUE(src.WriteFile("/data/2010/a.csv", "aaa").ok());
  ASSERT_TRUE(src.WriteFile("/data/2010/b.csv", "bbb").ok());
  RsyncLike sync(&src, "/data", &dst, "/mirror");
  auto stats = sync.Sync();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files_copied, 2u);
  EXPECT_EQ(*dst.ReadFile("/mirror/2010/a.csv"), "aaa");
}

TEST(RsyncLikeTest, UnchangedFilesSkippedButStillScanned) {
  InMemoryFileSystem src, dst;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(src.WriteFile(StrFormat("/data/f%02d.csv", i), "x").ok());
  }
  RsyncLike sync(&src, "/data", &dst, "/mirror");
  ASSERT_TRUE(sync.Sync().ok());
  auto second = sync.Sync();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->files_copied, 0u);
  EXPECT_EQ(second->files_skipped_unchanged, 50u);
  // The stateless design rescans the full history on both sides.
  EXPECT_EQ(second->source_entries_scanned, 50u);
  EXPECT_EQ(second->dest_entries_scanned, 50u);
}

TEST(RsyncLikeTest, DeltaTransferMovesOnlyChangedBlocks) {
  // The source needs advancing mtimes or rsync's size+mtime quick check
  // (correctly) skips the rewritten file.
  SimClock clock(0);
  InMemoryFileSystem src(&clock);
  InMemoryFileSystem dst;
  std::string content(8 * 1024, 'a');
  ASSERT_TRUE(src.WriteFile("/data/big.bin", content).ok());
  RsyncLike::Options options;
  options.block_size = 1024;
  RsyncLike sync(&src, "/data", &dst, "/mirror", options);
  ASSERT_TRUE(sync.Sync().ok());
  // Change one byte in the middle; mtime moves forward.
  clock.Advance(kMinute);
  content[4100] = 'Z';
  ASSERT_TRUE(src.WriteFile("/data/big.bin", content).ok());
  auto stats = sync.Sync();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files_delta_patched, 1u);
  // Only the damaged block (1 KiB) travels, not 8 KiB.
  EXPECT_EQ(stats->literal_bytes_in_deltas, 1024u);
  EXPECT_EQ(*dst.ReadFile("/mirror/big.bin"), content);
}

TEST(RsyncLikeTest, DestinationMirrorsFullHistoryNoWindow) {
  // Drawback 3 in §2.2.2: the subscriber cannot keep a smaller window.
  InMemoryFileSystem src, dst;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(src.WriteFile(StrFormat("/data/old%02d.csv", i), "x").ok());
  }
  RsyncLike sync(&src, "/data", &dst, "/mirror");
  ASSERT_TRUE(sync.Sync().ok());
  auto mirrored = dst.ListRecursive("/mirror");
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored->size(), 20u);
}

// ---------------------------------------------------------------- Cron

TEST(CronRunnerTest, FiresEveryInterval) {
  int runs = 0;
  CronRunner cron(10 * kSecond, [&](TimePoint) -> Duration {
    ++runs;
    return kSecond;
  });
  cron.AdvanceTo(60 * kSecond);
  EXPECT_EQ(runs, 6);
  EXPECT_EQ(cron.overlapping_runs(), 0u);
}

TEST(CronRunnerTest, StepsOnUnfinishedJobs) {
  // Each job takes 25s but cron fires every 10s: runs overlap, exactly
  // the §2.2.2 drawback 4.
  CronRunner cron(10 * kSecond, [&](TimePoint) { return 25 * kSecond; });
  cron.AdvanceTo(100 * kSecond);
  EXPECT_EQ(cron.runs(), 10u);
  EXPECT_GT(cron.overlapping_runs(), 5u);
}

}  // namespace
}  // namespace bistro

// Tests for scheduling: policies (FIFO/EDF/RR), responsiveness tracking,
// and the single-policy vs partitioned schedulers — including the §4.3
// isolation property (a backlogged partition cannot starve another).

#include <gtest/gtest.h>

#include "sched/scheduler.h"

namespace bistro {
namespace {

TransferJob MakeJob(FileId id, const std::string& sub, TimePoint deadline,
                    uint64_t size = 100) {
  TransferJob job;
  job.file_id = id;
  job.subscriber = sub;
  job.feed = "F";
  job.size = size;
  job.arrival_time = 0;
  job.deadline = deadline;
  return job;
}

// ---------------------------------------------------------------- Policies

TEST(PolicyTest, NamesRoundTrip) {
  for (PolicyKind k :
       {PolicyKind::kFifo, PolicyKind::kEdf, PolicyKind::kRoundRobin}) {
    auto parsed = PolicyKindFromName(PolicyKindName(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(PolicyKindFromName("lifo").ok());
}

TEST(PolicyTest, FifoOrder) {
  auto p = MakePolicy(PolicyKind::kFifo);
  p->Add(MakeJob(1, "a", 300));
  p->Add(MakeJob(2, "a", 100));
  p->Add(MakeJob(3, "a", 200));
  EXPECT_EQ(p->Next()->file_id, 1u);
  EXPECT_EQ(p->Next()->file_id, 2u);
  EXPECT_EQ(p->Next()->file_id, 3u);
  EXPECT_FALSE(p->Next().has_value());
}

TEST(PolicyTest, EdfOrdersByDeadline) {
  auto p = MakePolicy(PolicyKind::kEdf);
  p->Add(MakeJob(1, "a", 300));
  p->Add(MakeJob(2, "b", 100));
  p->Add(MakeJob(3, "c", 200));
  EXPECT_EQ(p->Next()->file_id, 2u);
  EXPECT_EQ(p->Next()->file_id, 3u);
  EXPECT_EQ(p->Next()->file_id, 1u);
}

TEST(PolicyTest, EdfTiesAreFifo) {
  auto p = MakePolicy(PolicyKind::kEdf);
  p->Add(MakeJob(1, "a", 100));
  p->Add(MakeJob(2, "a", 100));
  EXPECT_EQ(p->Next()->file_id, 1u);
  EXPECT_EQ(p->Next()->file_id, 2u);
}

TEST(PolicyTest, RoundRobinAlternatesSubscribers) {
  auto p = MakePolicy(PolicyKind::kRoundRobin);
  // Subscriber "a" floods the queue; "b" has one job.
  for (FileId i = 1; i <= 5; ++i) p->Add(MakeJob(i, "a", 100));
  p->Add(MakeJob(100, "b", 100));
  std::vector<SubscriberName> order;
  while (auto job = p->Next()) order.push_back(job->subscriber);
  ASSERT_EQ(order.size(), 6u);
  // "b"'s job must appear within the first two pops, not after all of a's.
  EXPECT_TRUE(order[0] == "b" || order[1] == "b");
}

TEST(PolicyTest, NextForFilePullsMatchingJob) {
  for (PolicyKind kind :
       {PolicyKind::kFifo, PolicyKind::kEdf, PolicyKind::kRoundRobin}) {
    auto p = MakePolicy(kind);
    p->Add(MakeJob(1, "a", 100));
    p->Add(MakeJob(2, "b", 200));
    p->Add(MakeJob(2, "c", 300));
    auto job = p->NextForFile(2);
    ASSERT_TRUE(job.has_value()) << PolicyKindName(kind);
    EXPECT_EQ(job->file_id, 2u);
    EXPECT_EQ(p->Size(), 2u);
    EXPECT_FALSE(p->NextForFile(99).has_value());
  }
}

// ---------------------------------------------------------- Responsiveness

TEST(ResponsivenessTest, TracksThroughputEwma) {
  ResponsivenessTracker t(0.5);
  t.RecordTransfer("s", 1000, kSecond);  // 1000 B/s
  EXPECT_DOUBLE_EQ(t.ThroughputBps("s"), 1000.0);
  t.RecordTransfer("s", 3000, kSecond);  // 3000 B/s -> EWMA 2000
  EXPECT_DOUBLE_EQ(t.ThroughputBps("s"), 2000.0);
  EXPECT_EQ(t.ThroughputBps("unknown"), 0.0);
}

TEST(ResponsivenessTest, FailuresLowerScoreAndSuccessHeals) {
  ResponsivenessTracker t;
  t.RecordTransfer("s", 1000, kSecond);
  double healthy = t.Score("s");
  t.RecordFailure("s");
  t.RecordFailure("s");
  EXPECT_LT(t.Score("s"), healthy);
  EXPECT_EQ(t.ConsecutiveFailures("s"), 2);
  t.RecordTransfer("s", 1000, kSecond);
  EXPECT_EQ(t.ConsecutiveFailures("s"), 0);
  EXPECT_GT(t.Score("s"), t.Score("s") / 2);  // sanity: finite positive
}

TEST(ResponsivenessTest, ResetForgets) {
  ResponsivenessTracker t;
  t.RecordFailure("s");
  t.Reset("s");
  EXPECT_EQ(t.ConsecutiveFailures("s"), 0);
  EXPECT_EQ(t.FailureScore("s"), 0.0);
}

// ---------------------------------------------------------- SinglePolicy

TEST(SinglePolicySchedulerTest, CapacityLimitsInFlight) {
  SinglePolicyScheduler sched(PolicyKind::kFifo, 2);
  for (FileId i = 1; i <= 5; ++i) sched.Submit(MakeJob(i, "a", 100));
  auto j1 = sched.Dequeue();
  auto j2 = sched.Dequeue();
  ASSERT_TRUE(j1.has_value());
  ASSERT_TRUE(j2.has_value());
  EXPECT_FALSE(sched.Dequeue().has_value());  // capacity exhausted
  EXPECT_EQ(sched.in_flight(), 2u);
  sched.OnComplete(*j1, true, /*now=*/50, /*elapsed=*/50);
  EXPECT_TRUE(sched.Dequeue().has_value());
}

TEST(SinglePolicySchedulerTest, MetricsTrackTardiness) {
  SinglePolicyScheduler sched(PolicyKind::kEdf, 1);
  sched.Submit(MakeJob(1, "a", /*deadline=*/100));
  auto job = sched.Dequeue();
  sched.OnComplete(*job, true, /*now=*/250, /*elapsed=*/10);
  EXPECT_EQ(sched.metrics().completed, 1u);
  EXPECT_EQ(sched.metrics().late, 1u);
  EXPECT_EQ(sched.metrics().max_tardiness, 150);
  sched.Submit(MakeJob(2, "a", /*deadline=*/10000));
  job = sched.Dequeue();
  sched.OnComplete(*job, true, /*now=*/300, /*elapsed=*/10);
  EXPECT_EQ(sched.metrics().late, 1u);  // on time
  EXPECT_DOUBLE_EQ(sched.metrics().LateFraction(), 0.5);
}

// ---------------------------------------------------------- Partitioned

TEST(PartitionedSchedulerTest, DefaultsToPartitionZero) {
  PartitionedScheduler sched;
  EXPECT_EQ(sched.PartitionOf("anyone"), 0u);
  sched.SetPartition("slow", 2);
  EXPECT_EQ(sched.PartitionOf("slow"), 2u);
  sched.SetPartition("clamped", 99);
  EXPECT_EQ(sched.PartitionOf("clamped"), 2u);  // clamped to last
}

TEST(PartitionedSchedulerTest, BackloggedPartitionCannotStarveOthers) {
  PartitionedScheduler::Options opts;
  opts.num_partitions = 2;
  opts.slots_per_partition = 1;
  PartitionedScheduler sched(opts);
  sched.SetPartition("slow", 1);
  sched.SetPartition("fast", 0);
  // The slow subscriber has a huge backlog with older deadlines.
  for (FileId i = 1; i <= 100; ++i) sched.Submit(MakeJob(i, "slow", 10));
  sched.Submit(MakeJob(200, "fast", 100000));
  // Two dequeues must yield one job from each partition: the fast
  // subscriber is never starved even though every slow deadline is older.
  auto a = sched.Dequeue();
  auto b = sched.Dequeue();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  std::set<SubscriberName> subs{a->subscriber, b->subscriber};
  EXPECT_TRUE(subs.count("fast") == 1) << "fast subscriber starved";
  // Third dequeue: both partitions' single slots are busy.
  EXPECT_FALSE(sched.Dequeue().has_value());
}

TEST(PartitionedSchedulerTest, GlobalEdfDoesStarveByContrast) {
  // The contrast case for E3: one global EDF queue lets the backlog
  // (older deadlines) run first.
  SinglePolicyScheduler sched(PolicyKind::kEdf, 2);
  for (FileId i = 1; i <= 100; ++i) sched.Submit(MakeJob(i, "slow", 10));
  sched.Submit(MakeJob(200, "fast", 100000));
  auto a = sched.Dequeue();
  auto b = sched.Dequeue();
  EXPECT_EQ(a->subscriber, "slow");
  EXPECT_EQ(b->subscriber, "slow");
}

TEST(PartitionedSchedulerTest, LocalityPrefersSameFile) {
  PartitionedScheduler::Options opts;
  opts.num_partitions = 1;
  opts.slots_per_partition = 4;
  opts.locality = true;
  PartitionedScheduler sched(opts);
  // File 7 goes to three subscribers; file 8 has an earlier deadline.
  sched.Submit(MakeJob(7, "a", 500));
  sched.Submit(MakeJob(8, "a2", 100));
  sched.Submit(MakeJob(7, "b", 600));
  sched.Submit(MakeJob(7, "c", 700));
  auto first = sched.Dequeue();
  ASSERT_TRUE(first.has_value());
  // EDF picks file 8 first (earliest deadline); after that the anchor is
  // 8, no more 8-jobs exist, so EDF order resumes with 7s.
  EXPECT_EQ(first->file_id, 8u);
  auto second = sched.Dequeue();
  EXPECT_EQ(second->file_id, 7u);
  // Anchor is now 7: remaining 7s are preferred consecutively.
  EXPECT_EQ(sched.Dequeue()->file_id, 7u);
  EXPECT_EQ(sched.Dequeue()->file_id, 7u);
}

TEST(PartitionedSchedulerTest, PendingAndInFlightAccounting) {
  PartitionedScheduler::Options opts;
  opts.num_partitions = 2;
  opts.slots_per_partition = 1;
  PartitionedScheduler sched(opts);
  sched.SetPartition("p1", 1);
  sched.Submit(MakeJob(1, "p0", 100));
  sched.Submit(MakeJob(2, "p1", 100));
  sched.Submit(MakeJob(3, "p1", 200));
  EXPECT_EQ(sched.pending(), 3u);
  auto a = sched.Dequeue();
  auto b = sched.Dequeue();
  EXPECT_EQ(sched.in_flight(), 2u);
  EXPECT_EQ(sched.pending(), 1u);
  sched.OnComplete(*a, true, 10, 10);
  sched.OnComplete(*b, false, 10, 10);
  EXPECT_EQ(sched.in_flight(), 0u);
  EXPECT_EQ(sched.metrics().completed, 1u);
  EXPECT_EQ(sched.metrics().failed, 1u);
}

// ------------------------------------------------- Per-subscriber windows

TEST(WindowTest, SinglePolicyWindowParksExcessAndReleasesFifo) {
  SinglePolicyScheduler sched(PolicyKind::kFifo, 16);
  sched.SetSubscriberWindow(2);
  for (FileId i = 1; i <= 5; ++i) sched.Submit(MakeJob(i, "a", 100));
  sched.Submit(MakeJob(10, "b", 100));
  auto j1 = sched.Dequeue();
  auto j2 = sched.Dequeue();
  ASSERT_TRUE(j1.has_value());
  ASSERT_TRUE(j2.has_value());
  EXPECT_EQ(sched.InFlightFor("a"), 2u);
  // "a" is window-full: the next dequeue skips over its parked backlog
  // and hands out "b"'s job instead.
  auto j3 = sched.Dequeue();
  ASSERT_TRUE(j3.has_value());
  EXPECT_EQ(j3->subscriber, "b");
  EXPECT_FALSE(sched.Dequeue().has_value());
  // The window-full pops were parked, not lost: still pending.
  EXPECT_EQ(sched.parked(), 3u);
  EXPECT_EQ(sched.pending(), 3u);
  // An ack reopens the window; parked jobs release in FIFO order.
  sched.OnComplete(*j1, true, 10, 10);
  auto j4 = sched.Dequeue();
  ASSERT_TRUE(j4.has_value());
  EXPECT_EQ(j4->file_id, 3u);
  EXPECT_EQ(sched.InFlightFor("a"), 2u);
  EXPECT_FALSE(sched.Dequeue().has_value());
}

TEST(WindowTest, WindowZeroIsUnlimited) {
  SinglePolicyScheduler sched(PolicyKind::kFifo, 16);
  for (FileId i = 1; i <= 5; ++i) sched.Submit(MakeJob(i, "a", 100));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(sched.Dequeue().has_value());
  EXPECT_EQ(sched.InFlightFor("a"), 5u);
  EXPECT_EQ(sched.parked(), 0u);
}

TEST(WindowTest, PartitionedWindowChargesSlotsOnlyForDispatchedJobs) {
  PartitionedScheduler::Options opts;
  opts.num_partitions = 1;
  opts.slots_per_partition = 4;
  PartitionedScheduler sched(opts);
  sched.SetSubscriberWindow(1);
  for (FileId i = 1; i <= 3; ++i) sched.Submit(MakeJob(i, "a", 100));
  sched.Submit(MakeJob(10, "b", 50));  // earlier deadline than a's backlog
  auto first = sched.Dequeue();
  auto second = sched.Dequeue();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // One job each: "a"'s window of 1 cannot eat both partition slots.
  EXPECT_NE(first->subscriber, second->subscriber);
  // Parked a-jobs don't hold partition slots: in_flight is exactly 2.
  EXPECT_EQ(sched.in_flight(), 2u);
  EXPECT_FALSE(sched.Dequeue().has_value());
  const TransferJob& a_job = first->subscriber == "a" ? *first : *second;
  sched.OnComplete(a_job, true, 10, 10);
  auto next = sched.Dequeue();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->subscriber, "a");
  EXPECT_EQ(sched.InFlightFor("a"), 1u);
  // Drain: completing everything leaves no in-flight and no parked jobs.
  sched.OnComplete(first->subscriber == "a" ? *second : *first, true, 10, 10);
  sched.OnComplete(*next, true, 10, 10);
  while (auto j = sched.Dequeue()) sched.OnComplete(*j, true, 10, 10);
  EXPECT_EQ(sched.in_flight(), 0u);
  EXPECT_EQ(sched.parked(), 0u);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(PartitionedSchedulerTest, RebalanceMovesSlowSubscriberDown) {
  PartitionedScheduler::Options opts;
  opts.num_partitions = 2;
  opts.slots_per_partition = 4;
  opts.rebalance_every = 1;
  PartitionedScheduler sched(opts);
  sched.SetPartition("fast", 0);
  sched.SetPartition("slow", 0);
  // Feed observations: fast moves 1 MB/s, slow 1 KB/s with failures.
  for (int i = 0; i < 20; ++i) {
    sched.Submit(MakeJob(100 + i, "fast", 1000));
    sched.Submit(MakeJob(200 + i, "slow", 1000));
    auto a = sched.Dequeue();
    auto b = sched.Dequeue();
    ASSERT_TRUE(a.has_value() && b.has_value());
    auto finish = [&](const TransferJob& j) {
      if (j.subscriber == "fast") {
        sched.OnComplete(j, true, 10, kMillisecond);
      } else {
        sched.OnComplete(j, true, 10, kSecond);
      }
    };
    finish(*a);
    finish(*b);
  }
  EXPECT_EQ(sched.PartitionOf("fast"), 0u);
  EXPECT_EQ(sched.PartitionOf("slow"), 1u);
}

}  // namespace
}  // namespace bistro

// Tests for the feed classifier: correctness of file-to-feed matching,
// multi-feed membership, unmatched routing, and equivalence of the
// prefix-index and linear strategies.

#include <gtest/gtest.h>

#include "classify/classifier.h"
#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"

namespace bistro {
namespace {

std::unique_ptr<FeedRegistry> MustRegistry(std::string_view text) {
  auto config = ParseConfig(text);
  EXPECT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  EXPECT_TRUE(registry.ok()) << registry.status();
  return std::move(*registry);
}

constexpr char kConfig[] = R"(
group SNMP {
  feed CPU    { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
  feed MEMORY { pattern "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz"; }
  feed BPS    { pattern "BPS_%s_%Y%m%d%H.csv"; }
}
feed ALL_TXT  { pattern "%s.txt"; }
)";

TEST(ClassifierTest, MatchesPaperExamples) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("MEMORY_POLLER1_2010092504_51.csv.gz");
  ASSERT_TRUE(c.matched());
  EXPECT_EQ(c.feeds, std::vector<FeedName>{"SNMP.MEMORY"});
  EXPECT_EQ(c.primary_match.ints[0], 1);
  ASSERT_TRUE(c.primary_match.timestamp.has_value());
  EXPECT_EQ(*c.primary_match.timestamp,
            FromCivil(CivilTime{2010, 9, 25, 4, 51, 0}));
}

TEST(ClassifierTest, FileCanBelongToMultipleFeeds) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("CPU_POLL2_201009250503.txt");
  ASSERT_TRUE(c.matched());
  // Matches both SNMP.CPU and the catch-all ALL_TXT.
  EXPECT_EQ(c.feeds.size(), 2u);
}

TEST(ClassifierTest, UnmatchedFilesReported) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("random_junk.dat");
  EXPECT_FALSE(c.matched());
  EXPECT_EQ(classifier.stats().unmatched, 1u);
  EXPECT_EQ(classifier.stats().files, 1u);
}

TEST(ClassifierTest, PrefixIndexPrunesCandidates) {
  // Build many feeds with distinct literal prefixes; the indexed
  // classifier should try far fewer patterns per file than linear.
  std::string config;
  for (int i = 0; i < 100; ++i) {
    config += StrFormat("feed F%03d { pattern \"feed%03d_x_%%Y%%m%%d.csv\"; }\n", i, i);
  }
  auto registry = MustRegistry(config);
  FeedClassifier indexed(registry.get(), FeedClassifier::IndexMode::kPrefixIndex);
  FeedClassifier linear(registry.get(), FeedClassifier::IndexMode::kLinear);
  auto ci = indexed.Classify("feed042_x_20101230.csv");
  auto cl = linear.Classify("feed042_x_20101230.csv");
  ASSERT_TRUE(ci.matched());
  ASSERT_TRUE(cl.matched());
  EXPECT_EQ(ci.feeds, cl.feeds);
  EXPECT_LT(indexed.stats().candidate_checks, 5u);
  EXPECT_EQ(linear.stats().candidate_checks, 100u);
}

TEST(ClassifierTest, IndexAndLinearAgreeOnRandomNames) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier indexed(registry.get(), FeedClassifier::IndexMode::kPrefixIndex);
  FeedClassifier linear(registry.get(), FeedClassifier::IndexMode::kLinear);
  Rng rng(99);
  std::vector<std::string> names = {
      "CPU_POLL1_201009250502.txt",
      "MEMORY_POLLER2_2010092510_02.csv.gz",
      "BPS_routerA_2010093011.csv",
      "readme.txt",
      "BPS_.csv",
      "",
      "CPU_POLL_201009250502.txt",
  };
  for (int i = 0; i < 200; ++i) {
    names.push_back(rng.AlnumString(rng.Uniform(30)));
    names.push_back("CPU_POLL" + std::to_string(rng.Uniform(100)) + "_" +
                    "201009250" + std::to_string(rng.Uniform(10)) + "0" +
                    std::to_string(rng.Uniform(6)) + ".txt");
  }
  for (const auto& name : names) {
    auto ci = indexed.Classify(name);
    auto cl = linear.Classify(name);
    EXPECT_EQ(ci.feeds, cl.feeds) << name;
  }
}

TEST(ClassifierTest, RebuildPicksUpFeedRevisions) {
  auto registry = MustRegistry(R"(feed F { pattern "old_%i.log"; })");
  FeedClassifier classifier(registry.get());
  EXPECT_TRUE(classifier.Classify("old_1.log").matched());
  EXPECT_FALSE(classifier.Classify("new_1.log").matched());
  FeedSpec revised = registry->FindFeed("F")->spec;
  revised.pattern = "new_%i.log";
  ASSERT_TRUE(registry->UpdateFeed(revised).ok());
  classifier.Rebuild();
  EXPECT_FALSE(classifier.Classify("old_1.log").matched());
  EXPECT_TRUE(classifier.Classify("new_1.log").matched());
}

TEST(ClassifierTest, EmptyPrefixPatternsAlwaysChecked) {
  auto registry = MustRegistry(R"(
feed CATCHALL { pattern "%s.gz"; }
feed SPECIFIC { pattern "exact_%i.gz"; }
)");
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("exact_7.gz");
  EXPECT_EQ(c.feeds.size(), 2u);
  auto c2 = classifier.Classify("anything.gz");
  EXPECT_EQ(c2.feeds, std::vector<FeedName>{"CATCHALL"});
}

}  // namespace
}  // namespace bistro

// Tests for the feed classifier: correctness of file-to-feed matching,
// multi-feed membership, unmatched routing, and equivalence of the
// prefix-index and linear strategies.

#include <gtest/gtest.h>

#include "classify/classifier.h"
#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"

namespace bistro {
namespace {

std::unique_ptr<FeedRegistry> MustRegistry(std::string_view text) {
  auto config = ParseConfig(text);
  EXPECT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  EXPECT_TRUE(registry.ok()) << registry.status();
  return std::move(*registry);
}

constexpr char kConfig[] = R"(
group SNMP {
  feed CPU    { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
  feed MEMORY { pattern "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz"; }
  feed BPS    { pattern "BPS_%s_%Y%m%d%H.csv"; }
}
feed ALL_TXT  { pattern "%s.txt"; }
)";

TEST(ClassifierTest, MatchesPaperExamples) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("MEMORY_POLLER1_2010092504_51.csv.gz");
  ASSERT_TRUE(c.matched());
  EXPECT_EQ(c.feeds, std::vector<FeedName>{"SNMP.MEMORY"});
  EXPECT_EQ(c.primary_match.ints[0], 1);
  ASSERT_TRUE(c.primary_match.timestamp.has_value());
  EXPECT_EQ(*c.primary_match.timestamp,
            FromCivil(CivilTime{2010, 9, 25, 4, 51, 0}));
}

TEST(ClassifierTest, FileCanBelongToMultipleFeeds) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("CPU_POLL2_201009250503.txt");
  ASSERT_TRUE(c.matched());
  // Matches both SNMP.CPU and the catch-all ALL_TXT.
  EXPECT_EQ(c.feeds.size(), 2u);
}

TEST(ClassifierTest, UnmatchedFilesReported) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("random_junk.dat");
  EXPECT_FALSE(c.matched());
  EXPECT_EQ(classifier.stats().unmatched, 1u);
  EXPECT_EQ(classifier.stats().files, 1u);
}

TEST(ClassifierTest, PrefixIndexPrunesCandidates) {
  // Build many feeds with distinct literal prefixes; the indexed
  // classifier should try far fewer patterns per file than linear.
  std::string config;
  for (int i = 0; i < 100; ++i) {
    config += StrFormat("feed F%03d { pattern \"feed%03d_x_%%Y%%m%%d.csv\"; }\n", i, i);
  }
  auto registry = MustRegistry(config);
  FeedClassifier indexed(registry.get(), FeedClassifier::IndexMode::kPrefixIndex);
  FeedClassifier linear(registry.get(), FeedClassifier::IndexMode::kLinear);
  auto ci = indexed.Classify("feed042_x_20101230.csv");
  auto cl = linear.Classify("feed042_x_20101230.csv");
  ASSERT_TRUE(ci.matched());
  ASSERT_TRUE(cl.matched());
  EXPECT_EQ(ci.feeds, cl.feeds);
  EXPECT_LT(indexed.stats().candidate_checks, 5u);
  EXPECT_EQ(linear.stats().candidate_checks, 100u);
}

TEST(ClassifierTest, IndexAndLinearAgreeOnRandomNames) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier indexed(registry.get(), FeedClassifier::IndexMode::kPrefixIndex);
  FeedClassifier linear(registry.get(), FeedClassifier::IndexMode::kLinear);
  Rng rng(99);
  std::vector<std::string> names = {
      "CPU_POLL1_201009250502.txt",
      "MEMORY_POLLER2_2010092510_02.csv.gz",
      "BPS_routerA_2010093011.csv",
      "readme.txt",
      "BPS_.csv",
      "",
      "CPU_POLL_201009250502.txt",
  };
  for (int i = 0; i < 200; ++i) {
    names.push_back(rng.AlnumString(rng.Uniform(30)));
    names.push_back("CPU_POLL" + std::to_string(rng.Uniform(100)) + "_" +
                    "201009250" + std::to_string(rng.Uniform(10)) + "0" +
                    std::to_string(rng.Uniform(6)) + ".txt");
  }
  for (const auto& name : names) {
    auto ci = indexed.Classify(name);
    auto cl = linear.Classify(name);
    EXPECT_EQ(ci.feeds, cl.feeds) << name;
  }
}

TEST(ClassifierTest, RebuildPicksUpFeedRevisions) {
  auto registry = MustRegistry(R"(feed F { pattern "old_%i.log"; })");
  FeedClassifier classifier(registry.get());
  EXPECT_TRUE(classifier.Classify("old_1.log").matched());
  EXPECT_FALSE(classifier.Classify("new_1.log").matched());
  FeedSpec revised = registry->FindFeed("F")->spec;
  revised.pattern = "new_%i.log";
  ASSERT_TRUE(registry->UpdateFeed(revised).ok());
  classifier.Rebuild();
  EXPECT_FALSE(classifier.Classify("old_1.log").matched());
  EXPECT_TRUE(classifier.Classify("new_1.log").matched());
}

TEST(ClassifierTest, EmptyPrefixPatternsAlwaysChecked) {
  auto registry = MustRegistry(R"(
feed CATCHALL { pattern "%s.gz"; }
feed SPECIFIC { pattern "exact_%i.gz"; }
)");
  FeedClassifier classifier(registry.get());
  auto c = classifier.Classify("exact_7.gz");
  EXPECT_EQ(c.feeds.size(), 2u);
  auto c2 = classifier.Classify("anything.gz");
  EXPECT_EQ(c2.feeds, std::vector<FeedName>{"CATCHALL"});
}

TEST(ClassifierTest, AutomatonAgreesWithLinearOnRandomNames) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier automaton(registry.get(),
                           FeedClassifier::IndexMode::kAutomaton);
  FeedClassifier linear(registry.get(), FeedClassifier::IndexMode::kLinear);
  Rng rng(7);
  std::vector<std::string> names = {
      "CPU_POLL1_201009250502.txt",
      "MEMORY_POLLER2_2010092510_02.csv.gz",
      "BPS_routerA_2010093011.csv",
      "readme.txt",
      "BPS_.csv",
      "",
      "CPU_POLL_201009250502.txt",
      "CPU_POLL1_201013250502.txt",  // month 13: digit classes must reject
      "CPU_POLL1_201009250562.txt",  // minute 62
  };
  for (int i = 0; i < 300; ++i) {
    names.push_back(rng.AlnumString(rng.Uniform(30)));
    names.push_back("CPU_POLL" + std::to_string(rng.Uniform(100)) + "_" +
                    "201009250" + std::to_string(rng.Uniform(10)) + "0" +
                    std::to_string(rng.Uniform(6)) + ".txt");
  }
  for (const auto& name : names) {
    auto ca = automaton.Classify(name);
    auto cl = linear.Classify(name);
    EXPECT_EQ(ca.feeds, cl.feeds) << name;
    EXPECT_EQ(ca.primary_match.strings, cl.primary_match.strings) << name;
    EXPECT_EQ(ca.primary_match.ints, cl.primary_match.ints) << name;
    EXPECT_EQ(ca.primary_match.timestamp, cl.primary_match.timestamp) << name;
  }
}

TEST(ClassifierTest, AutomatonSkipsCandidateChecks) {
  // The fused scan decides membership in one pass: no per-pattern match
  // attempts are charged for either accepted or rejected names (the one
  // extraction probe on the primary pattern is not a candidate check).
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get(),
                            FeedClassifier::IndexMode::kAutomaton);
  ASSERT_TRUE(classifier.Classify("CPU_POLL1_201009250502.txt").matched());
  ASSERT_FALSE(classifier.Classify("random_junk.dat").matched());
  EXPECT_EQ(classifier.stats().candidate_checks, 0u);
}

TEST(ClassifierTest, AutomatonLazyRebuildTracksRegistryVersion) {
  // No explicit Rebuild(): Classify notices the registry version bump
  // and recompiles the snapshot on the next call.
  auto registry = MustRegistry(R"(feed F { pattern "old_%i.log"; })");
  FeedClassifier classifier(registry.get(),
                            FeedClassifier::IndexMode::kAutomaton);
  EXPECT_TRUE(classifier.Classify("old_1.log").matched());
  FeedSpec revised = registry->FindFeed("F")->spec;
  revised.pattern = "new_%i.log";
  ASSERT_TRUE(registry->UpdateFeed(revised).ok());
  EXPECT_FALSE(classifier.Classify("old_1.log").matched());
  EXPECT_TRUE(classifier.Classify("new_1.log").matched());
}

TEST(ClassifierTest, AutomatonHandlesPercentLiteralAndPrefixlessPatterns) {
  auto registry = MustRegistry(R"(
feed PCT    { pattern "disk_%%full_%i.log"; }
feed NOPREF { pattern "%s_POLL%i.csv"; }
)");
  FeedClassifier automaton(registry.get(),
                           FeedClassifier::IndexMode::kAutomaton);
  FeedClassifier linear(registry.get(), FeedClassifier::IndexMode::kLinear);
  for (const char* name :
       {"disk_%full_9.log", "disk_full_9.log", "router_POLL3.csv",
        "a_b_POLL12.csv", "_POLL1.csv", "POLL1.csv"}) {
    auto ca = automaton.Classify(name);
    auto cl = linear.Classify(name);
    EXPECT_EQ(ca.feeds, cl.feeds) << name;
    EXPECT_EQ(ca.primary_match.strings, cl.primary_match.strings) << name;
    EXPECT_EQ(ca.primary_match.ints, cl.primary_match.ints) << name;
  }
  auto c = automaton.Classify("disk_%full_9.log");
  ASSERT_TRUE(c.matched());
  EXPECT_EQ(c.primary_match.ints, std::vector<int64_t>{9});
}

TEST(ClassifierTest, AutomatonOverlapKeepsLinearFeedOrder) {
  auto registry = MustRegistry(R"(
feed WIDE   { pattern "%s.txt"; }
feed MID    { pattern "log_%s.txt"; }
feed EXACT  { pattern "log_%i.txt"; }
)");
  FeedClassifier automaton(registry.get(),
                           FeedClassifier::IndexMode::kAutomaton);
  FeedClassifier linear(registry.get(), FeedClassifier::IndexMode::kLinear);
  auto ca = automaton.Classify("log_42.txt");
  auto cl = linear.Classify("log_42.txt");
  ASSERT_EQ(ca.feeds.size(), 3u);
  EXPECT_EQ(ca.feeds, cl.feeds);
  // Extraction comes from the first matching feed's pattern, as in
  // linear mode: WIDE's %s captures "log_42".
  EXPECT_EQ(ca.primary_match.strings, cl.primary_match.strings);
}

TEST(ClassifierTest, LongDigitRunsReverifyAgainstExactMatcher) {
  // The DFA's %i loop accepts any digit run, but Pattern::Match refuses
  // spans whose value overflows int64. Runs of >= 19 digits trip the
  // scan's verify flag and fall back to the exact matcher.
  auto registry = MustRegistry(R"(feed F { pattern "n_%i.log"; })");
  FeedClassifier classifier(registry.get(),
                            FeedClassifier::IndexMode::kAutomaton);
  // 25 ones: every suffix split overflows or breaks the literal tail.
  EXPECT_FALSE(
      classifier.Classify("n_1111111111111111111111111.log").matched());
  // Same length but value 1: leading zeros keep it in range.
  auto c = classifier.Classify("n_0000000000000000000000001.log");
  ASSERT_TRUE(c.matched());
  EXPECT_EQ(c.primary_match.ints, std::vector<int64_t>{1});
  // The verify path charges candidate checks; the fast path never does.
  EXPECT_GT(classifier.stats().candidate_checks, 0u);
}

TEST(ClassifierTest, IndexModeNamesRoundTrip) {
  for (auto mode : {FeedClassifier::IndexMode::kLinear,
                    FeedClassifier::IndexMode::kPrefixIndex,
                    FeedClassifier::IndexMode::kAutomaton}) {
    auto parsed = IndexModeFromName(IndexModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(IndexModeFromName("bogus").ok());
}

TEST(ClassifierTest, AutomatonStatsAreExposed) {
  auto registry = MustRegistry(kConfig);
  FeedClassifier classifier(registry.get(),
                            FeedClassifier::IndexMode::kAutomaton);
  classifier.Rebuild();
  auto snapshot = classifier.automaton();
  ASSERT_NE(snapshot, nullptr);
  const AutomatonStats& stats = snapshot->stats();
  EXPECT_EQ(stats.patterns, 4u);
  EXPECT_GT(stats.dfa_states, 1u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_EQ(stats.dense_rows + stats.sparse_rows, stats.dfa_states);
  EXPECT_EQ(snapshot->feed_count(), 4u);
}

}  // namespace
}  // namespace bistro

// Unit tests for the common substrate: Status/Result, strings, time,
// hashing, RNG, thread pool, blocking queue.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/logging.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "common/time.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing feed");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing feed");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IoError("disk full").WithContext("staging write");
  EXPECT_EQ(s.ToString(), "IoError: staging write: disk full");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Aborted("boom"); };
  auto wrapper = [&]() -> Status {
    BISTRO_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAborted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("value");
    return Status::NotFound("nope");
  };
  auto use = [&](bool ok) -> Status {
    BISTRO_ASSIGN_OR_RETURN(std::string v, make(ok));
    EXPECT_EQ(v, "value");
    return Status::OK();
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_TRUE(use(false).IsNotFound());
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, ","), "a,b,,c");
  EXPECT_EQ(SplitSkipEmpty("a,b,,c", ',').size(), 3u);
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("MEMORY_poller1", "MEMORY"));
  EXPECT_FALSE(StartsWith("MEM", "MEMORY"));
  EXPECT_TRUE(EndsWith("file.csv.gz", ".gz"));
  EXPECT_FALSE(EndsWith("gz", "csv.gz"));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(ParseInt("123"), 123);
  EXPECT_EQ(ParseInt("-5"), -5);
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "x", 7), "x=7");
  EXPECT_EQ(StrFormat("%05d", 42), "00042");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  // Symmetry.
  EXPECT_EQ(EditDistance("poller1", "Poller12"), EditDistance("Poller12", "poller1"));
}

// ---------------------------------------------------------------- Time

TEST(TimeTest, CivilRoundTrip) {
  CivilTime c{2010, 12, 30, 23, 59, 58};
  TimePoint t = FromCivil(c);
  EXPECT_EQ(ToCivil(t), c);
}

TEST(TimeTest, EpochIsZero) {
  CivilTime c{1970, 1, 1, 0, 0, 0};
  EXPECT_EQ(FromCivil(c), 0);
}

TEST(TimeTest, FormatAndParse) {
  CivilTime c{2011, 6, 12, 9, 30, 0};
  TimePoint t = FromCivil(c);
  EXPECT_EQ(FormatTime(t), "2011-06-12 09:30:00");
  EXPECT_EQ(ParseTime("2011-06-12 09:30:00"), t);
  EXPECT_EQ(ParseTime("2011-06-12"), FromCivil(CivilTime{2011, 6, 12}));
  EXPECT_FALSE(ParseTime("junk").has_value());
}

TEST(TimeTest, ParseDuration) {
  EXPECT_EQ(ParseDuration("30s"), 30 * kSecond);
  EXPECT_EQ(ParseDuration("5m"), 5 * kMinute);
  EXPECT_EQ(ParseDuration("500ms"), 500 * kMillisecond);
  EXPECT_EQ(ParseDuration("2h"), 2 * kHour);
  EXPECT_EQ(ParseDuration("1d"), kDay);
  EXPECT_FALSE(ParseDuration("5 parsecs").has_value());
}

TEST(TimeTest, SimClockAdvance) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(120);  // never goes backwards
  EXPECT_EQ(clock.Now(), 150);
}

TEST(TimeTest, SimClockSleepUnblocksOnAdvance) {
  SimClock clock(0);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepFor(1000);
    woke = true;
  });
  // The sleeper's deadline is at least 1000, so it cannot have woken yet.
  clock.AdvanceTo(999);
  EXPECT_FALSE(woke.load());
  // The sleeper may not have entered SleepFor yet (its deadline is
  // computed on entry), so keep advancing until it wakes.
  while (!woke.load()) {
    clock.Advance(1000);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

// ---------------------------------------------------------------- Hash

TEST(HashTest, Crc32KnownVector) {
  // CRC32("123456789") == 0xCBF43926 is the canonical check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(HashTest, Fnv1aDistinct) {
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64("feed"), Fnv1a64("feed"));
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, ZipfSkewsLow) {
  Rng rng(11);
  ZipfGenerator zipf(100, 0.99, &rng);
  int low = 0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 100u);
    if (v < 10) ++low;
  }
  // With theta~1, the first 10% of ranks should dominate.
  EXPECT_GT(low, kSamples / 2);
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, MemorySinkCapturesRecords) {
  SimClock clock(5 * kSecond);
  Logger logger(&clock);
  auto sink = std::make_shared<MemorySink>();
  logger.AddSink(sink);
  logger.Info("classifier", "matched file");
  logger.Alarm("monitor", "feed stalled");
  EXPECT_EQ(sink->Count(), 2u);
  EXPECT_EQ(sink->CountAtLeast(LogLevel::kAlarm), 1u);
  auto records = sink->TakeRecords();
  EXPECT_EQ(records[0].component, "classifier");
  EXPECT_EQ(records[0].time, 5 * kSecond);
  EXPECT_EQ(sink->Count(), 0u);
}

TEST(LoggingTest, MinLevelFilters) {
  Logger logger;
  auto sink = std::make_shared<MemorySink>();
  logger.AddSink(sink);
  logger.SetMinLevel(LogLevel::kWarning);
  logger.Debug("x", "dropped");
  logger.Info("x", "dropped");
  logger.Warning("x", "kept");
  EXPECT_EQ(sink->Count(), 1u);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter++; }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

// ---------------------------------------------------------------- Queue

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseUnblocksConsumers) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  q.Close();
  consumer.join();
  EXPECT_FALSE(q.Push(1));
}

TEST(BlockingQueueTest, ProducerConsumer) {
  BlockingQueue<int> q;
  std::atomic<long> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) sum += *v;
    });
  }
  long expected = 0;
  for (int i = 1; i <= 1000; ++i) {
    q.Push(i);
    expected += i;
  }
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace bistro

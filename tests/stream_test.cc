// Tests for the incremental analyzer (DESIGN.md §11): golden equivalence
// with the batch FeedAnalyzer — same discovered feeds, false-negative and
// false-positive reports on the same corpora — plus the streaming-only
// properties: duplicate suppression, the retention budget, the exemplar
// reservoir, parallel-fold determinism and the bistro_analyzer_* metrics.

#include <set>

#include <gtest/gtest.h>

#include "analyzer/stream.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "config/parser.h"
#include "obs/metrics.h"
#include "sim/sources.h"

namespace bistro {
namespace {

// The exact file set from §5.1 of the paper (also in analyzer_test.cc).
std::vector<FileObservation> PaperCorpus() {
  return {
      {"MEMORY_POLLER1_2010092504_51.csv.gz", 0},
      {"CPU_POLL1_201009250502.txt", 0},
      {"MEMORY_POLLER2_2010092504_59.csv.gz", 0},
      {"MEMORY_POLLER1_2010092509_58.csv.gz", 0},
      {"CPU_POLL2_201009250503.txt", 0},
      {"MEMORY_POLLER2_2010092510_02.csv.gz", 0},
      {"CPU_POLL2_201009251001.txt", 0},
      {"CPU_POLL2_201009250959.txt", 0},
  };
}

std::unique_ptr<FeedRegistry> MustRegistry(std::string_view text) {
  auto config = ParseConfig(text);
  EXPECT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  EXPECT_TRUE(registry.ok()) << registry.status();
  return std::move(*registry);
}

// A drifting multi-template corpus, deduplicated by name so batch and
// incremental see identical populations (the incremental corpus drops
// re-observations by design; §3.1 names are unique in production).
std::vector<FileObservation> GeneratedCorpus() {
  Rng rng(77);
  CorpusGenerator gen(&rng);
  std::vector<CorpusGenerator::FeedTemplate> templates(3);
  templates[0].metric = "MEMORY";
  templates[0].style = CorpusGenerator::FeedTemplate::Style::kSplitStamp;
  templates[1].metric = "CPU";
  templates[1].style = CorpusGenerator::FeedTemplate::Style::kWideStamp;
  templates[2].metric = "BPS";
  templates[2].style = CorpusGenerator::FeedTemplate::Style::kSeparatedDate;
  auto corpus = gen.Generate(templates, /*junk=*/5,
                             FromCivil(CivilTime{2010, 9, 25}));
  std::vector<FileObservation> observations;
  std::set<std::string> seen;
  for (const auto& l : corpus) {
    if (seen.insert(l.obs.name).second) observations.push_back(l.obs);
  }
  return observations;
}

// ------------------------------------------------- golden equivalence

TEST(StreamGoldenTest, InductionMatchesBatchOnPaperCorpus) {
  DiscoveryOptions options;
  options.min_support = 2;
  auto batch = DiscoverFeeds(PaperCorpus(), options);
  for (size_t workers : {0u, 4u}) {
    IncrementalCorpus corpus;
    ThreadPool pool(workers);
    corpus.ObserveBatch(PaperCorpus(), workers > 0 ? &pool : nullptr);
    auto incremental = corpus.Induce(options, workers > 0 ? &pool : nullptr);
    EXPECT_EQ(incremental.feeds, batch.feeds) << "workers=" << workers;
    EXPECT_EQ(incremental.outliers, batch.outliers) << "workers=" << workers;
  }
}

TEST(StreamGoldenTest, InductionMatchesBatchOnGeneratedCorpus) {
  auto observations = GeneratedCorpus();
  DiscoveryOptions options;
  options.min_support = 3;
  auto batch = DiscoverFeeds(observations, options);
  ASSERT_FALSE(batch.feeds.empty());
  for (size_t workers : {0u, 4u}) {
    IncrementalCorpus corpus;
    ThreadPool pool(workers);
    corpus.ObserveBatch(observations, workers > 0 ? &pool : nullptr);
    auto incremental = corpus.Induce(options, workers > 0 ? &pool : nullptr);
    EXPECT_EQ(incremental.feeds, batch.feeds) << "workers=" << workers;
    EXPECT_EQ(incremental.outliers, batch.outliers) << "workers=" << workers;
  }
}

TEST(StreamGoldenTest, DiscoverySuggestionsMatchBatch) {
  auto registry = MustRegistry("");
  Logger logger;
  FeedAnalyzer::Options options;
  options.discovery.min_support = 2;
  FeedAnalyzer batch(registry.get(), &logger, options);
  auto expected = batch.DiscoverNewFeeds(PaperCorpus());
  ASSERT_EQ(expected.size(), 2u);

  for (size_t workers : {0u, 4u}) {
    IncrementalAnalyzer::Options opts;
    opts.analyzer = options;
    opts.workers = workers;
    IncrementalAnalyzer analyzer(registry.get(), &logger, nullptr, opts);
    analyzer.ObserveUnmatched(PaperCorpus());
    EXPECT_EQ(analyzer.DiscoverNewFeeds(), expected) << "workers=" << workers;
  }
}

TEST(StreamGoldenTest, FalseNegativesMatchBatch) {
  auto registry = MustRegistry(R"(
feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
feed OTHER  { pattern "invoice-%i.pdf"; }
)");
  Logger logger;
  FeedAnalyzer batch(registry.get(), &logger);
  std::vector<FileObservation> unmatched = {
      {"MEMORY_Poller1_20100926.gz", 0},
      {"MEMORY_Poller2_20100926.gz", 0},
      {"MEMORY_Poller1_20100927.gz", 0},
  };
  auto expected = batch.DetectFalseNegatives(unmatched);
  ASSERT_EQ(expected.size(), 1u);

  for (size_t workers : {0u, 4u}) {
    IncrementalAnalyzer::Options opts;
    opts.workers = workers;
    IncrementalAnalyzer analyzer(registry.get(), &logger, nullptr, opts);
    analyzer.ObserveUnmatched(unmatched);
    EXPECT_EQ(analyzer.DetectFalseNegatives(), expected)
        << "workers=" << workers;
  }
}

TEST(StreamGoldenTest, FalsePositivesMatchBatch) {
  auto registry = MustRegistry(R"(feed BPS { pattern "%s_%Y%m%d%H.csv"; })");
  Logger logger;
  FeedAnalyzer::Options options;
  options.fp_max_support = 0.2;
  FeedAnalyzer batch(registry.get(), &logger, options);
  std::vector<FileObservation> matched;
  TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  for (int i = 0; i < 40; ++i) {
    CivilTime c = ToCivil(start + i * kHour);
    matched.push_back({StrFormat("BPS_poller_%04d%02d%02d%02d.csv", c.year,
                                 c.month, c.day, c.hour),
                       0});
  }
  for (int i = 0; i < 3; ++i) {
    CivilTime c = ToCivil(start + i * kHour);
    matched.push_back({StrFormat("PPSx_%04d%02d%02d%02d.csv", c.year, c.month,
                                 c.day, c.hour),
                       0});
  }
  auto expected = batch.DetectFalsePositives("BPS", matched);
  ASSERT_EQ(expected.size(), 1u);

  IncrementalAnalyzer::Options opts;
  opts.analyzer = options;
  IncrementalAnalyzer analyzer(registry.get(), &logger, nullptr, opts);
  for (const auto& obs : matched) analyzer.ObserveMatched("BPS", obs);
  EXPECT_EQ(analyzer.DetectFalsePositives("BPS"), expected);
}

TEST(StreamGoldenTest, CycleMatchesBatchDaemonComposition) {
  // The daemon's composition: FN detection first, then new-feed discovery
  // over only the names NOT explained as false negatives. The incremental
  // cycle must reproduce the batch pipeline exactly (InduceExcluding).
  auto registry =
      MustRegistry(R"(feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; })");
  Logger logger;
  FeedAnalyzer::Options options;
  options.discovery.min_support = 3;
  std::vector<FileObservation> unmatched;
  for (int i = 1; i <= 3; ++i) {
    unmatched.push_back({StrFormat("MEMORY_Poller%d_20100926.gz", i), 0});
  }
  for (int i = 1; i <= 4; ++i) {
    unmatched.push_back({StrFormat("GPSFEED_unit%d_20100926.csv", i), 0});
  }

  FeedAnalyzer batch(registry.get(), &logger, options);
  auto expected_fn = batch.DetectFalseNegatives(unmatched);
  ASSERT_EQ(expected_fn.size(), 1u);
  std::set<std::string> explained;
  for (const auto& report : expected_fn) {
    explained.insert(report.files.begin(), report.files.end());
  }
  std::vector<FileObservation> remaining;
  for (const auto& obs : unmatched) {
    if (explained.count(obs.name) == 0) remaining.push_back(obs);
  }
  auto expected_new = batch.DiscoverNewFeeds(remaining);
  ASSERT_EQ(expected_new.size(), 1u);

  for (size_t workers : {0u, 4u}) {
    IncrementalAnalyzer::Options opts;
    opts.analyzer = options;
    opts.workers = workers;
    IncrementalAnalyzer analyzer(registry.get(), &logger, nullptr, opts);
    analyzer.ObserveUnmatched(unmatched);
    auto cycle = analyzer.RunCycle();
    EXPECT_EQ(cycle.false_negatives, expected_fn) << "workers=" << workers;
    EXPECT_EQ(cycle.new_feeds, expected_new) << "workers=" << workers;
    EXPECT_TRUE(cycle.false_positives.empty());
  }
}

TEST(StreamGoldenTest, InduceExcludingMatchesBatchOnSubset) {
  auto observations = PaperCorpus();
  // Exclude the MEMORY group; the result must equal batch discovery over
  // only the remaining (CPU) observations.
  std::set<std::string> exclude;
  std::vector<FileObservation> remaining;
  for (const auto& obs : observations) {
    if (obs.name.rfind("MEMORY", 0) == 0) {
      exclude.insert(obs.name);
    } else {
      remaining.push_back(obs);
    }
  }
  DiscoveryOptions options;
  options.min_support = 2;
  auto batch = DiscoverFeeds(remaining, options);
  ASSERT_EQ(batch.feeds.size(), 1u);

  IncrementalCorpus corpus;
  corpus.ObserveBatch(observations);
  auto excluded = corpus.InduceExcluding(exclude, options);
  EXPECT_EQ(excluded.feeds, batch.feeds);
  EXPECT_EQ(excluded.outliers, batch.outliers);
  // Excluding nothing degenerates to plain induction.
  auto all = corpus.InduceExcluding({}, options);
  EXPECT_EQ(all.feeds, corpus.Induce(options).feeds);
}

// ------------------------------------------------- streaming properties

TEST(StreamCorpusTest, DuplicatesDroppedByNameAndId) {
  IncrementalCorpus corpus;
  FileObservation obs{"CPU_POLL1_201009250502.txt", 0, 42};
  EXPECT_TRUE(corpus.Observe(obs));
  EXPECT_FALSE(corpus.Observe(obs));  // same name and id
  // Same id under a different name: the landing zone re-scan can present
  // a renamed path, but the FileId pins identity.
  EXPECT_FALSE(corpus.Observe({"CPU_POLL1_renamed.txt", 0, 42}));
  // Same name, no id (hash fallback): still a duplicate.
  EXPECT_FALSE(corpus.Observe({"CPU_POLL1_201009250502.txt", 0}));
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.stats().duplicates, 3u);
}

TEST(StreamCorpusTest, RetentionBudgetShedsOldestFirst) {
  IncrementalCorpus::Options options;
  options.max_corpus = 10;
  options.shards = 4;
  IncrementalCorpus corpus(options);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(corpus.Observe({StrFormat("LOG_%d_20101230.txt", i), 0}));
  }
  EXPECT_EQ(corpus.size(), 10u);
  EXPECT_EQ(corpus.stats().shed, 15u);
  // The survivors are the 15..24 suffix (FIFO), still one live cluster.
  auto bucket = corpus.GeneralizedBucket("LOG_%i_%Y%m%d.txt");
  ASSERT_EQ(bucket.size(), 10u);
  EXPECT_EQ(bucket.front(), "LOG_15_20101230.txt");
  EXPECT_EQ(bucket.back(), "LOG_24_20101230.txt");
  DiscoveryOptions discovery;
  discovery.min_support = 1;
  auto result = corpus.Induce(discovery);
  ASSERT_EQ(result.feeds.size(), 1u);
  EXPECT_EQ(result.feeds[0].file_count, 10u);
}

TEST(StreamCorpusTest, ReservoirBoundsExemplarsNotCounts) {
  IncrementalCorpus::Options options;
  options.max_exemplars = 4;
  IncrementalCorpus corpus(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(corpus.Observe({StrFormat("CPU_%d_20101230.txt", i), 0}));
  }
  EXPECT_EQ(corpus.size(), 100u);
  EXPECT_EQ(corpus.cluster_count(), 1u);
  DiscoveryOptions discovery;
  discovery.min_support = 1;
  auto result = corpus.Induce(discovery);
  ASSERT_EQ(result.feeds.size(), 1u);
  // Support comes from the true member count, not the sampled exemplars.
  EXPECT_EQ(result.feeds[0].file_count, 100u);
  EXPECT_EQ(result.feeds[0].pattern, "CPU_%i_%Y%m%d.txt");
}

TEST(StreamCorpusTest, ParallelBatchMatchesInline) {
  auto observations = GeneratedCorpus();
  IncrementalCorpus inline_corpus, pooled_corpus;
  ThreadPool pool(4);
  EXPECT_EQ(inline_corpus.ObserveBatch(observations),
            pooled_corpus.ObserveBatch(observations, &pool));
  EXPECT_EQ(inline_corpus.size(), pooled_corpus.size());
  EXPECT_EQ(inline_corpus.cluster_count(), pooled_corpus.cluster_count());
  EXPECT_EQ(inline_corpus.stats().folds, pooled_corpus.stats().folds);
  EXPECT_EQ(inline_corpus.stats().new_clusters,
            pooled_corpus.stats().new_clusters);
  DiscoveryOptions discovery;
  discovery.min_support = 3;
  auto a = inline_corpus.Induce(discovery);
  auto b = pooled_corpus.Induce(discovery, &pool);
  EXPECT_EQ(a.feeds, b.feeds);
  EXPECT_EQ(a.outliers, b.outliers);
}

TEST(StreamAnalyzerTest, PublishesMetricsThroughRegistry) {
  auto registry = MustRegistry("");
  Logger logger;
  MetricsRegistry metrics;
  IncrementalAnalyzer::Options opts;
  opts.analyzer.discovery.min_support = 2;
  IncrementalAnalyzer analyzer(registry.get(), &logger, &metrics, opts);
  auto corpus = PaperCorpus();
  analyzer.ObserveUnmatched(corpus);
  analyzer.ObserveUnmatched(corpus);  // replay: every name is a duplicate
  analyzer.RunCycle();
  analyzer.RunCycle();
  uint64_t folds = metrics.GetCounter("bistro_analyzer_folds_total", "")->value();
  uint64_t fresh =
      metrics.GetCounter("bistro_analyzer_new_clusters_total", "")->value();
  EXPECT_EQ(folds + fresh, corpus.size());  // every admitted name counted once
  EXPECT_EQ(fresh, 2u);                     // two templates in the §5.1 corpus
  EXPECT_EQ(metrics.GetCounter("bistro_analyzer_duplicates_total", "")->value(),
            corpus.size());
  EXPECT_EQ(metrics.GetGauge("bistro_analyzer_corpus_retained", "")->value(),
            static_cast<int64_t>(corpus.size()));
  EXPECT_EQ(metrics.GetHistogram("bistro_analyzer_cycle_us", "")->Count(), 2u);
}

}  // namespace
}  // namespace bistro

// Multi-process federation end-to-end test: two REAL OS processes — an
// upstream Bistro server in this (parent) process and a downstream
// server in a fork()ed child — exchange a feed over real loopback TCP,
// and the downstream is SIGKILLed mid-stream and restarted from its
// durable state. The Bistro guarantee must hold across the crash:
//
//   every file deposited upstream is ingested downstream exactly once —
//   one arrival receipt per name, payload bytes intact — even though the
//   kill lands between deliveries and the upstream redelivers everything
//   unacked after the restart.
//
// The handoff is exactly-once by composition (DESIGN.md §12): the
// upstream retries until its delivery receipt is durable, the downstream
// acks an already-receipted name without re-ingesting, and a child ack
// is only sent after the arrival receipt's WAL write fsynced — so a
// SIGKILL at any instant either loses an unacked delivery (retried) or
// kills an acked one whose receipt already survives.
//
// The CI federation job shifts seeds via BISTRO_CHAOS_SEED_BASE.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "federation/federation.h"
#include "kv/receipts.h"
#include "net/socket_transport.h"
#include "trigger/trigger.h"
#include "vfs/localfs.h"

namespace bistro {
namespace {

int SeedBase() {
  const char* env = std::getenv("BISTRO_CHAOS_SEED_BASE");
  return env == nullptr ? 0 : std::atoi(env);
}

constexpr char kFeedConfig[] = R"(
feed FED { pattern "fed_%i_%Y%m%d%H%M.dat"; tardiness 1m; }
)";

// ---------------------------------------------------------- downstream

/// Downstream server body, run inside a fork()ed child. Listens on an
/// ephemeral port (written atomically to `port_file`), ingests whatever
/// the upstream pushes, and runs until SIGKILLed. Never returns.
[[noreturn]] void RunDownstream(const std::string& root,
                                const std::string& port_file) {
  LocalFileSystem fs;
  RealClock clock;
  EventLoop loop(&clock);
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  CallbackInvoker invoker;

  SocketTransport::Options topts;
  topts.listen_address = "127.0.0.1:0";
  SocketTransport transport(&loop, topts);
  if (!transport.Listen().ok()) _exit(3);

  auto config = ParseConfig(kFeedConfig);
  if (!config.ok()) _exit(4);

  BistroServer::Options opts;
  opts.landing_root = root + "/landing";
  opts.staging_root = root + "/staging";
  opts.db_dir = root + "/db";
  // Crash-consistent durability: an ack must never precede its receipt.
  opts.sync_staging = true;
  opts.kv.sync_wal = true;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  if (!server.ok()) _exit(5);

  FederationInbound inbound(server->get(), &logger);
  transport.SetInboundEndpoint(&inbound);

  // Port goes out only when the server is ready to ingest; the atomic
  // rename keeps the parent from reading a half-written file.
  std::string tmp = port_file + ".tmp";
  if (!fs.WriteFile(tmp, std::to_string(transport.listen_port())).ok() ||
      !fs.Rename(tmp, port_file).ok()) {
    _exit(6);
  }

  for (;;) loop.RunFor(50 * kMillisecond);
}

pid_t ForkDownstream(const std::string& root, const std::string& port_file) {
  pid_t pid = fork();
  if (pid == 0) RunDownstream(root, port_file);  // never returns
  return pid;
}

/// Polls (in real time) for the child's port file.
int AwaitPort(LocalFileSystem* fs, const std::string& port_file) {
  RealClock* clock = RealClock::Get();
  TimePoint deadline = clock->Now() + 30 * kSecond;
  while (clock->Now() < deadline) {
    if (fs->Exists(port_file)) {
      auto text = fs->ReadFile(port_file);
      if (text.ok() && !text->empty()) return std::atoi(text->c_str());
    }
    clock->SleepFor(10 * kMillisecond);
  }
  return -1;
}

void KillDownstream(pid_t pid) {
  ASSERT_GT(pid, 0);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
}

// ------------------------------------------------------------ the test

class FederationE2ETest : public ::testing::TestWithParam<int> {};

TEST_P(FederationE2ETest, ExactlyOnceAcrossDownstreamSigkill) {
  const int seed = SeedBase() + GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 17);

  char dir_template[] = "/tmp/bistro_fed_e2e_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string root = dir_template;
  const std::string up_root = root + "/up";
  const std::string down_root = root + "/down";

  LocalFileSystem fs;
  RealClock* clock = RealClock::Get();

  // ---- First downstream incarnation.
  pid_t child = ForkDownstream(down_root, root + "/port1");
  ASSERT_GT(child, 0);
  int port = AwaitPort(&fs, root + "/port1");
  ASSERT_GT(port, 0) << "downstream never published its port";

  // ---- Upstream server in this process, peer wired from config.
  EventLoop loop(clock);
  Logger logger(clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  CallbackInvoker invoker;

  auto config = ParseConfig(std::string(kFeedConfig) + R"(
peer down { address "127.0.0.1:1"; feeds FED; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  config->peers[0].address = "127.0.0.1:" + std::to_string(port);
  config->server.reconnect_backoff_min = 20 * kMillisecond;
  config->server.reconnect_backoff_max = 200 * kMillisecond;
  config->server.ack_timeout = 2 * kSecond;

  SocketTransport transport(
      &loop, SocketOptionsFromSpec(config->server,
                                   static_cast<uint64_t>(seed) + 1));

  BistroServer::Options opts;
  opts.landing_root = up_root + "/landing";
  opts.staging_root = up_root + "/staging";
  opts.db_dir = up_root + "/db";
  opts.sync_staging = true;
  opts.kv.sync_wal = true;
  opts.delivery.retry_backoff = 50 * kMillisecond;
  opts.delivery.retry_backoff_max = 500 * kMillisecond;
  opts.delivery.probe_interval = 100 * kMillisecond;
  opts.delivery.max_attempts = 1000000;  // the outage must not drop files
  opts.delivery.backoff_seed = static_cast<uint64_t>(seed) + 2;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE(
      WirePeers(*config, server->get(), &transport, &logger).ok());

  // ---- Traffic: N files with randomized payloads.
  const int num_files = 32 + static_cast<int>(rng.Uniform(16));
  std::map<std::string, std::string> expected;
  auto deposit = [&](int i) {
    std::string name = StrFormat("fed_%d_202608080%d%02d.dat", i,
                                 1 + i / 60, i % 60);
    std::string content = rng.AlnumString(64 + rng.Uniform(4096));
    expected[name] = content;
    ASSERT_TRUE((*server)->Deposit("src", name, content).ok());
  };

  auto queue_size = [&] {
    return (*server)
        ->receipts()
        ->ComputeDeliveryQueue("down", {"FED"})
        .size();
  };

  // First wave flows while the downstream is up; pump until some (a
  // seed-dependent fraction) are acked, so the kill lands mid-stream
  // with receipts on both sides of it.
  const int first_wave = num_files / 2;
  for (int i = 0; i < first_wave; ++i) deposit(i);
  const size_t drain_to =
      static_cast<size_t>(rng.Uniform(static_cast<uint64_t>(first_wave)));
  TimePoint deadline = clock->Now() + 60 * kSecond;
  while (queue_size() > drain_to && clock->Now() < deadline) {
    loop.RunFor(10 * kMillisecond);
  }
  ASSERT_LE(queue_size(), drain_to) << "first wave never flowed (seed "
                                    << seed << ")";

  // ---- SIGKILL the downstream mid-stream.
  KillDownstream(child);

  // Second wave lands during the outage; every send fails Unavailable
  // and parks in the retry/probe machinery.
  for (int i = first_wave; i < num_files; ++i) deposit(i);
  loop.RunFor(200 * kMillisecond);

  // ---- Restart the downstream on the same root: receipts and staged
  // bytes recover from the WAL; the listener binds a fresh port.
  child = ForkDownstream(down_root, root + "/port2");
  ASSERT_GT(child, 0);
  port = AwaitPort(&fs, root + "/port2");
  ASSERT_GT(port, 0) << "restarted downstream never published its port";
  transport.AddPeer("down", "127.0.0.1:" + std::to_string(port));

  // ---- Convergence: every file acquires a durable delivery receipt.
  deadline = clock->Now() + 120 * kSecond;
  while (queue_size() > 0 && clock->Now() < deadline) {
    loop.RunFor(10 * kMillisecond);
  }
  EXPECT_EQ(queue_size(), 0u)
      << "undelivered files after restart (seed " << seed << ")";
  EXPECT_TRUE((*server)->delivery()->dead_letters().empty());

  // ---- Kill the survivor too: the guarantee must already be durable.
  KillDownstream(child);

  // ---- Inspect the downstream's receipt database post-mortem.
  auto down_db = ReceiptDatabase::Open(&fs, down_root + "/db");
  ASSERT_TRUE(down_db.ok()) << down_db.status();
  EXPECT_EQ((*down_db)->ArrivalCount(), expected.size())
      << "downstream ingest count != deposited count (seed " << seed
      << "): a dup or a loss slipped through the crash";
  std::set<std::string> seen;
  for (FileId id : (*down_db)->FilesInFeed("FED")) {
    auto receipt = (*down_db)->GetArrival(id);
    ASSERT_TRUE(receipt.ok()) << receipt.status();
    EXPECT_TRUE(seen.insert(receipt->name).second)
        << "name ingested twice: " << receipt->name << " (seed " << seed
        << ")";
    auto it = expected.find(receipt->name);
    ASSERT_NE(it, expected.end()) << "unexpected file: " << receipt->name;
    // Payload bytes survived two TCP hops and a crash intact.
    auto staged = fs.ReadFile(receipt->staged_path);
    ASSERT_TRUE(staged.ok()) << receipt->staged_path << ": "
                             << staged.status();
    EXPECT_EQ(*staged, it->second) << receipt->name;
  }
  EXPECT_EQ(seen.size(), expected.size());

  transport.Shutdown();
  (void)std::system(("rm -rf " + root).c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederationE2ETest, ::testing::Range(0, 3));

}  // namespace
}  // namespace bistro

// Edge-case tests for the delivery engine and server paths not covered by
// the integration suite: retry exhaustion, staged-file loss, manual
// offline control, remote batch triggers, multi-feed files, the staging
// hot-file cache, scheduler slot accounting under rebalance, and the
// receipt archiver wired into maintenance.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/admin.h"
#include "core/server.h"
#include "delivery/payload_cache.h"
#include "fault/faulty_transport.h"
#include "fault/injector.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

struct Rig {
  SimClock clock{FromCivil(CivilTime{2010, 9, 25})};
  EventLoop loop{&clock};
  InMemoryFileSystem fs;
  LoopbackTransport transport{&loop};
  RecordingInvoker invoker;
  Logger logger{&clock};
  std::unique_ptr<BistroServer> server;

  explicit Rig(const char* config_text,
               BistroServer::Options options = BistroServer::Options()) {
    logger.SetMinLevel(LogLevel::kAlarm);
    auto config = ParseConfig(config_text);
    EXPECT_TRUE(config.ok()) << config.status();
    auto s = BistroServer::Create(options, *config, &fs, &transport, &loop,
                                  &invoker, &logger);
    EXPECT_TRUE(s.ok()) << s.status();
    server = std::move(*s);
  }
};

constexpr char kOneFeedOneSub[] = R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method push; }
)";

TEST(EngineTest, RetriesExhaustAfterMaxAttempts) {
  BistroServer::Options opts;
  opts.delivery.max_attempts = 3;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.offline_after_failures = 100;  // never flag offline here
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  sink.SetFailing(true);
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  const DeliveryStats& d = rig.server->delivery_stats();
  EXPECT_EQ(d.files_delivered, 0u);
  EXPECT_EQ(d.send_failures, 3u);  // initial + 2 retries = max_attempts
  EXPECT_EQ(d.retries, 2u);
  // No further events pending for this job.
  EXPECT_FALSE(rig.server->receipts()->Delivered("s", 1));
}

TEST(EngineTest, MissingStagedFileFailsJobWithoutCrash) {
  Rig rig(kOneFeedOneSub);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  // Make the subscriber offline via manual control so the file stays
  // queued, then destroy the staged copy before recovery.
  rig.server->delivery()->SetOffline("s", true);
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  EXPECT_EQ(sink.files_received(), 0u);
  auto receipt = rig.server->receipts()->GetArrival(1);
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(rig.fs.Delete(receipt->staged_path).ok());
  // Back online: backfill finds the file, but its bytes are gone.
  rig.server->delivery()->SetOffline("s", false);
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  EXPECT_EQ(sink.files_received(), 0u);
  EXPECT_GE(rig.server->scheduler_metrics().failed, 1u);
}

TEST(EngineTest, ManualOfflineParksAndManualOnlineBackfills) {
  Rig rig(kOneFeedOneSub);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  rig.server->delivery()->SetOffline("s", true);
  EXPECT_TRUE(rig.server->delivery()->IsOffline("s"));
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(rig.server
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  EXPECT_EQ(rig.server->delivery_stats().parked, 3u);
  EXPECT_EQ(sink.files_received(), 0u);
  rig.server->delivery()->SetOffline("s", false);
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  EXPECT_EQ(sink.files_received(), 3u);
}

TEST(EngineTest, RemoteBatchTriggerShipsEndOfBatchMessage) {
  Rig rig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method push; trigger batch count 2 remote; }
)");
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "a").ok());
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL2_201009250400.txt", "b").ok());
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  // The batch closed and reached the subscriber as a kEndOfBatch message
  // (sink.batches), not as a locally invoked command.
  EXPECT_EQ(sink.batches(), 1u);
  EXPECT_TRUE(rig.invoker.invocations().empty());
  EXPECT_EQ(rig.server->delivery_stats().triggers_invoked, 1u);
}

TEST(EngineTest, FileInMultipleFeedsDeliveredOncePerSubscriber) {
  // Two feeds both match; the subscriber follows both: it must still get
  // the file exactly once (pending-set dedupe across feeds).
  Rig rig(R"(
feed A { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
feed B { pattern "%s.txt"; }
subscriber s { feeds A, B; method push; }
)");
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  EXPECT_EQ(sink.files_received(), 1u);
  EXPECT_EQ(rig.server->delivery_stats().jobs_submitted, 1u);
}

TEST(EngineTest, HotFileCacheServesFanout) {
  Rig rig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s1 { feeds CPU; method push; }
subscriber s2 { feeds CPU; method push; }
subscriber s3 { feeds CPU; method push; }
)");
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint a(&sub_fs, "/a"), b(&sub_fs, "/b"), c(&sub_fs, "/c");
  rig.transport.Register("s1", &a);
  rig.transport.Register("s2", &b);
  rig.transport.Register("s3", &c);
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  const DeliveryStats& d = rig.server->delivery_stats();
  EXPECT_EQ(d.files_delivered, 3u);
  EXPECT_EQ(d.staging_reads, 1u);
  EXPECT_EQ(d.staging_cache_hits, 2u);
}

TEST(EngineTest, CacheAblationRereadsPerDispatch) {
  // cache_bytes 0 is the lockstep-baseline ablation: payloads are still
  // shared within one Get, but nothing is retained, so a fan-out of 3
  // dispatched as 3 jobs costs 3 staging reads.
  BistroServer::Options opts;
  opts.delivery.cache_bytes = 0;
  Rig rig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s1 { feeds CPU; method push; }
subscriber s2 { feeds CPU; method push; }
subscriber s3 { feeds CPU; method push; }
)",
          opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint a(&sub_fs, "/a"), b(&sub_fs, "/b"), c(&sub_fs, "/c");
  rig.transport.Register("s1", &a);
  rig.transport.Register("s2", &b);
  rig.transport.Register("s3", &c);
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  const DeliveryStats& d = rig.server->delivery_stats();
  EXPECT_EQ(d.files_delivered, 3u);
  EXPECT_EQ(d.staging_reads, 3u);
  EXPECT_EQ(d.staging_cache_hits, 0u);
}

// --------------------------------------------------- Staged payload cache

TEST(PayloadCacheTest, LruEvictsToByteBudget) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/a", "aaaa").ok());
  ASSERT_TRUE(fs.WriteFile("/b", "bbbb").ok());
  ASSERT_TRUE(fs.WriteFile("/c", "cccc").ok());
  StagedPayloadCache cache(&fs, 8);  // two 4-byte files fit
  auto a1 = cache.Get("/a");
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(*a1->payload, "aaaa");
  EXPECT_EQ(a1->crc, Crc32("aaaa"));
  auto a2 = cache.Get("/a");
  ASSERT_TRUE(a2.ok());
  // The hit hands back the same shared buffer, not a copy.
  EXPECT_EQ(a1->payload.get(), a2->payload.get());
  ASSERT_TRUE(cache.Get("/b").ok());
  EXPECT_EQ(cache.bytes(), 8u);
  EXPECT_EQ(cache.entries(), 2u);
  // /c displaces the least-recently-used entry (/a).
  ASSERT_TRUE(cache.Get("/c").ok());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Get("/b").ok());  // still cached
  EXPECT_EQ(cache.hits(), 2u);        // /a re-read, /b hit
  auto a3 = cache.Get("/a");          // miss again after eviction
  ASSERT_TRUE(a3.ok());
  EXPECT_EQ(cache.misses(), 4u);  // a, b, c, a
  // Eviction never frees an aliased payload: the original handle from
  // before the eviction still reads the bytes.
  EXPECT_EQ(*a1->payload, "aaaa");
}

TEST(PayloadCacheTest, ZeroBudgetServesWithoutRetention) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/a", "aaaa").ok());
  StagedPayloadCache cache(&fs, 0);
  ASSERT_TRUE(cache.Get("/a").ok());
  ASSERT_TRUE(cache.Get("/a").ok());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(PayloadCacheTest, OversizedEntryStaysUntilDisplacedAndInvalidateDrops) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/big", "0123456789").ok());
  ASSERT_TRUE(fs.WriteFile("/tiny", "tt").ok());
  StagedPayloadCache cache(&fs, 4);
  // A single entry is never evicted on its own insert, even over budget:
  // the immediate fan-out it serves is the whole point of the cache.
  ASSERT_TRUE(cache.Get("/big").ok());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.Get("/big").ok());
  EXPECT_EQ(cache.hits(), 1u);
  // The next insert pushes bytes over budget and evicts the LRU giant.
  ASSERT_TRUE(cache.Get("/tiny").ok());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  // Invalidate drops a (rewritten) path so the next Get re-reads.
  ASSERT_TRUE(fs.WriteFile("/tiny", "TT").ok());
  cache.Invalidate("/tiny");
  auto fresh = cache.Get("/tiny");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh->payload, "TT");
  EXPECT_EQ(fresh->crc, Crc32("TT"));
}

// ------------------------------------------------ Windows and coalescing

TEST(EngineTest, SendWindowDeliversEverythingExactlyOnce) {
  BistroServer::Options opts;
  opts.delivery.window = 2;
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(rig.server
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  EXPECT_EQ(sink.files_received(), 6u);
  EXPECT_EQ(sink.duplicates(), 0u);
  EXPECT_EQ(rig.server->delivery_stats().files_delivered, 6u);
  // Quiesced: the in-flight gauge reads zero after the run.
  EXPECT_EQ(
      rig.server->metrics()->GetGauge("bistro_delivery_inflight", "")->value(),
      0);
  for (FileId id = 1; id <= 6; ++id) {
    EXPECT_TRUE(rig.server->receipts()->Delivered("s", id)) << id;
  }
}

TEST(EngineTest, CoalescesSmallSameSubscriberFilesIntoOneFrame) {
  BistroServer::Options opts;
  opts.delivery.coalesce_bytes = 1024;
  // A window wide enough that the backfill's whole batch dequeues in one
  // round (the server scales scheduler slots to fit the window).
  opts.delivery.window = 8;
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  // Park three small files behind a manual offline flag so the backfill
  // dispatches them in one round — the coalescible shape.
  rig.server->delivery()->SetOffline("s", true);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(rig.server
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  rig.server->delivery()->SetOffline("s", false);
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  const DeliveryStats& d = rig.server->delivery_stats();
  EXPECT_EQ(d.coalesced_frames, 1u);
  EXPECT_EQ(d.coalesced_files, 3u);
  EXPECT_EQ(d.files_delivered, 3u);
  // Per-file delivery semantics survive the shared frame: each file
  // landed once and has its own durable receipt.
  EXPECT_EQ(sink.files_received(), 3u);
  EXPECT_EQ(sink.duplicates(), 0u);
  for (FileId id = 1; id <= 3; ++id) {
    EXPECT_TRUE(rig.server->receipts()->Delivered("s", id)) << id;
  }
  EXPECT_TRUE(sub_fs.Exists("/r/CPU/CPU_POLL2_201009250400.txt"));
}

TEST(EngineTest, CoalesceBudgetSplitsLargeRunsIntoMultipleFrames) {
  BistroServer::Options opts;
  opts.delivery.coalesce_bytes = 8;  // two 4-byte payloads per frame
  opts.delivery.window = 8;
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  rig.server->delivery()->SetOffline("s", true);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        rig.server
            ->Deposit("p", StrFormat("CPU_POLL%d_201009250400.txt", i), "wxyz")
            .ok());
  }
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  rig.server->delivery()->SetOffline("s", false);
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  const DeliveryStats& d = rig.server->delivery_stats();
  EXPECT_EQ(d.coalesced_frames, 2u);
  EXPECT_EQ(d.coalesced_files, 4u);
  EXPECT_EQ(sink.files_received(), 4u);
  EXPECT_EQ(sink.duplicates(), 0u);
}

// ------------------------------------------- Group-committed receipts

TEST(EngineTest, ReceiptGroupCommitsOnAckQuiescence) {
  BistroServer::Options opts;
  opts.delivery.receipt_group = 16;  // far above the traffic: quiescence
                                     // (not size) must trigger the flush
  opts.delivery.window = 8;  // all three sends in flight together
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  rig.server->delivery()->SetOffline("s", true);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(rig.server
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  rig.server->delivery()->SetOffline("s", false);
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  // All three acks buffered, then one group commit at quiescence.
  EXPECT_EQ(rig.server->delivery_stats().receipt_group_flushes, 1u);
  EXPECT_EQ(rig.server->delivery()->buffered_receipts(), 0u);
  for (FileId id = 1; id <= 3; ++id) {
    EXPECT_TRUE(rig.server->receipts()->Delivered("s", id)) << id;
  }
  EXPECT_EQ(sink.files_received(), 3u);
}

TEST(EngineTest, BufferedReceiptsFlushWithinTheIntervalDespiteInFlightJobs) {
  // A failing second subscriber keeps the engine from going quiescent the
  // moment the first ack lands; the flush-interval timer (or the eventual
  // quiescence) must still commit the buffered receipt promptly.
  BistroServer::Options opts;
  opts.delivery.receipt_group = 16;
  opts.delivery.receipt_flush_interval = 100 * kMillisecond;
  opts.delivery.retry_backoff = kMinute;
  opts.delivery.retry_jitter = false;
  opts.delivery.offline_after_failures = 100;
  Rig rig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber good { feeds CPU; method push; }
subscriber bad { feeds CPU; method push; }
)",
          opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint good(&sub_fs, "/g"), bad(&sub_fs, "/b");
  bad.SetFailing(true);
  rig.transport.Register("good", &good);
  rig.transport.Register("bad", &bad);
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + 10 * kSecond);
  EXPECT_TRUE(rig.server->receipts()->Delivered("good", 1));
  EXPECT_EQ(rig.server->delivery()->buffered_receipts(), 0u);
  EXPECT_EQ(rig.server->delivery_stats().receipt_group_flushes, 1u);
}

TEST(EngineTest, MaintenanceShipsReceiptSnapshotsToArchiver) {
  Rig rig(kOneFeedOneSub);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  InMemoryFileSystem archive_fs;
  ArchiverEndpoint archiver(&archive_fs, "/vault");
  rig.server->SetReceiptArchiver(&archiver);
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  rig.server->RunMaintenance();
  rig.server->RunMaintenance();
  EXPECT_EQ(archiver.receipt_snapshots(), 2u);
  // The latest snapshot restores into a working database.
  InMemoryFileSystem fresh;
  ASSERT_TRUE(RestoreReceiptState(&archive_fs, archiver,
                                  "receipts-0000000000000001", &fresh, "/db")
                  .ok());
  auto db = ReceiptDatabase::Open(&fresh, "/db");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->ArrivalCount(), 1u);
  EXPECT_TRUE((*db)->Delivered("s", 1));
  // Detach: no more snapshots.
  rig.server->SetReceiptArchiver(nullptr);
  rig.server->RunMaintenance();
  EXPECT_EQ(archiver.receipt_snapshots(), 2u);
}

TEST(EngineTest, NotifyMethodStillFeedsBatcher) {
  Rig rig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method notify; trigger batch count 2 exec "go"; }
)");
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "a").ok());
  ASSERT_TRUE(rig.server->Deposit("p", "CPU_POLL2_201009250400.txt", "b").ok());
  rig.loop.RunUntil(rig.clock.Now() + kSecond);
  EXPECT_EQ(sink.notifications(), 2u);
  ASSERT_EQ(rig.invoker.invocations().size(), 1u);
  EXPECT_EQ(rig.invoker.invocations()[0].command, "go");
  EXPECT_EQ(rig.server->delivery_stats().notifications_sent, 2u);
}

TEST(SchedulerSlotTest, RebalanceBetweenDequeueAndCompleteKeepsAccounting) {
  // The slot-owner map must free the slot of the partition the job was
  // dequeued from, even if the subscriber moved partitions meanwhile.
  PartitionedScheduler::Options opts;
  opts.num_partitions = 2;
  opts.slots_per_partition = 1;
  PartitionedScheduler sched(opts);
  sched.SetPartition("sub", 0);
  TransferJob job;
  job.file_id = 1;
  job.subscriber = "sub";
  sched.Submit(job);
  auto running = sched.Dequeue();
  ASSERT_TRUE(running.has_value());
  EXPECT_EQ(sched.in_flight(), 1u);
  sched.SetPartition("sub", 1);  // moved while in flight
  sched.OnComplete(*running, true, 10, 10);
  EXPECT_EQ(sched.in_flight(), 0u);
  // Partition 0's slot is free again: a new partition-0 job can run.
  sched.SetPartition("other", 0);
  TransferJob other;
  other.file_id = 2;
  other.subscriber = "other";
  sched.Submit(other);
  EXPECT_TRUE(sched.Dequeue().has_value());
}

// ---------------------------------------------------------- Heartbeats

TEST(HeartbeatTest, ProbeRestoresOfflineSubscriberAndBackfills) {
  BistroServer::Options opts;
  opts.delivery.offline_after_failures = 2;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_jitter = false;
  opts.delivery.probe_interval = 10 * kSecond;
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  int heartbeats = 0;
  sink.SetMessageHook([&](const Message& m) {
    if (m.type == MessageType::kHeartbeat) ++heartbeats;
  });
  sink.SetFailing(true);
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + 5 * kSecond);
  EXPECT_TRUE(rig.server->delivery()->IsOffline("s"));
  EXPECT_EQ(sink.files_received(), 0u);
  // Probes fire on the probe_interval cadence but fail against the still
  // failing subscriber: it must stay flagged offline.
  rig.loop.RunUntil(rig.clock.Now() + 25 * kSecond);
  EXPECT_TRUE(rig.server->delivery()->IsOffline("s"));
  EXPECT_EQ(heartbeats, 0);  // failing endpoint never handled one
  // Heal the subscriber: the next kHeartbeat probe succeeds, the engine
  // flips it online and backfills the missed file from receipts.
  sink.SetFailing(false);
  rig.loop.RunUntil(rig.clock.Now() + 15 * kSecond);
  EXPECT_FALSE(rig.server->delivery()->IsOffline("s"));
  EXPECT_GE(heartbeats, 1);
  EXPECT_EQ(sink.files_received(), 1u);
}

/// Routes sends through whichever transport `active` points at; lets a
/// test drop the wire (via FaultyTransport) and later heal it without
/// rebuilding the server.
struct SwitchableTransport : public Transport {
  Transport* active = nullptr;
  void Send(const std::string& endpoint, const Message& msg,
            SendCallback done) override {
    active->Send(endpoint, msg, std::move(done));
  }
  Duration EstimateCost(const std::string& endpoint,
                        uint64_t bytes) const override {
    return active->EstimateCost(endpoint, bytes);
  }
};

TEST(HeartbeatTest, DroppedProbesKeepSubscriberOfflineUntilWireHeals) {
  SimClock clock{FromCivil(CivilTime{2010, 9, 25})};
  EventLoop loop{&clock};
  InMemoryFileSystem fs;
  Logger logger{&clock};
  logger.SetMinLevel(LogLevel::kAlarm);
  RecordingInvoker invoker;
  LoopbackTransport wire{&loop};
  FaultPlan plan;
  plan.net.send_failure_prob = 1.0;  // every send (data or probe) dropped
  FaultInjector injector(plan);
  FaultyTransport dropping(&wire, &loop, &injector);
  SwitchableTransport transport;
  transport.active = &dropping;

  auto config = ParseConfig(kOneFeedOneSub);
  ASSERT_TRUE(config.ok()) << config.status();
  BistroServer::Options opts;
  opts.delivery.offline_after_failures = 2;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_jitter = false;
  opts.delivery.probe_interval = 10 * kSecond;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  ASSERT_TRUE(server.ok()) << server.status();
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  int heartbeats = 0;
  sink.SetMessageHook([&](const Message& m) {
    if (m.type == MessageType::kHeartbeat) ++heartbeats;
  });
  wire.Register("s", &sink);

  ASSERT_TRUE(
      (*server)->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  loop.RunUntil(clock.Now() + 5 * kSecond);
  EXPECT_TRUE((*server)->delivery()->IsOffline("s"));
  // Several probe intervals pass; every heartbeat is dropped before the
  // wire, so none reach the sink and the subscriber stays offline.
  loop.RunUntil(clock.Now() + 35 * kSecond);
  EXPECT_TRUE((*server)->delivery()->IsOffline("s"));
  EXPECT_EQ(heartbeats, 0);
  EXPECT_EQ(sink.files_received(), 0u);
  // Heal the wire: the next probe gets through and delivery resumes.
  transport.active = &wire;
  loop.RunUntil(clock.Now() + 15 * kSecond);
  EXPECT_FALSE((*server)->delivery()->IsOffline("s"));
  EXPECT_GE(heartbeats, 1);
  EXPECT_EQ(sink.files_received(), 1u);
  EXPECT_TRUE((*server)->receipts()->Delivered("s", 1));
}

// ------------------------------------------------------- Admin console

TEST(AdminTest, DeadLetterListingAndRedrive) {
  BistroServer::Options opts;
  opts.delivery.max_attempts = 2;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_jitter = false;
  opts.delivery.offline_after_failures = 100;  // exhaust retries instead
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  sink.SetFailing(true);
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  ASSERT_EQ(rig.server->delivery()->dead_letters().size(), 1u);

  std::string listing = ExecuteAdminCommand(rig.server.get(), "deadletters");
  EXPECT_NE(listing.find("CPU_POLL1_201009250400.txt"), std::string::npos);
  EXPECT_NE(listing.find("Dead letters (1)"), std::string::npos);
  EXPECT_NE(ExecuteAdminCommand(rig.server.get(), "bogus").find("unknown"),
            std::string::npos);
  EXPECT_NE(ExecuteAdminCommand(rig.server.get(), "help").find("redrive"),
            std::string::npos);
  EXPECT_NE(ExecuteAdminCommand(rig.server.get(), "  status  ")
                .find("Bistro server status"),
            std::string::npos);

  sink.SetFailing(false);
  std::string redriven = ExecuteAdminCommand(rig.server.get(), "redrive");
  EXPECT_NE(redriven.find("redriven 1"), std::string::npos);
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  EXPECT_EQ(sink.files_received(), 1u);
  EXPECT_TRUE(rig.server->delivery()->dead_letters().empty());
  EXPECT_EQ(ExecuteAdminCommand(rig.server.get(), "deadletters"),
            "dead-letter queue empty\n");
}

// ----------------------------------------------- Bounded pending_ pairs

TEST(EngineTest, PendingPairCapEvictsOldestWithoutLosingDeliveries) {
  BistroServer::Options opts;
  opts.delivery.max_pending_pairs = 2;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_jitter = false;
  Rig rig(kOneFeedOneSub, opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  rig.transport.Register("s", &sink);
  // Deposit a burst wider than the cap before the loop runs: the pending
  // set must evict oldest pairs rather than grow, and every file must
  // still be delivered exactly once.
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(rig.server
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  EXPECT_EQ(sink.files_received(), 5u);
  EXPECT_EQ(sink.duplicates(), 0u);
  Counter* evicted = rig.server->metrics()->GetCounter(
      "bistro_delivery_pending_evicted_total",
      "Pending pairs evicted by the size cap");
  EXPECT_GE(evicted->value(), 3u);
  Gauge* pairs = rig.server->metrics()->GetGauge(
      "bistro_delivery_pending_pairs", "Tracked (file, subscriber) pairs");
  EXPECT_EQ(pairs->value(), 0);
}

TEST(EngineTest, UnknownFeedGroupSubscriberRejectedAtCreate) {
  SimClock clock(0);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  RecordingInvoker invoker;
  Logger logger(&clock);
  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_%i.txt"; }
subscriber s { feeds NOPE; }
)");
  ASSERT_TRUE(config.ok());
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  EXPECT_FALSE(server.ok());
}

}  // namespace
}  // namespace bistro

// Tests for the durable KV substrate: WAL framing and torn-tail recovery,
// KvStore batches/checkpoints/crash-recovery, and the receipt database's
// delivery-queue computation (the paper's §4.2 reliability mechanism).

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "kv/kvstore.h"
#include "kv/receipts.h"
#include "kv/wal.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- WAL

TEST(WalTest, AppendAndReplay) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  ASSERT_TRUE(wal.Append("one").ok());
  ASSERT_TRUE(wal.Append("two").ok());
  ASSERT_TRUE(wal.Append("three").ok());
  std::vector<std::string> seen;
  bool torn = false;
  ASSERT_TRUE(wal.Replay([&](std::string_view r) { seen.emplace_back(r); }, &torn).ok());
  EXPECT_FALSE(torn);
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(WalTest, EmptyLogReplaysNothing) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  int count = 0;
  ASSERT_TRUE(wal.Replay([&](std::string_view) { count++; }).ok());
  EXPECT_EQ(count, 0);
}

TEST(WalTest, TornTailIsToleratedNotCorruption) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  ASSERT_TRUE(wal.Append("record_one").ok());
  ASSERT_TRUE(wal.Append("record_two").ok());
  // Simulate a crash mid-write: truncate the file by a few bytes.
  std::string data = *fs.ReadFile("/db/wal.log");
  ASSERT_TRUE(fs.WriteFile("/db/wal.log", std::string_view(data).substr(0, data.size() - 4)).ok());
  std::vector<std::string> seen;
  bool torn = false;
  ASSERT_TRUE(wal.Replay([&](std::string_view r) { seen.emplace_back(r); }, &torn).ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(seen, (std::vector<std::string>{"record_one"}));
}

TEST(WalTest, MidLogCorruptionIsError) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  ASSERT_TRUE(wal.Append("record_one").ok());
  ASSERT_TRUE(wal.Append("record_two").ok());
  std::string data = *fs.ReadFile("/db/wal.log");
  data[6] ^= 0x5A;  // flip a byte inside the first record's payload
  ASSERT_TRUE(fs.WriteFile("/db/wal.log", data).ok());
  Status s = wal.Replay([](std::string_view) {});
  EXPECT_TRUE(s.IsCorruption());
}

TEST(WalTest, TruncateRemovesLog) {
  InMemoryFileSystem fs;
  WriteAheadLog wal(&fs, "/db/wal.log");
  ASSERT_TRUE(wal.Append("x").ok());
  EXPECT_GT(wal.SizeBytes(), 0u);
  ASSERT_TRUE(wal.Truncate().ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  ASSERT_TRUE(wal.Truncate().ok());  // idempotent
}

// ---------------------------------------------------------------- KvStore

KvStore::Options NoAutoCheckpoint() {
  KvStore::Options o;
  o.checkpoint_wal_bytes = 0;
  return o;
}

TEST(KvStoreTest, PutGetDelete) {
  InMemoryFileSystem fs;
  auto store = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k1", "v1").ok());
  EXPECT_EQ(*(*store)->Get("k1"), "v1");
  EXPECT_TRUE((*store)->Contains("k1"));
  ASSERT_TRUE((*store)->Delete("k1").ok());
  EXPECT_TRUE((*store)->Get("k1").status().IsNotFound());
  EXPECT_EQ((*store)->Size(), 0u);
}

TEST(KvStoreTest, SurvivesReopen) {
  InMemoryFileSystem fs;
  {
    auto store = KvStore::Open(&fs, "/db", NoAutoCheckpoint());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("feed", "SNMP.CPU").ok());
    ASSERT_TRUE((*store)->Put("subscriber", "dallas").ok());
    ASSERT_TRUE((*store)->Delete("subscriber").ok());
  }  // "crash": no clean shutdown path exists, recovery is the only path
  auto store = KvStore::Open(&fs, "/db", NoAutoCheckpoint());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("feed"), "SNMP.CPU");
  EXPECT_FALSE((*store)->Contains("subscriber"));
}

TEST(KvStoreTest, BatchIsAtomicAcrossTornTail) {
  InMemoryFileSystem fs;
  {
    auto store = KvStore::Open(&fs, "/db", NoAutoCheckpoint());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("before", "1").ok());
    ASSERT_TRUE((*store)
                    ->Apply({KvStore::Write::Put("batch_a", "x"),
                             KvStore::Write::Put("batch_b", "y")})
                    .ok());
  }
  // Tear the tail of the WAL: the second batch should vanish entirely.
  std::string wal = *fs.ReadFile("/db/wal.log");
  ASSERT_TRUE(fs.WriteFile("/db/wal.log",
                           std::string_view(wal).substr(0, wal.size() - 2)).ok());
  auto store = KvStore::Open(&fs, "/db", NoAutoCheckpoint());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->recovered_torn_tail());
  EXPECT_TRUE((*store)->Contains("before"));
  EXPECT_FALSE((*store)->Contains("batch_a"));
  EXPECT_FALSE((*store)->Contains("batch_b"));
}

TEST(KvStoreTest, CheckpointThenRecover) {
  InMemoryFileSystem fs;
  {
    auto store = KvStore::Open(&fs, "/db", NoAutoCheckpoint());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)->Put("k" + std::to_string(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Checkpoint().ok());
    EXPECT_EQ((*store)->WalBytes(), 0u);
    // Post-checkpoint writes land in a fresh WAL.
    ASSERT_TRUE((*store)->Put("post", "ckpt").ok());
  }
  auto store = KvStore::Open(&fs, "/db", NoAutoCheckpoint());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Size(), 101u);
  EXPECT_EQ(*(*store)->Get("k42"), "42");
  EXPECT_EQ(*(*store)->Get("post"), "ckpt");
}

TEST(KvStoreTest, AutoCheckpointTriggers) {
  InMemoryFileSystem fs;
  KvStore::Options opts;
  opts.checkpoint_wal_bytes = 512;
  auto store = KvStore::Open(&fs, "/db", opts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(32, 'v')).ok());
  }
  // WAL must have been truncated at least once.
  EXPECT_LT((*store)->WalBytes(), 100 * 40u);
  EXPECT_TRUE(fs.Exists("/db/checkpoint.db"));
  // And the data survives reopen.
  auto reopened = KvStore::Open(&fs, "/db", opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Size(), 100u);
}

TEST(KvStoreTest, ScanPrefixOrdered) {
  InMemoryFileSystem fs;
  auto store = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("d/sub1/3", "c").ok());
  ASSERT_TRUE((*store)->Put("d/sub1/1", "a").ok());
  ASSERT_TRUE((*store)->Put("d/sub2/2", "b").ok());
  ASSERT_TRUE((*store)->Put("a/1", "x").ok());
  auto rows = (*store)->ScanPrefix("d/sub1/");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "d/sub1/1");
  EXPECT_EQ(rows[1].first, "d/sub1/3");
}

TEST(KvStoreTest, EmptyKeyAndValue) {
  InMemoryFileSystem fs;
  auto store = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("", "").ok());
  EXPECT_EQ(*(*store)->Get(""), "");
}

// ---------------------------------------------------------------- Receipts

ArrivalReceipt MakeReceipt(FileId id, const std::string& name,
                           std::vector<FeedName> feeds, TimePoint arrival) {
  ArrivalReceipt r;
  r.file_id = id;
  r.name = name;
  r.staged_path = "/staging/" + name;
  r.size = 100;
  r.arrival_time = arrival;
  r.data_time = arrival - kMinute;
  r.feeds = std::move(feeds);
  return r;
}

TEST(ReceiptsTest, FileIdsAreDurableAndMonotonic) {
  InMemoryFileSystem fs;
  FileId last = 0;
  {
    auto db = ReceiptDatabase::Open(&fs, "/receipts");
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 5; ++i) {
      auto id = (*db)->NextFileId();
      ASSERT_TRUE(id.ok());
      EXPECT_GT(*id, last);
      last = *id;
    }
  }
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  auto id = (*db)->NextFileId();
  ASSERT_TRUE(id.ok());
  EXPECT_GT(*id, last);
}

TEST(ReceiptsTest, ArrivalRoundTrip) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  auto r = MakeReceipt(7, "CPU_POLL1_201009250502.txt", {"SNMP.CPU"}, 10 * kSecond);
  ASSERT_TRUE((*db)->RecordArrival(r).ok());
  auto got = (*db)->GetArrival(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->name, r.name);
  EXPECT_EQ(got->staged_path, r.staged_path);
  EXPECT_EQ(got->arrival_time, r.arrival_time);
  EXPECT_EQ(got->data_time, r.data_time);
  EXPECT_EQ(got->feeds, r.feeds);
  EXPECT_EQ((*db)->FilesInFeed("SNMP.CPU"), std::vector<FileId>{7});
}

TEST(ReceiptsTest, DeliveryQueueIsArrivalMinusDelivered) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  for (FileId id = 1; id <= 4; ++id) {
    ASSERT_TRUE((*db)
                    ->RecordArrival(MakeReceipt(id, "f" + std::to_string(id),
                                                {"SNMP.CPU"}, id * kSecond))
                    .ok());
  }
  ASSERT_TRUE((*db)->RecordDelivery("dallas", 1, 10 * kSecond).ok());
  ASSERT_TRUE((*db)->RecordDelivery("dallas", 3, 10 * kSecond).ok());
  auto queue = (*db)->ComputeDeliveryQueue("dallas", {"SNMP.CPU"});
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].file_id, 2u);
  EXPECT_EQ(queue[1].file_id, 4u);
  // A different subscriber sees everything.
  EXPECT_EQ((*db)->ComputeDeliveryQueue("atlanta", {"SNMP.CPU"}).size(), 4u);
  EXPECT_TRUE((*db)->Delivered("dallas", 1));
  EXPECT_FALSE((*db)->Delivered("dallas", 2));
}

TEST(ReceiptsTest, QueueUnionsFeedsWithoutDuplicates) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  // File 1 belongs to both feeds a subscriber follows.
  ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(1, "x", {"SNMP.CPU", "SNMP.BPS"}, kSecond)).ok());
  ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(2, "y", {"SNMP.BPS"}, kSecond)).ok());
  auto queue = (*db)->ComputeDeliveryQueue("w", {"SNMP.CPU", "SNMP.BPS"});
  EXPECT_EQ(queue.size(), 2u);
}

TEST(ReceiptsTest, WindowStartFiltersOldFiles) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(1, "old", {"F"}, 1 * kHour)).ok());
  ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(2, "new", {"F"}, 3 * kHour)).ok());
  auto queue = (*db)->ComputeDeliveryQueue("s", {"F"}, 2 * kHour);
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].name, "new");
}

TEST(ReceiptsTest, ExpireBeforeRemovesReceiptsAndReportsPaths) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(1, "old", {"F"}, 1 * kHour)).ok());
  ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(2, "new", {"F"}, 3 * kHour)).ok());
  auto expunged = (*db)->ExpireBefore(2 * kHour);
  ASSERT_TRUE(expunged.ok());
  ASSERT_EQ(expunged->size(), 1u);
  EXPECT_EQ((*expunged)[0], "/staging/old");
  EXPECT_EQ((*db)->ArrivalCount(), 1u);
  EXPECT_EQ((*db)->FilesInFeed("F"), std::vector<FileId>{2});
  // The queue no longer offers the expired file.
  EXPECT_EQ((*db)->ComputeDeliveryQueue("s", {"F"}).size(), 1u);
}

TEST(ReceiptsTest, ReceiptsSurviveCrash) {
  InMemoryFileSystem fs;
  {
    auto db = ReceiptDatabase::Open(&fs, "/receipts");
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(1, "a", {"F"}, kSecond)).ok());
    ASSERT_TRUE((*db)->RecordDelivery("s", 1, 2 * kSecond).ok());
    ASSERT_TRUE((*db)->RecordArrival(MakeReceipt(2, "b", {"F"}, kSecond)).ok());
  }
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  auto queue = (*db)->ComputeDeliveryQueue("s", {"F"});
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].file_id, 2u);
}

// Property test: after any interleaving of arrivals and deliveries, the
// delivery queue equals exactly (arrived − delivered) within the window.
class ReceiptsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReceiptsPropertyTest, QueueInvariant) {
  InMemoryFileSystem fs;
  auto db = ReceiptDatabase::Open(&fs, "/receipts");
  ASSERT_TRUE(db.ok());
  Rng rng(GetParam());
  std::set<FileId> arrived, delivered;
  FileId next_id = 1;
  for (int step = 0; step < 200; ++step) {
    if (arrived.empty() || rng.Bernoulli(0.6)) {
      FileId id = next_id++;
      ASSERT_TRUE((*db)
                      ->RecordArrival(MakeReceipt(id, "f" + std::to_string(id),
                                                  {"F"}, kSecond))
                      .ok());
      arrived.insert(id);
    } else {
      // Deliver a random undelivered file.
      std::vector<FileId> undelivered;
      for (FileId id : arrived) {
        if (delivered.count(id) == 0) undelivered.push_back(id);
      }
      if (undelivered.empty()) continue;
      FileId id = undelivered[rng.Uniform(undelivered.size())];
      ASSERT_TRUE((*db)->RecordDelivery("s", id, 2 * kSecond).ok());
      delivered.insert(id);
    }
  }
  auto queue = (*db)->ComputeDeliveryQueue("s", {"F"});
  std::set<FileId> queued;
  for (const auto& r : queue) queued.insert(r.file_id);
  std::set<FileId> expected;
  for (FileId id : arrived) {
    if (delivered.count(id) == 0) expected.insert(id);
  }
  EXPECT_EQ(queued, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReceiptsPropertyTest, ::testing::Range(1, 8));

}  // namespace
}  // namespace bistro

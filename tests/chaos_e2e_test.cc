// Chaos end-to-end property test: the full simulated pipeline runs under
// a randomized, seeded fault plan — injected write errors, torn writes,
// fsync failures, transient send failures, payload corruption, lost acks,
// a scheduled link flap, a degraded link, AND a mid-run crash/restart of
// the server — and must still converge to the Bistro delivery guarantee:
//
//   every deposited file that matches a feed reaches every subscriber of
//   that feed exactly once (no loss, no double-landing), the recomputed
//   delivery queues drain empty, and the injected-fault / dead-letter
//   counters are visible in the Prometheus export.
//
// Sources retry failed deposits (a cooperating source re-notifies when
// the server errors) and stash deposits attempted while the server is
// down, mirroring how real feeds behave across a feed-manager outage.
//
// The CI chaos job shifts the seed window via BISTRO_CHAOS_SEED_BASE so
// different matrix legs explore different fault plans.

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "fault/faulty_transport.h"
#include "fault/faulty_vfs.h"
#include "fanout/group.h"
#include "fanout/relay.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/export.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

int SeedBase() {
  const char* env = std::getenv("BISTRO_CHAOS_SEED_BASE");
  return env == nullptr ? 0 : std::atoi(env);
}

class ChaosE2ETest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosE2ETest, ExactlyOnceDeliveryUnderFaultsAndCrash) {
  const int seed = SeedBase() + GetParam();
  Rng scenario_rng(static_cast<uint64_t>(seed) * 31337 + 7);

  // ---- Fault plan: moderate, seed-scaled probabilities everywhere.
  FaultPlan plan;
  plan.seed = static_cast<uint64_t>(seed) * 97 + 5;
  plan.vfs.write_error_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.torn_write_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.sync_error_prob = scenario_rng.NextDouble() * 0.02;
  plan.vfs.scope = "";  // everything: landing, staging, receipt DB
  plan.net.send_failure_prob = scenario_rng.NextDouble() * 0.15;
  plan.net.corrupt_prob = scenario_rng.NextDouble() * 0.08;
  plan.net.ack_loss_prob = scenario_rng.NextDouble() * 0.05;

  const TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  LinkFlap flap;
  flap.endpoint = "sub0";
  flap.down_at = start + 10 * kMinute;
  flap.up_at = start + 25 * kMinute;
  plan.net.flaps.push_back(flap);
  LinkDegrade degrade;
  degrade.endpoint = "sub1";
  degrade.factor = 2.0;
  plan.net.degrades.push_back(degrade);

  // ---- World: sim clock/loop, faulty FS over memfs, faulty transport
  // over a simulated WAN.
  SimClock clock(start);
  EventLoop loop(&clock);
  MetricsRegistry registry;
  InMemoryFileSystem base_fs;
  FaultInjector injector(plan, &registry);
  FaultyFileSystem fs(&base_fs, &injector);
  Rng net_rng(static_cast<uint64_t>(seed) * 101 + 3);
  SimNetwork network(&net_rng);
  SimTransport sim_transport(&loop, &network);
  FaultyTransport transport(&sim_transport, &loop, &injector);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  constexpr int kNumFeeds = 2;
  constexpr int kNumSubs = 3;
  auto config = ParseConfig(R"(
feed FEEDA { pattern "feeda_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
feed FEEDB { pattern "feedb_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
subscriber sub0 { feeds FEEDA, FEEDB; method push; }
subscriber sub1 { feeds FEEDA; method push; }
subscriber sub2 { feeds FEEDB; method push; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const std::vector<std::vector<int>> subscriptions = {{0, 1}, {0}, {1}};

  std::vector<std::unique_ptr<InMemoryFileSystem>> sub_fs;
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  for (int s = 0; s < kNumSubs; ++s) {
    network.SetLink(StrFormat("sub%d", s), LinkSpec::Fast());
    sub_fs.push_back(std::make_unique<InMemoryFileSystem>());
    sinks.push_back(
        std::make_unique<FileSinkEndpoint>(sub_fs.back().get(), "/recv"));
    sim_transport.Register(StrFormat("sub%d", s), sinks.back().get());
  }
  injector.Arm(&loop, &network);  // schedule the flap, apply the degrade

  // ---- Server options: crash-consistent durability + patient retries.
  BistroServer::Options opts;
  opts.kv.sync_wal = true;
  opts.sync_staging = true;
  opts.metrics = &registry;
  opts.delivery.retry_backoff = 2 * kSecond;
  opts.delivery.retry_backoff_max = 30 * kSecond;
  opts.delivery.probe_interval = 20 * kSecond;
  opts.delivery.max_attempts = 100000;  // chaos must not drop files
  opts.delivery.backoff_seed = static_cast<uint64_t>(seed) + 1;

  std::unique_ptr<BistroServer> server;
  auto boot = [&]() {
    auto created = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                        &invoker, &logger);
    ASSERT_TRUE(created.ok()) << created.status();
    server = std::move(*created);
  };
  boot();
  ASSERT_NE(server, nullptr);

  // ---- Cooperating sources: retry on error, stash while the server is
  // down, re-deposit after restart. A failed Deposit leaves no arrival
  // receipt, so re-depositing cannot double-deliver.
  std::vector<std::pair<std::string, std::string>> stashed;
  std::function<void(std::string, std::string)> deposit =
      [&](std::string name, std::string content) {
        if (server == nullptr) {
          stashed.emplace_back(std::move(name), std::move(content));
          return;
        }
        Status s = server->Deposit("src", name, content);
        if (!s.ok()) {
          loop.PostAfter(10 * kSecond, [&deposit, name, content] {
            deposit(name, content);
          });
        }
      };

  // ---- Traffic: ~80 matching files over one simulated hour.
  const int num_files = 60 + static_cast<int>(scenario_rng.Uniform(40));
  std::map<std::string, std::pair<int, std::string>> expected;
  for (int i = 0; i < num_files; ++i) {
    TimePoint t = start + static_cast<Duration>(scenario_rng.Uniform(kHour));
    int f = static_cast<int>(scenario_rng.Uniform(kNumFeeds));
    CivilTime c = ToCivil(t);
    std::string name = StrFormat("feed%c_%d_%04d%02d%02d%02d%02d.dat", 'a' + f,
                                 i, c.year, c.month, c.day, c.hour, c.minute);
    std::string content =
        scenario_rng.AlnumString(20 + scenario_rng.Uniform(400));
    expected[name] = {f, content};
    loop.PostAt(t, [&deposit, name, content] { deposit(name, content); });
  }

  // ---- Mid-run crash: the server dies, unsynced bytes evaporate, and a
  // fresh server recovers from the (crash-consistent) receipt database.
  loop.PostAt(start + 30 * kMinute, [&] {
    server.reset();
    ASSERT_TRUE(fs.SimulateCrash().ok());
  });
  loop.PostAt(start + 32 * kMinute, [&] {
    boot();
    std::vector<std::pair<std::string, std::string>> pending;
    pending.swap(stashed);
    for (auto& [name, content] : pending) {
      deposit(std::move(name), std::move(content));
    }
  });

  // Run far past the traffic so retries, probes and backfills settle.
  loop.RunUntil(start + 6 * kHour);

  // ---- Invariants ----
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(stashed.empty());
  EXPECT_GT(injector.injected(), 0u) << "fault plan injected nothing (seed "
                                     << seed << ")";

  for (int s = 0; s < kNumSubs; ++s) {
    size_t want = 0;
    for (const auto& [name, info] : expected) {
      bool subscribed = false;
      for (int f : subscriptions[s]) subscribed |= (f == info.first);
      if (!subscribed) continue;
      ++want;
      std::string dest =
          StrFormat("/recv/FEED%c/%s", 'A' + info.first, name.c_str());
      auto got = sub_fs[s]->ReadFile(dest);
      ASSERT_TRUE(got.ok()) << "sub" << s << " lost " << dest << " (seed "
                            << seed << ")";
      EXPECT_EQ(*got, info.second) << dest << " (seed " << seed << ")";
    }
    // No file lost, none double-landed: redeliveries (lost acks, the
    // crash window) must be absorbed by receipts + endpoint dedupe.
    EXPECT_EQ(sinks[s]->files_received(), want)
        << "sub" << s << " delivery count off (seed " << seed << ")";
  }

  // Receipt-side convergence: nothing left undelivered anywhere.
  for (int s = 0; s < kNumSubs; ++s) {
    const SubscriberSpec* spec =
        server->registry()->FindSubscriber(StrFormat("sub%d", s));
    ASSERT_NE(spec, nullptr);
    auto queue = server->receipts()->ComputeDeliveryQueue(
        spec->name, server->registry()->SubscribedFeeds(*spec));
    EXPECT_TRUE(queue.empty()) << "sub" << s << " still has " << queue.size()
                               << " undelivered files (seed " << seed << ")";
  }
  EXPECT_TRUE(server->delivery()->dead_letters().empty())
      << "chaos run dead-lettered a file (seed " << seed << ")";

  // Observability: the injected faults and the dead-letter counter are in
  // the same scrape as the delivery metrics.
  std::string scrape = ExportPrometheus(&registry);
  EXPECT_NE(scrape.find("bistro_fault_"), std::string::npos);
  EXPECT_NE(scrape.find("bistro_delivery_dead_letter_total"), std::string::npos);
}

// Same world, same fault plan, same crash — but the ingest pipeline runs
// with real worker threads and group-committed receipts. The exactly-once
// guarantee must hold unchanged. Two differences in the harness follow
// from the threaded ack contract (Deposit acks at admission):
//
//  - recovery of files that fail *after* admission (a stage write error,
//    a failed group commit, a queue dropped by the crash) is the
//    landing-zone rescan's job, so the harness scans periodically the way
//    bistrod does — the source is never re-notified;
//  - a cooperating source deposits atomically: when Deposit itself
//    errors, it removes the torn/unsynced landing leftover before
//    retrying, so a rescan can never ingest a partial deposit.
TEST_P(ChaosE2ETest, ThreadedPipelineExactlyOnceUnderFaultsAndCrash) {
  const int seed = SeedBase() + GetParam();
  Rng scenario_rng(static_cast<uint64_t>(seed) * 52711 + 11);

  FaultPlan plan;
  plan.seed = static_cast<uint64_t>(seed) * 89 + 13;
  plan.vfs.write_error_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.torn_write_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.sync_error_prob = scenario_rng.NextDouble() * 0.02;
  plan.vfs.scope = "";
  plan.net.send_failure_prob = scenario_rng.NextDouble() * 0.15;
  plan.net.corrupt_prob = scenario_rng.NextDouble() * 0.08;
  plan.net.ack_loss_prob = scenario_rng.NextDouble() * 0.05;

  const TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  LinkFlap flap;
  flap.endpoint = "sub0";
  flap.down_at = start + 10 * kMinute;
  flap.up_at = start + 25 * kMinute;
  plan.net.flaps.push_back(flap);

  SimClock clock(start);
  EventLoop loop(&clock);
  MetricsRegistry registry;
  InMemoryFileSystem base_fs;
  FaultInjector injector(plan, &registry);
  FaultyFileSystem fs(&base_fs, &injector);
  Rng net_rng(static_cast<uint64_t>(seed) * 103 + 9);
  SimNetwork network(&net_rng);
  SimTransport sim_transport(&loop, &network);
  FaultyTransport transport(&sim_transport, &loop, &injector);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  constexpr int kNumFeeds = 2;
  constexpr int kNumSubs = 3;
  auto config = ParseConfig(R"(
feed FEEDA { pattern "feeda_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
feed FEEDB { pattern "feedb_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
subscriber sub0 { feeds FEEDA, FEEDB; method push; }
subscriber sub1 { feeds FEEDA; method push; }
subscriber sub2 { feeds FEEDB; method push; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const std::vector<std::vector<int>> subscriptions = {{0, 1}, {0}, {1}};

  std::vector<std::unique_ptr<InMemoryFileSystem>> sub_fs;
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  for (int s = 0; s < kNumSubs; ++s) {
    network.SetLink(StrFormat("sub%d", s), LinkSpec::Fast());
    sub_fs.push_back(std::make_unique<InMemoryFileSystem>());
    sinks.push_back(
        std::make_unique<FileSinkEndpoint>(sub_fs.back().get(), "/recv"));
    sim_transport.Register(StrFormat("sub%d", s), sinks.back().get());
  }
  injector.Arm(&loop, &network);

  BistroServer::Options opts;
  opts.kv.sync_wal = true;
  opts.sync_staging = true;
  opts.metrics = &registry;
  opts.delivery.retry_backoff = 2 * kSecond;
  opts.delivery.retry_backoff_max = 30 * kSecond;
  opts.delivery.probe_interval = 20 * kSecond;
  opts.delivery.max_attempts = 100000;
  opts.delivery.backoff_seed = static_cast<uint64_t>(seed) + 1;
  opts.ingest.workers = 3;
  opts.ingest.queue_depth = 64;
  opts.ingest.batch = 8;
  opts.ingest.overload_policy = OverloadPolicy::kBlock;

  std::unique_ptr<BistroServer> server;
  auto boot = [&]() {
    auto created = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                        &invoker, &logger);
    ASSERT_TRUE(created.ok()) << created.status();
    server = std::move(*created);
  };
  boot();
  ASSERT_NE(server, nullptr);

  std::vector<std::pair<std::string, std::string>> stashed;
  std::function<void(std::string, std::string)> deposit =
      [&](std::string name, std::string content) {
        if (server == nullptr) {
          stashed.emplace_back(std::move(name), std::move(content));
          return;
        }
        Status s = server->Deposit("src", name, content);
        if (!s.ok()) {
          (void)fs.Delete("/bistro/landing/src/" + name);
          loop.PostAfter(10 * kSecond, [&deposit, name, content] {
            deposit(name, content);
          });
        }
      };

  // Periodic landing-zone rescan (bistrod's --scan-interval): the only
  // recovery path for post-admission failures in threaded mode.
  std::function<void()> periodic_scan = [&] {
    if (server != nullptr) (void)server->ScanLandingZone();
    if (loop.Now() < start + 5 * kHour) {
      loop.PostAfter(97 * kSecond, periodic_scan);
    }
  };
  loop.PostAfter(97 * kSecond, periodic_scan);

  const int num_files = 60 + static_cast<int>(scenario_rng.Uniform(40));
  std::map<std::string, std::pair<int, std::string>> expected;
  for (int i = 0; i < num_files; ++i) {
    TimePoint t = start + static_cast<Duration>(scenario_rng.Uniform(kHour));
    int f = static_cast<int>(scenario_rng.Uniform(kNumFeeds));
    CivilTime c = ToCivil(t);
    std::string name = StrFormat("feed%c_%d_%04d%02d%02d%02d%02d.dat", 'a' + f,
                                 i, c.year, c.month, c.day, c.hour, c.minute);
    std::string content =
        scenario_rng.AlnumString(20 + scenario_rng.Uniform(400));
    expected[name] = {f, content};
    loop.PostAt(t, [&deposit, name, content] { deposit(name, content); });
  }

  // Mid-run crash: worker queues evaporate with the process; admitted but
  // uncommitted files persist only as their (fsynced) landing copies.
  loop.PostAt(start + 30 * kMinute, [&] {
    server.reset();
    ASSERT_TRUE(fs.SimulateCrash().ok());
  });
  loop.PostAt(start + 32 * kMinute, [&] {
    boot();
    std::vector<std::pair<std::string, std::string>> pending;
    pending.swap(stashed);
    for (auto& [name, content] : pending) {
      deposit(std::move(name), std::move(content));
    }
  });

  loop.RunUntil(start + 6 * kHour);

  // Settle: drain the worker threads, rescan for anything a fault pushed
  // back to the landing zone, and let retries/backfills play out.
  for (int round = 0; round < 60; ++round) {
    ASSERT_NE(server, nullptr);
    server->ingest()->WaitIdle();
    (void)server->ScanLandingZone();
    server->ingest()->WaitIdle();
    loop.RunUntil(loop.Now() + kMinute);
  }

  ASSERT_TRUE(stashed.empty());
  EXPECT_GT(injector.injected(), 0u) << "fault plan injected nothing (seed "
                                     << seed << ")";
  EXPECT_EQ(server->ingest()->stats().in_flight, 0u);

  for (int s = 0; s < kNumSubs; ++s) {
    size_t want = 0;
    for (const auto& [name, info] : expected) {
      bool subscribed = false;
      for (int f : subscriptions[s]) subscribed |= (f == info.first);
      if (!subscribed) continue;
      ++want;
      std::string dest =
          StrFormat("/recv/FEED%c/%s", 'A' + info.first, name.c_str());
      auto got = sub_fs[s]->ReadFile(dest);
      ASSERT_TRUE(got.ok()) << "sub" << s << " lost " << dest << " (seed "
                            << seed << ")";
      EXPECT_EQ(*got, info.second) << dest << " (seed " << seed << ")";
    }
    EXPECT_EQ(sinks[s]->files_received(), want)
        << "sub" << s << " delivery count off (seed " << seed << ")";
  }

  for (int s = 0; s < kNumSubs; ++s) {
    const SubscriberSpec* spec =
        server->registry()->FindSubscriber(StrFormat("sub%d", s));
    ASSERT_NE(spec, nullptr);
    auto queue = server->receipts()->ComputeDeliveryQueue(
        spec->name, server->registry()->SubscribedFeeds(*spec));
    EXPECT_TRUE(queue.empty()) << "sub" << s << " still has " << queue.size()
                               << " undelivered files (seed " << seed << ")";
  }
  EXPECT_TRUE(server->delivery()->dead_letters().empty())
      << "chaos run dead-lettered a file (seed " << seed << ")";

  // The pipeline's counters ride the same scrape as everything else.
  std::string scrape = ExportPrometheus(&registry);
  EXPECT_NE(scrape.find("bistro_ingest_admitted_total"), std::string::npos);
  EXPECT_NE(scrape.find("bistro_ingest_committed_total"), std::string::npos);
}

// Same world, same crash — with the fan-out fast path fully enabled:
// pipelined send windows (> 1 in flight per subscriber, pipelined acks on
// the simulated links), small-file frame coalescing, and group-committed
// delivery receipts. None of it may weaken exactly-once: a crash can only
// lose a *suffix* of a buffered receipt group, and the resulting
// redeliveries must be absorbed by the subscriber-side FileId dedupe.
TEST_P(ChaosE2ETest, FastPathExactlyOnceUnderFaultsAndCrash) {
  const int seed = SeedBase() + GetParam();
  Rng scenario_rng(static_cast<uint64_t>(seed) * 40087 + 19);

  FaultPlan plan;
  plan.seed = static_cast<uint64_t>(seed) * 83 + 29;
  plan.vfs.write_error_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.torn_write_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.sync_error_prob = scenario_rng.NextDouble() * 0.02;
  plan.vfs.scope = "";
  plan.net.send_failure_prob = scenario_rng.NextDouble() * 0.15;
  plan.net.corrupt_prob = scenario_rng.NextDouble() * 0.08;
  plan.net.ack_loss_prob = scenario_rng.NextDouble() * 0.05;

  const TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  LinkFlap flap;
  flap.endpoint = "sub0";
  flap.down_at = start + 10 * kMinute;
  flap.up_at = start + 25 * kMinute;
  plan.net.flaps.push_back(flap);
  LinkDegrade degrade;
  degrade.endpoint = "sub1";
  degrade.factor = 2.0;
  plan.net.degrades.push_back(degrade);

  SimClock clock(start);
  EventLoop loop(&clock);
  MetricsRegistry registry;
  InMemoryFileSystem base_fs;
  FaultInjector injector(plan, &registry);
  FaultyFileSystem fs(&base_fs, &injector);
  Rng net_rng(static_cast<uint64_t>(seed) * 107 + 17);
  SimNetwork network(&net_rng);
  network.SetPipelinedAcks(true);  // windows > 1 overlap ack latency
  SimTransport sim_transport(&loop, &network);
  FaultyTransport transport(&sim_transport, &loop, &injector);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  constexpr int kNumFeeds = 2;
  constexpr int kNumSubs = 3;
  auto config = ParseConfig(R"(
feed FEEDA { pattern "feeda_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
feed FEEDB { pattern "feedb_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
subscriber sub0 { feeds FEEDA, FEEDB; method push; }
subscriber sub1 { feeds FEEDA; method push; }
subscriber sub2 { feeds FEEDB; method push; }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  const std::vector<std::vector<int>> subscriptions = {{0, 1}, {0}, {1}};

  std::vector<std::unique_ptr<InMemoryFileSystem>> sub_fs;
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  for (int s = 0; s < kNumSubs; ++s) {
    network.SetLink(StrFormat("sub%d", s), LinkSpec::Fast());
    sub_fs.push_back(std::make_unique<InMemoryFileSystem>());
    sinks.push_back(
        std::make_unique<FileSinkEndpoint>(sub_fs.back().get(), "/recv"));
    sim_transport.Register(StrFormat("sub%d", s), sinks.back().get());
  }
  injector.Arm(&loop, &network);

  BistroServer::Options opts;
  opts.kv.sync_wal = true;
  opts.sync_staging = true;
  opts.metrics = &registry;
  opts.delivery.retry_backoff = 2 * kSecond;
  opts.delivery.retry_backoff_max = 30 * kSecond;
  opts.delivery.probe_interval = 20 * kSecond;
  opts.delivery.max_attempts = 100000;
  opts.delivery.backoff_seed = static_cast<uint64_t>(seed) + 1;
  // The fan-out fast path under test:
  opts.delivery.window = 4;
  opts.delivery.coalesce_bytes = 4096;
  opts.delivery.receipt_group = 8;
  opts.delivery.receipt_flush_interval = 200 * kMillisecond;

  std::unique_ptr<BistroServer> server;
  auto boot = [&]() {
    auto created = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                        &invoker, &logger);
    ASSERT_TRUE(created.ok()) << created.status();
    server = std::move(*created);
  };
  boot();
  ASSERT_NE(server, nullptr);

  std::vector<std::pair<std::string, std::string>> stashed;
  std::function<void(std::string, std::string)> deposit =
      [&](std::string name, std::string content) {
        if (server == nullptr) {
          stashed.emplace_back(std::move(name), std::move(content));
          return;
        }
        Status s = server->Deposit("src", name, content);
        if (!s.ok()) {
          loop.PostAfter(10 * kSecond, [&deposit, name, content] {
            deposit(name, content);
          });
        }
      };

  const int num_files = 60 + static_cast<int>(scenario_rng.Uniform(40));
  std::map<std::string, std::pair<int, std::string>> expected;
  for (int i = 0; i < num_files; ++i) {
    TimePoint t = start + static_cast<Duration>(scenario_rng.Uniform(kHour));
    int f = static_cast<int>(scenario_rng.Uniform(kNumFeeds));
    CivilTime c = ToCivil(t);
    std::string name = StrFormat("feed%c_%d_%04d%02d%02d%02d%02d.dat", 'a' + f,
                                 i, c.year, c.month, c.day, c.hour, c.minute);
    std::string content =
        scenario_rng.AlnumString(20 + scenario_rng.Uniform(400));
    expected[name] = {f, content};
    loop.PostAt(t, [&deposit, name, content] { deposit(name, content); });
  }

  // Mid-run crash: buffered delivery-receipt groups die with the process;
  // recovery must re-offer (and the sinks dedupe) at most that suffix.
  loop.PostAt(start + 30 * kMinute, [&] {
    server.reset();
    ASSERT_TRUE(fs.SimulateCrash().ok());
  });
  loop.PostAt(start + 32 * kMinute, [&] {
    boot();
    std::vector<std::pair<std::string, std::string>> pending;
    pending.swap(stashed);
    for (auto& [name, content] : pending) {
      deposit(std::move(name), std::move(content));
    }
  });

  loop.RunUntil(start + 6 * kHour);

  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(stashed.empty());
  EXPECT_GT(injector.injected(), 0u) << "fault plan injected nothing (seed "
                                     << seed << ")";

  for (int s = 0; s < kNumSubs; ++s) {
    size_t want = 0;
    for (const auto& [name, info] : expected) {
      bool subscribed = false;
      for (int f : subscriptions[s]) subscribed |= (f == info.first);
      if (!subscribed) continue;
      ++want;
      std::string dest =
          StrFormat("/recv/FEED%c/%s", 'A' + info.first, name.c_str());
      auto got = sub_fs[s]->ReadFile(dest);
      ASSERT_TRUE(got.ok()) << "sub" << s << " lost " << dest << " (seed "
                            << seed << ")";
      EXPECT_EQ(*got, info.second) << dest << " (seed " << seed << ")";
    }
    EXPECT_EQ(sinks[s]->files_received(), want)
        << "sub" << s << " delivery count off (seed " << seed << ")";
  }

  for (int s = 0; s < kNumSubs; ++s) {
    const SubscriberSpec* spec =
        server->registry()->FindSubscriber(StrFormat("sub%d", s));
    ASSERT_NE(spec, nullptr);
    auto queue = server->receipts()->ComputeDeliveryQueue(
        spec->name, server->registry()->SubscribedFeeds(*spec));
    EXPECT_TRUE(queue.empty()) << "sub" << s << " still has " << queue.size()
                               << " undelivered files (seed " << seed << ")";
  }
  EXPECT_TRUE(server->delivery()->dead_letters().empty())
      << "chaos run dead-lettered a file (seed " << seed << ")";
  // No receipt may linger in the buffer once the run quiesces.
  EXPECT_EQ(server->delivery()->buffered_receipts(), 0u);
  // The grouped-receipt path actually ran.
  EXPECT_GT(server->delivery_stats().receipt_group_flushes, 0u);

  std::string scrape = ExportPrometheus(&registry);
  EXPECT_NE(scrape.find("bistro_delivery_coalesced_files_total"),
            std::string::npos);
  EXPECT_NE(scrape.find("bistro_delivery_receipt_group_flushes_total"),
            std::string::npos);
  EXPECT_NE(scrape.find("bistro_delivery_cache_hits_total"),
            std::string::npos);
}

// A member endpoint that is hard-down for a fixed window of the run:
// deterministic per seed, long enough to drive the group's straggler
// machinery (consecutive failures -> excluded from the ack set -> missed
// files tracked -> catch-up replay after recovery).
class OutageEndpoint : public Endpoint {
 public:
  OutageEndpoint(Endpoint* inner, EventLoop* loop, TimePoint down_at,
                 TimePoint up_at)
      : inner_(inner), loop_(loop), down_at_(down_at), up_at_(up_at) {}

  Status HandleMessage(const Message& msg) override {
    if (msg.type == MessageType::kFileData && loop_->Now() >= down_at_ &&
        loop_->Now() < up_at_) {
      ++rejected_;
      return Status::Unavailable("member outage");
    }
    return inner_->HandleMessage(msg);
  }

  uint64_t rejected() const { return rejected_; }

 private:
  Endpoint* inner_;
  EventLoop* loop_;
  TimePoint down_at_;
  TimePoint up_at_;
  uint64_t rejected_ = 0;
};

// Same world, same fault plan, same crash — with the million-subscriber
// fan-out stack enabled end to end: a subscriber group (one delivery
// cursor + one receipt row shared by three members, straggler catch-up
// for a member that is hard-down across the crash), a dissemination
// relay (durable spool, ack-then-forward) in front of two leaves, and
// the receipt database hash-sharded four ways. Exactly-once must hold at
// every terminal endpoint: group members, relay leaves and the plain
// subscriber all land each matching file exactly once, and the group
// still holds only ONE delivery receipt row per file.
TEST_P(ChaosE2ETest, FanoutGroupsRelaysShardsExactlyOnceUnderFaultsAndCrash) {
  const int seed = SeedBase() + GetParam();
  Rng scenario_rng(static_cast<uint64_t>(seed) * 68111 + 23);

  FaultPlan plan;
  plan.seed = static_cast<uint64_t>(seed) * 79 + 31;
  plan.vfs.write_error_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.torn_write_prob = scenario_rng.NextDouble() * 0.03;
  plan.vfs.sync_error_prob = scenario_rng.NextDouble() * 0.02;
  plan.vfs.scope = "";  // receipts, staging, AND the relay spool
  plan.net.send_failure_prob = scenario_rng.NextDouble() * 0.15;
  plan.net.corrupt_prob = scenario_rng.NextDouble() * 0.08;
  plan.net.ack_loss_prob = scenario_rng.NextDouble() * 0.05;

  const TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  LinkFlap flap;
  flap.endpoint = "sub0";
  flap.down_at = start + 10 * kMinute;
  flap.up_at = start + 25 * kMinute;
  plan.net.flaps.push_back(flap);

  SimClock clock(start);
  EventLoop loop(&clock);
  MetricsRegistry registry;
  InMemoryFileSystem base_fs;
  FaultInjector injector(plan, &registry);
  FaultyFileSystem fs(&base_fs, &injector);
  Rng net_rng(static_cast<uint64_t>(seed) * 109 + 21);
  SimNetwork network(&net_rng);
  SimTransport sim_transport(&loop, &network);
  FaultyTransport transport(&sim_transport, &loop, &injector);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  constexpr int kNumFeeds = 2;
  auto config = ParseConfig(R"(
feed FEEDA { pattern "feeda_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
feed FEEDB { pattern "feedb_%i_%Y%m%d%H%M.dat"; tardiness 2m; }
subscriber sub0 { feeds FEEDA, FEEDB; method push; }
subscriber relaysub { feeds FEEDB; method push; host "relayR"; }
group grp1 {
  feeds FEEDA;
  members m0, m1, m2;
  straggler_after 3;
}
receipts { shards 4; }
)");
  ASSERT_TRUE(config.ok()) << config.status();

  // Terminal endpoints: the plain subscriber, three group members (m2 is
  // hard-down from +5m to +40m, spanning the crash), two relay leaves.
  network.SetLink("sub0", LinkSpec::Fast());
  network.SetLink("grp1", LinkSpec::Fast());
  network.SetLink("relayR", LinkSpec::Fast());
  InMemoryFileSystem sub0_fs;
  FileSinkEndpoint sub0(&sub0_fs, "/recv");
  sim_transport.Register("sub0", &sub0);
  std::map<std::string, std::unique_ptr<InMemoryFileSystem>> member_fs;
  std::map<std::string, std::unique_ptr<FileSinkEndpoint>> member_sinks;
  for (const char* m : {"m0", "m1", "m2"}) {
    member_fs[m] = std::make_unique<InMemoryFileSystem>();
    member_sinks[m] =
        std::make_unique<FileSinkEndpoint>(member_fs[m].get(), "/recv");
  }
  OutageEndpoint m2_flaky(member_sinks["m2"].get(), &loop,
                          start + 5 * kMinute, start + 40 * kMinute);
  std::map<std::string, std::unique_ptr<InMemoryFileSystem>> leaf_fs;
  std::map<std::string, std::unique_ptr<FileSinkEndpoint>> leaf_sinks;
  for (const char* l : {"leaf0", "leaf1"}) {
    network.SetLink(l, LinkSpec::Fast());
    leaf_fs[l] = std::make_unique<InMemoryFileSystem>();
    leaf_sinks[l] =
        std::make_unique<FileSinkEndpoint>(leaf_fs[l].get(), "/recv");
    sim_transport.Register(l, leaf_sinks[l].get());
  }
  injector.Arm(&loop, &network);

  BistroServer::Options opts;
  opts.kv.sync_wal = true;
  opts.sync_staging = true;
  opts.metrics = &registry;
  opts.delivery.retry_backoff = 2 * kSecond;
  opts.delivery.retry_backoff_max = 30 * kSecond;
  opts.delivery.probe_interval = 20 * kSecond;
  opts.delivery.max_attempts = 100000;
  opts.delivery.backoff_seed = static_cast<uint64_t>(seed) + 1;

  std::unique_ptr<BistroServer> server;
  std::unique_ptr<fanout::RelayNode> relay;
  std::unique_ptr<fanout::GroupManager> groups;
  auto boot = [&](bool rebooting) {
    auto created = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                        &invoker, &logger);
    ASSERT_TRUE(created.ok()) << created.status();
    server = std::move(*created);
    // The relay restarts from its durable spool (replaying entries the
    // crash left with unacked children), on the same faulty transport.
    fanout::RelayNode::Options relay_options;
    relay_options.spool_dir = "/bistro/relay-spool";
    relay_options.retry_backoff = 3 * kSecond;
    relay_options.kv.sync_wal = true;
    auto opened =
        fanout::RelayNode::Open("relayR", {"leaf0", "leaf1"}, &fs, &transport,
                                &loop, &logger, relay_options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    relay = std::move(*opened);
    sim_transport.Register("relayR", relay.get());
    fanout::GroupManager::Options group_options;
    group_options.catchup_interval = 45 * kSecond;
    groups = std::make_unique<fanout::GroupManager>(
        server.get(), &fs, &loop, &logger, group_options);
    ASSERT_TRUE(groups
                    ->Wire(
                        config->groups,
                        [&](const std::string& m) -> Endpoint* {
                          if (m == "m2") return &m2_flaky;
                          return member_sinks[m].get();
                        },
                        [&](const std::string& name, Endpoint* ep) {
                          sim_transport.Register(name, ep);
                        })
                    .ok());
    if (rebooting) {
      // In-memory straggler state died with the process: re-offer the
      // group's delivered history; member dedupe absorbs the repeats.
      ASSERT_TRUE(groups->Resync().ok());
    }
  };
  boot(false);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->receipts()->shard_count(), 4u);

  std::vector<std::pair<std::string, std::string>> stashed;
  std::function<void(std::string, std::string)> deposit =
      [&](std::string name, std::string content) {
        if (server == nullptr) {
          stashed.emplace_back(std::move(name), std::move(content));
          return;
        }
        Status s = server->Deposit("src", name, content);
        if (!s.ok()) {
          loop.PostAfter(10 * kSecond, [&deposit, name, content] {
            deposit(name, content);
          });
        }
      };

  const int num_files = 60 + static_cast<int>(scenario_rng.Uniform(40));
  std::map<std::string, std::pair<int, std::string>> expected;
  for (int i = 0; i < num_files; ++i) {
    TimePoint t = start + static_cast<Duration>(scenario_rng.Uniform(kHour));
    int f = static_cast<int>(scenario_rng.Uniform(kNumFeeds));
    CivilTime c = ToCivil(t);
    std::string name = StrFormat("feed%c_%d_%04d%02d%02d%02d%02d.dat", 'a' + f,
                                 i, c.year, c.month, c.day, c.hour, c.minute);
    std::string content =
        scenario_rng.AlnumString(20 + scenario_rng.Uniform(400));
    expected[name] = {f, content};
    loop.PostAt(t, [&deposit, name, content] { deposit(name, content); });
  }

  // Mid-run crash: server, group manager AND relay die together; the
  // sharded receipt stores and the relay spool recover from their WALs.
  loop.PostAt(start + 30 * kMinute, [&] {
    // The relay and group relays die with the server process: take their
    // addresses off the wire so in-flight messages bounce, then destroy.
    sim_transport.Unregister("relayR");
    sim_transport.Unregister("grp1");
    groups.reset();
    relay.reset();
    server.reset();
    ASSERT_TRUE(fs.SimulateCrash().ok());
  });
  loop.PostAt(start + 32 * kMinute, [&] {
    boot(true);
    std::vector<std::pair<std::string, std::string>> pending;
    pending.swap(stashed);
    for (auto& [name, content] : pending) {
      deposit(std::move(name), std::move(content));
    }
  });

  loop.RunUntil(start + 6 * kHour);

  // ---- Invariants ----
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(stashed.empty());
  EXPECT_GT(injector.injected(), 0u) << "fault plan injected nothing (seed "
                                     << seed << ")";
  EXPECT_GT(m2_flaky.rejected(), 0u)
      << "member outage window saw no traffic (seed " << seed << ")";

  size_t want_a = 0, want_b = 0;
  for (const auto& [name, info] : expected) {
    (info.first == 0 ? want_a : want_b) += 1;
  }
  auto check_sink = [&](InMemoryFileSystem* sink_fs, FileSinkEndpoint* sink,
                        int feed, size_t want, const std::string& who) {
    for (const auto& [name, info] : expected) {
      if (info.first != feed) continue;
      std::string dest =
          StrFormat("/recv/FEED%c/%s", 'A' + info.first, name.c_str());
      auto got = sink_fs->ReadFile(dest);
      ASSERT_TRUE(got.ok()) << who << " lost " << dest << " (seed " << seed
                            << ")";
      EXPECT_EQ(*got, info.second) << dest << " (seed " << seed << ")";
    }
    EXPECT_EQ(sink->files_received(), want)
        << who << " delivery count off (seed " << seed << ")";
  };
  // The plain subscriber sees both feeds...
  for (const auto& [name, info] : expected) {
    std::string dest =
        StrFormat("/recv/FEED%c/%s", 'A' + info.first, name.c_str());
    auto got = sub0_fs.ReadFile(dest);
    ASSERT_TRUE(got.ok()) << "sub0 lost " << dest << " (seed " << seed << ")";
    EXPECT_EQ(*got, info.second);
  }
  EXPECT_EQ(sub0.files_received(), want_a + want_b);
  // ...every group member (including the one that was down for 35
  // simulated minutes across the crash) landed every FEEDA file once...
  for (const char* m : {"m0", "m1", "m2"}) {
    check_sink(member_fs[m].get(), member_sinks[m].get(), 0, want_a, m);
  }
  // ...and both relay leaves landed every FEEDB file once.
  for (const char* l : {"leaf0", "leaf1"}) {
    check_sink(leaf_fs[l].get(), leaf_sinks[l].get(), 1, want_b, l);
  }

  // Group state converged: no straggler, no owed files, and the receipt
  // audit shows ONE shared d/ row per file for the whole group.
  fanout::GroupRelay* group_relay = groups->relay("grp1");
  ASSERT_NE(group_relay, nullptr);
  EXPECT_EQ(group_relay->straggler_count(), 0u);
  EXPECT_EQ(group_relay->straggler_lag(), 0u);
  size_t group_rows = 0;
  for (size_t i = 0; i < server->receipts()->shard_count(); ++i) {
    group_rows += server->receipts()->kv(i)->ScanPrefix("d/grp1/").size();
  }
  EXPECT_EQ(group_rows, want_a)
      << "group receipt rows != FEEDA files (seed " << seed << ")";

  // Relay spool drained; queues recompute empty; nothing dead-lettered.
  EXPECT_EQ(relay->Backlog(), 0u);
  for (const char* name : {"sub0", "relaysub", "grp1"}) {
    const SubscriberSpec* spec = server->registry()->FindSubscriber(name);
    ASSERT_NE(spec, nullptr) << name;
    auto queue = server->receipts()->ComputeDeliveryQueue(
        spec->name, server->registry()->SubscribedFeeds(*spec));
    EXPECT_TRUE(queue.empty()) << name << " still has " << queue.size()
                               << " undelivered files (seed " << seed << ")";
  }
  EXPECT_TRUE(server->delivery()->dead_letters().empty())
      << "chaos run dead-lettered a file (seed " << seed << ")";
  EXPECT_EQ(server->registry()->subscriber_scans(), 0u)
      << "fan-out fell back to the full subscriber scan";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosE2ETest, ::testing::Range(0, 5));

}  // namespace
}  // namespace bistro

// Tests for the analyzer daemon (continuous monitoring), the message
// stream decoder, and the admin status report.

#include <gtest/gtest.h>

#include "analyzer/daemon.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/admin.h"
#include "net/stream.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- Stream

Message FileMsg(FileId id, const std::string& name) {
  Message msg;
  msg.type = MessageType::kFileData;
  msg.file_id = id;
  msg.name = name;
  msg.payload = "payload-" + std::to_string(id);
  return msg;
}

TEST(MessageStreamTest, DecodesWholeStream) {
  std::vector<Message> messages = {FileMsg(1, "a"), FileMsg(2, "b"),
                                   FileMsg(3, "c")};
  MessageStreamDecoder decoder;
  ASSERT_TRUE(decoder.Feed(EncodeMessageStream(messages)).ok());
  for (const Message& expected : messages) {
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(MessageStreamTest, DecodesAcrossArbitraryChunkBoundaries) {
  std::vector<Message> messages;
  for (FileId id = 1; id <= 20; ++id) {
    messages.push_back(FileMsg(id, StrFormat("file%02llu.csv",
                                             (unsigned long long)id)));
  }
  std::string wire = EncodeMessageStream(messages);
  for (size_t chunk : {1u, 3u, 7u, 64u, 1000u}) {
    MessageStreamDecoder decoder;
    for (size_t pos = 0; pos < wire.size(); pos += chunk) {
      ASSERT_TRUE(
          decoder.Feed(std::string_view(wire).substr(pos, chunk)).ok());
    }
    size_t count = 0;
    while (auto msg = decoder.Next()) {
      EXPECT_EQ(*msg, messages[count]);
      ++count;
    }
    EXPECT_EQ(count, messages.size()) << "chunk=" << chunk;
  }
}

TEST(MessageStreamTest, CorruptionPoisonsStream) {
  std::string wire = EncodeMessageStream({FileMsg(1, "a"), FileMsg(2, "b")});
  // Flip a byte inside the first frame's body (past its length prefix and
  // CRC header) so the CRC check must catch it.
  wire[8] ^= 0x20;
  MessageStreamDecoder decoder;
  Status s = decoder.Feed(wire);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(decoder.poisoned());
  // Further feeds keep failing (sticky error).
  EXPECT_FALSE(decoder.Feed("more").ok());
}

TEST(MessageStreamTest, PartialFrameWaitsForMore) {
  std::string wire = EncodeMessageStream({FileMsg(1, "abc")});
  MessageStreamDecoder decoder;
  ASSERT_TRUE(decoder.Feed(std::string_view(wire).substr(0, 3)).ok());
  EXPECT_EQ(decoder.pending(), 0u);
  EXPECT_GT(decoder.buffered_bytes(), 0u);
  ASSERT_TRUE(decoder.Feed(std::string_view(wire).substr(3)).ok());
  EXPECT_EQ(decoder.pending(), 1u);
}

// ---------------------------------------------------------------- Daemon

struct DaemonFixture {
  SimClock clock{FromCivil(CivilTime{2010, 9, 26})};
  EventLoop loop{&clock};
  InMemoryFileSystem fs;
  LoopbackTransport transport{&loop};
  CallbackInvoker invoker;
  Logger logger{&clock};
  std::unique_ptr<BistroServer> server;

  explicit DaemonFixture(const char* config_text) {
    logger.SetMinLevel(LogLevel::kAlarm);
    auto config = ParseConfig(config_text);
    EXPECT_TRUE(config.ok()) << config.status();
    auto s = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                  &transport, &loop, &invoker, &logger);
    EXPECT_TRUE(s.ok()) << s.status();
    server = std::move(*s);
  }
};

TEST(AnalyzerDaemonTest, PeriodicPassesGenerateSuggestions) {
  DaemonFixture fx(R"(feed KNOWN { pattern "known_%i.dat"; })");
  AnalyzerDaemon::Options opts;
  opts.interval = 10 * kMinute;
  opts.analyzer.discovery.min_support = 3;
  AnalyzerDaemon daemon(fx.server.get(), &fx.loop, &fx.logger, opts);
  daemon.Start();
  // A new, unknown subfeed starts arriving.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fx.server
                    ->Deposit("src",
                              StrFormat("NEWSTAT_POLL%d_201009260%d00.csv",
                                        1 + i % 2, i),
                              "x")
                    .ok());
  }
  fx.loop.RunUntil(fx.clock.Now() + 11 * kMinute);
  EXPECT_EQ(daemon.passes(), 1u);
  ASSERT_EQ(daemon.new_feed_suggestions().size(), 1u);
  EXPECT_EQ(daemon.new_feed_suggestions()[0].feed.pattern,
            "NEWSTAT_POLL%i_%Y%m%d%H%M.csv");
  // A second pass keeps the accumulated history (reports regenerate).
  fx.loop.RunUntil(fx.clock.Now() + 11 * kMinute);
  EXPECT_EQ(daemon.passes(), 2u);
  EXPECT_EQ(daemon.new_feed_suggestions().size(), 1u);
}

TEST(AnalyzerDaemonTest, SeparatesFalseNegativesFromNewFeeds) {
  DaemonFixture fx(R"(feed MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; })");
  AnalyzerDaemon::Options opts;
  opts.analyzer.discovery.min_support = 3;
  AnalyzerDaemon daemon(fx.server.get(), &fx.loop, &fx.logger, opts);
  // Three case-mutated MEMORY files (false negatives) and four files of
  // a genuinely new feed.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(fx.server
                    ->Deposit("src",
                              StrFormat("MEMORY_Poller%d_20100926.gz", i), "x")
                    .ok());
  }
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        fx.server
            ->Deposit("src", StrFormat("GPSFEED_unit%d_20100926.csv", i), "x")
            .ok());
  }
  daemon.RunOnce();
  ASSERT_EQ(daemon.false_negatives().size(), 1u);
  EXPECT_EQ(daemon.false_negatives()[0].feed, "MEMORY");
  // The FN files are NOT also reported as a new feed.
  ASSERT_EQ(daemon.new_feed_suggestions().size(), 1u);
  EXPECT_EQ(daemon.new_feed_suggestions()[0].feed.pattern,
            "GPSFEED_unit%i_%Y%m%d.csv");
}

TEST(AnalyzerDaemonTest, RescannedUnmatchedFilesAreNotDoubleCounted) {
  // Unmatched files stay in the landing zone (quarantined for analysis),
  // so every ScanLandingZone re-observes them. The analyzer corpus must
  // dedupe the replays by FileId or each scan tick would inflate the
  // corpus and the reported file counts.
  DaemonFixture fx(R"(feed KNOWN { pattern "known_%i.dat"; })");
  AnalyzerDaemon::Options opts;
  opts.analyzer.discovery.min_support = 3;
  AnalyzerDaemon daemon(fx.server.get(), &fx.loop, &fx.logger, opts);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        fx.server
            ->Deposit("src", StrFormat("MYSTERY_%d_20100926.csv", i), "x")
            .ok());
  }
  daemon.RunOnce();
  EXPECT_EQ(daemon.corpus_size(), 3u);
  for (int pass = 0; pass < 3; ++pass) {
    auto rescanned = fx.server->ScanLandingZone();
    ASSERT_TRUE(rescanned.ok()) << rescanned.status();
    ASSERT_EQ(*rescanned, 3u);  // the quarantined files really are re-fed
    daemon.RunOnce();
    EXPECT_EQ(daemon.corpus_size(), 3u);
    ASSERT_EQ(daemon.new_feed_suggestions().size(), 1u);
    EXPECT_EQ(daemon.new_feed_suggestions()[0].feed.file_count, 3u);
  }
}

TEST(AnalyzerDaemonTest, FalsePositiveReportsFromMatchedSamples) {
  DaemonFixture fx(R"(feed BROAD { pattern "%s_%Y%m%d.csv"; })");
  AnalyzerDaemon::Options opts;
  opts.analyzer.fp_max_support = 0.2;
  AnalyzerDaemon daemon(fx.server.get(), &fx.loop, &fx.logger, opts);
  for (int i = 0; i < 40; ++i) {
    daemon.ObserveMatched("BROAD", StrFormat("BPS_pollerx_201009%02d.csv",
                                             1 + i % 28),
                          0);
  }
  for (int i = 0; i < 3; ++i) {
    daemon.ObserveMatched("BROAD",
                          StrFormat("FOREIGN_%d_20100926.csv", i), 0);
  }
  daemon.RunOnce();
  ASSERT_EQ(daemon.false_positives().size(), 1u);
  EXPECT_EQ(daemon.false_positives()[0].feed, "BROAD");
  EXPECT_EQ(daemon.false_positives()[0].outlier.file_count, 3u);
}

// ---------------------------------------------------------------- Admin

TEST(StatusReportTest, RendersPipelineAndFeedState) {
  DaemonFixture fx(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; pattern "CPU-POLL%i-%Y%m%d%H%M.txt"; }
subscriber warehouse { feeds CPU; method push; }
)");
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint warehouse(&sub_fs, "/w");
  fx.transport.Register("warehouse", &warehouse);
  ASSERT_TRUE(
      fx.server->Deposit("p", "CPU_POLL1_201009260400.txt", "x").ok());
  fx.loop.RunUntil(fx.clock.Now() + kSecond);
  std::string report = RenderStatusReport(fx.server.get());
  EXPECT_NE(report.find("received 1"), std::string::npos) << report;
  EXPECT_NE(report.find("CPU"), std::string::npos);
  EXPECT_NE(report.find("(+1 alternates)"), std::string::npos);
  EXPECT_NE(report.find("warehouse"), std::string::npos);
  EXPECT_NE(report.find("online"), std::string::npos);
  // Offline state shows up.
  fx.server->delivery()->SetOffline("warehouse", true);
  report = RenderStatusReport(fx.server.get());
  EXPECT_NE(report.find("OFFLINE"), std::string::npos);
}

}  // namespace
}  // namespace bistro

// Unit tests for declarative ingestion plans: the config grammar and
// FormatConfig round-trip, the plan compiler's validation surface
// (unknown selectors/targets, replication vs the peer fleet, quota
// ambiguity), selector-specificity lowering, deterministic token
// buckets, sampling/split hash choices, and the runtime's lazy
// version-keyed rebuild.

#include <gtest/gtest.h>

#include <algorithm>

#include "config/parser.h"
#include "config/registry.h"
#include "ingest/plan.h"

namespace bistro {
namespace {

// A registry + plan fixture shared by the compiler tests: two feeds
// under one group, one standalone feed, two subscribers, one peer.
constexpr char kBase[] = R"(
group TENANT {
  feed SYSLOG { pattern "syslog_%i_%Y%m%d%H%M.txt"; }
  feed AUDIT { pattern "audit_%i_%Y%m%d%H%M.txt"; }
}
feed CLICKS { pattern "click_%i_%Y%m%d%H%M.txt"; tardiness 2m; }
subscriber warehouse { destination "/warehouse"; feeds TENANT, CLICKS; method push; }
subscriber dashboard { destination "/dash"; feeds CLICKS; method push; }
peer backup { address "backup:4242"; feeds CLICKS; }
)";

Result<ServerConfig> ParseWithPlans(const std::string& plans) {
  return ParseConfig(std::string(kBase) + plans);
}

struct Compiled {
  std::unique_ptr<FeedRegistry> registry;
  Result<std::shared_ptr<const CompiledPlans>> result =
      Status::FailedPrecondition("not compiled");
};

Compiled Compile(const std::string& plans) {
  Compiled out;
  auto config = ParseWithPlans(plans);
  EXPECT_TRUE(config.ok()) << config.status();
  if (!config.ok()) return out;
  auto registry = FeedRegistry::Create(*config);
  EXPECT_TRUE(registry.ok()) << registry.status();
  if (!registry.ok()) return out;
  out.registry = std::move(*registry);
  out.result = CompilePlans(config->plans, *out.registry,
                            PlanContextFromConfig(*config));
  return out;
}

// ------------------------------------------------------------------ grammar

TEST(PlanParse, FullGrammar) {
  auto config = ParseWithPlans(R"(
plan TENANT {
  quota 100 per 5m;
  quota_bytes 1000000 per 5m;
  slo bulk;
}
plan CLICKS {
  route warehouse, dashboard;
  split 75 to warehouse, 25 to dashboard;
  replicate 1;
  sample 12.5;
  transform lz;
  enrich provenance, checksum;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->plans.size(), 2u);

  const PlanSpec& tenant = config->plans[0];
  EXPECT_EQ(tenant.feed, "TENANT");
  ASSERT_TRUE(tenant.quota_files.has_value());
  EXPECT_EQ(*tenant.quota_files, 100);
  ASSERT_TRUE(tenant.quota_bytes.has_value());
  EXPECT_EQ(*tenant.quota_bytes, 1000000);
  EXPECT_EQ(tenant.quota_interval, 5 * kMinute);
  EXPECT_EQ(tenant.slo.value_or(""), "bulk");

  const PlanSpec& clicks = config->plans[1];
  EXPECT_EQ(clicks.route, (std::vector<std::string>{"warehouse", "dashboard"}));
  ASSERT_EQ(clicks.split.size(), 2u);
  EXPECT_EQ(clicks.split[0].percent, 75);
  EXPECT_EQ(clicks.split[0].to, "warehouse");
  EXPECT_EQ(clicks.split[1].percent, 25);
  EXPECT_EQ(clicks.split[1].to, "dashboard");
  EXPECT_EQ(clicks.replicate.value_or(0), 1);
  EXPECT_DOUBLE_EQ(clicks.sample.value_or(0), 12.5);
  EXPECT_EQ(clicks.transform.value_or(""), "lz");
  EXPECT_EQ(clicks.enrich, (std::vector<std::string>{"provenance", "checksum"}));
}

TEST(PlanParse, QuotaDefaultsToOneMinuteInterval) {
  auto config = ParseWithPlans("plan CLICKS { quota 7; }");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->plans[0].quota_interval, kDefaultQuotaInterval);
  EXPECT_EQ(kDefaultQuotaInterval, kMinute);
}

TEST(PlanParse, RejectsBadBlocks) {
  // Split arms must sum to exactly 100.
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { split 60 to warehouse, 30 to "
                              "dashboard; }")
                   .ok());
  // An arm may be listed once.
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { split 50 to warehouse, 50 to "
                              "warehouse; }")
                   .ok());
  // Two blocks for one selector are ambiguous.
  EXPECT_FALSE(
      ParseWithPlans("plan CLICKS { sample 50; } plan CLICKS { slo bulk; }")
          .ok());
  // A plan that declares nothing is a config typo, not a no-op.
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { }").ok());
  // Enumerated values are validated at parse time.
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { slo realtime; }").ok());
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { transform gzip; }").ok());
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { enrich lineage; }").ok());
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { sample 0; }").ok());
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { sample 101; }").ok());
  EXPECT_FALSE(ParseWithPlans("plan CLICKS { quota 0; }").ok());
}

TEST(PlanParse, FormatConfigRoundTrips) {
  auto config = ParseWithPlans(R"(
plan TENANT { quota 100 per 5m; slo bulk; }
plan CLICKS {
  route warehouse;
  split 75 to warehouse, 25 to dashboard;
  sample 12.5;
  transform lz;
  quota_bytes 4096 per 30s;
  enrich provenance;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  auto reparsed = ParseConfig(FormatConfig(*config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ(reparsed->plans.size(), config->plans.size());
  for (size_t i = 0; i < config->plans.size(); ++i) {
    EXPECT_EQ(reparsed->plans[i], config->plans[i]) << "plan " << i;
  }
}

// ----------------------------------------------------------------- compiler

TEST(PlanCompile, LowersGroupPrefixOntoEveryMemberFeed) {
  Compiled c = Compile("plan TENANT { quota 10; slo bulk; }");
  ASSERT_TRUE(c.result.ok()) << c.result.status();
  const CompiledPlans& plans = **c.result;
  EXPECT_EQ(plans.feeds.size(), 2u);
  const FeedPlan* syslog = plans.Find("TENANT.SYSLOG");
  const FeedPlan* audit = plans.Find("TENANT.AUDIT");
  ASSERT_NE(syslog, nullptr);
  ASSERT_NE(audit, nullptr);
  EXPECT_EQ(plans.Find("CLICKS"), nullptr);
  // One bucket for the whole subtree: the group quota is a shared budget.
  ASSERT_NE(syslog->quota, nullptr);
  EXPECT_EQ(syslog->quota.get(), audit->quota.get());
  EXPECT_EQ(syslog->deadline_scale_num, 4);
  EXPECT_EQ(syslog->deadline_scale_den, 1);
}

TEST(PlanCompile, MoreSpecificSelectorWinsPerAttribute) {
  Compiled c = Compile(
      "plan TENANT { slo bulk; sample 50; }\n"
      "plan TENANT.AUDIT { slo interactive; }");
  ASSERT_TRUE(c.result.ok()) << c.result.status();
  const FeedPlan* audit = (*c.result)->Find("TENANT.AUDIT");
  ASSERT_NE(audit, nullptr);
  // The exact-feed plan overrode the SLO...
  EXPECT_EQ(audit->slo, "interactive");
  EXPECT_EQ(audit->deadline_scale_den, 4);
  // ...but the group plan's sampling still applies (per-attribute merge).
  EXPECT_EQ(audit->sample_keep_bp, 5000);
  const FeedPlan* syslog = (*c.result)->Find("TENANT.SYSLOG");
  ASSERT_NE(syslog, nullptr);
  EXPECT_EQ(syslog->slo, "bulk");
}

TEST(PlanCompile, RejectsUnknownSelector) {
  Compiled c = Compile("plan NOSUCH { sample 50; }");
  ASSERT_FALSE(c.result.ok());
  EXPECT_NE(c.result.status().message().find("NOSUCH"), std::string::npos);
}

TEST(PlanCompile, RejectsUnknownRouteAndSplitTargets) {
  Compiled route = Compile("plan CLICKS { route nobody; }");
  ASSERT_FALSE(route.result.ok());
  EXPECT_NE(route.result.status().message().find("unknown target nobody"),
            std::string::npos);
  Compiled split = Compile("plan CLICKS { split 100 to nobody; }");
  EXPECT_FALSE(split.result.ok());
}

TEST(PlanCompile, RejectsReplicationAboveThePeerFleet) {
  // kBase configures exactly one peer.
  Compiled ok = Compile("plan CLICKS { replicate 1; }");
  EXPECT_TRUE(ok.result.ok()) << ok.result.status();
  Compiled over = Compile("plan CLICKS { replicate 2; }");
  ASSERT_FALSE(over.result.ok());
  EXPECT_NE(over.result.status().message().find("only 1 peers"),
            std::string::npos);
}

TEST(PlanCompile, RejectsConflictingQuotas) {
  // Both the group plan and the exact-feed plan budget TENANT.AUDIT:
  // which bucket admits a file would depend on evaluation order.
  Compiled c = Compile(
      "plan TENANT { quota 10; }\n"
      "plan TENANT.AUDIT { quota 5; }");
  ASSERT_FALSE(c.result.ok());
  EXPECT_NE(c.result.status().message().find("conflicting quota"),
            std::string::npos);
  // Non-quota attributes on the specific plan compose fine.
  Compiled fine = Compile(
      "plan TENANT { quota 10; }\n"
      "plan TENANT.AUDIT { slo interactive; }");
  EXPECT_TRUE(fine.result.ok()) << fine.result.status();
}

TEST(PlanCompile, RouteAcceptsGroupsAndPeers) {
  Compiled c = Compile("plan CLICKS { route backup; }");
  EXPECT_TRUE(c.result.ok()) << c.result.status();
}

// -------------------------------------------------------------- determinism

TEST(QuotaBucketTest, RefillsFractionallyAndStartsFull) {
  const TimePoint t0 = FromCivil(CivilTime{2010, 9, 25});
  QuotaBucket bucket(2, 0, kMinute);
  // Starts full: two admissions, then refusal.
  EXPECT_TRUE(bucket.TryAdmit(t0, 100));
  EXPECT_TRUE(bucket.TryAdmit(t0, 100));
  EXPECT_FALSE(bucket.TryAdmit(t0, 100));
  // Half an interval refills half the capacity: one token.
  EXPECT_TRUE(bucket.TryAdmit(t0 + 30 * kSecond, 100));
  EXPECT_FALSE(bucket.TryAdmit(t0 + 30 * kSecond, 100));
  // A full idle interval tops the bucket back up, never beyond capacity.
  EXPECT_TRUE(bucket.TryAdmit(t0 + 10 * kMinute, 100));
  EXPECT_TRUE(bucket.TryAdmit(t0 + 10 * kMinute, 100));
  EXPECT_FALSE(bucket.TryAdmit(t0 + 10 * kMinute, 100));
}

TEST(QuotaBucketTest, ByteBudgetRefusesAtomically) {
  const TimePoint t0 = FromCivil(CivilTime{2010, 9, 25});
  QuotaBucket bucket(0, 1000, kMinute);
  EXPECT_TRUE(bucket.TryAdmit(t0, 600));
  // A refusal must not consume tokens: the 600-byte budget that remains
  // after the refused 500-byte file still admits a 400-byte one.
  EXPECT_FALSE(bucket.TryAdmit(t0, 500));
  EXPECT_TRUE(bucket.TryAdmit(t0, 400));
  EXPECT_FALSE(bucket.TryAdmit(t0, 1));
}

TEST(PlanHashTest, SamplingIsDeterministicAndMonotone) {
  int kept_half = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "file_" + std::to_string(i) + ".txt";
    // Pure function of (feed, name, bp).
    EXPECT_EQ(PlanSampleKeeps("F", name, 5000), PlanSampleKeeps("F", name, 5000));
    // keep-at-bp is monotone: a file kept at 30% is kept at any higher rate.
    if (PlanSampleKeeps("F", name, 3000)) {
      EXPECT_TRUE(PlanSampleKeeps("F", name, 9000));
    }
    EXPECT_TRUE(PlanSampleKeeps("F", name, 10000));
    if (PlanSampleKeeps("F", name, 5000)) ++kept_half;
  }
  // The hash spreads names roughly uniformly (exact value is pinned by
  // the FNV-1a formula, so this cannot flake).
  EXPECT_GT(kept_half, 400);
  EXPECT_LT(kept_half, 600);
}

TEST(PlanHashTest, SplitRoutesEveryFileToExactlyOneArm) {
  std::vector<PlanSplitArm> arms{{70, "a"}, {30, "b"}};
  int to_a = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "file_" + std::to_string(i) + ".txt";
    const PlanSplitArm* arm = PlanSplitArmFor(arms, name);
    ASSERT_NE(arm, nullptr);
    EXPECT_EQ(arm, PlanSplitArmFor(arms, name));  // deterministic
    if (arm->to == "a") ++to_a;
  }
  EXPECT_GT(to_a, 600);
  EXPECT_LT(to_a, 800);
  // A single 100% arm takes everything.
  std::vector<PlanSplitArm> all{{100, "only"}};
  EXPECT_EQ(PlanSplitArmFor(all, "anything")->to, "only");
  EXPECT_EQ(PlanSplitArmFor({}, "anything"), nullptr);
}

// ------------------------------------------------------------------ runtime

TEST(PlanRuntimeTest, RebuildsLazilyOnRegistryVersionBump) {
  auto config = ParseWithPlans("plan TENANT { slo bulk; }");
  ASSERT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok()) << registry.status();

  PlanRuntime runtime(config->plans, registry->get(),
                      PlanContextFromConfig(*config));
  ASSERT_TRUE(runtime.Validate().ok());
  auto before = runtime.snapshot();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->feeds.size(), 2u);
  EXPECT_EQ(runtime.stats().rebuilds, 1u);
  // Stable registry: repeated snapshots are the same table, no rebuild.
  EXPECT_EQ(runtime.snapshot().get(), before.get());
  EXPECT_EQ(runtime.stats().rebuilds, 1u);

  // A new feed under the governed prefix joins the plan on the next
  // snapshot — no explicit invalidation anywhere.
  FeedSpec extra;
  extra.name = "TENANT.TRACE";
  extra.pattern = "trace_%i_%Y%m%d%H%M.txt";
  ASSERT_TRUE((*registry)->UpdateFeed(extra).ok());
  auto after = runtime.snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->feeds.size(), 3u);
  const FeedPlan* trace = after->Find("TENANT.TRACE");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->slo, "bulk");
  EXPECT_EQ(runtime.stats().rebuilds, 2u);
  EXPECT_EQ(runtime.stats().governed_feeds, 3u);
}

TEST(PlanRuntimeTest, QuotaBucketSurvivesRecompilation) {
  const TimePoint t0 = FromCivil(CivilTime{2010, 9, 25});
  auto config = ParseWithPlans("plan TENANT { quota 2 per 1m; }");
  ASSERT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok()) << registry.status();
  PlanRuntime runtime(config->plans, registry->get(),
                      PlanContextFromConfig(*config));
  ASSERT_TRUE(runtime.Validate().ok());

  auto bucket = runtime.snapshot()->Find("TENANT.SYSLOG")->quota;
  ASSERT_NE(bucket, nullptr);
  EXPECT_TRUE(bucket->TryAdmit(t0, 1));
  EXPECT_TRUE(bucket->TryAdmit(t0, 1));
  EXPECT_FALSE(bucket->TryAdmit(t0, 1));

  // Bump the registry; the rebuilt table must reuse the drained bucket —
  // a config reload never refunds admission tokens.
  FeedSpec extra;
  extra.name = "TENANT.TRACE";
  extra.pattern = "trace_%i_%Y%m%d%H%M.txt";
  ASSERT_TRUE((*registry)->UpdateFeed(extra).ok());
  auto rebuilt = runtime.snapshot();
  ASSERT_NE(rebuilt->Find("TENANT.TRACE"), nullptr);
  EXPECT_EQ(rebuilt->Find("TENANT.SYSLOG")->quota.get(), bucket.get());
  EXPECT_EQ(rebuilt->Find("TENANT.TRACE")->quota.get(), bucket.get());
  EXPECT_FALSE(bucket->TryAdmit(t0, 1));
}

TEST(PlanRuntimeTest, FailedRebuildIsGatedPerVersion) {
  // The selector matches nothing yet: Validate refuses (the Create-time
  // error surface), and snapshot() serves no table without recompiling
  // the same broken revision on every call.
  auto config = ParseWithPlans("plan FUTURE { slo bulk; }");
  ASSERT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok()) << registry.status();
  PlanRuntime runtime(config->plans, registry->get(),
                      PlanContextFromConfig(*config));
  EXPECT_FALSE(runtime.Validate().ok());
  EXPECT_EQ(runtime.snapshot(), nullptr);
  EXPECT_EQ(runtime.snapshot(), nullptr);
  EXPECT_EQ(runtime.stats().rebuild_errors, 1u);  // gated, not per-call

  // Once the registry learns the feed, the next snapshot recovers.
  FeedSpec feed;
  feed.name = "FUTURE";
  feed.pattern = "future_%i_%Y%m%d%H%M.txt";
  ASSERT_TRUE((*registry)->UpdateFeed(feed).ok());
  auto snap = runtime.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_NE(snap->Find("FUTURE"), nullptr);
}

TEST(PlanRuntimeTest, FilterArrivalDefersOnQuotaAndDiscardsOnSampling) {
  const TimePoint t0 = FromCivil(CivilTime{2010, 9, 25});
  auto config = ParseWithPlans(
      "plan TENANT.SYSLOG { quota 1 per 1m; }\n"
      "plan TENANT.AUDIT { sample 50; }");
  ASSERT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok()) << registry.status();
  PlanRuntime runtime(config->plans, registry->get(),
                      PlanContextFromConfig(*config));
  ASSERT_TRUE(runtime.Validate().ok());

  auto classify = [](const std::string& feed) {
    Classification c;
    c.feeds = {feed};
    return c;
  };
  IncomingFile file;
  file.name = "syslog_1_201009250400.txt";
  file.size = 10;

  Classification c = classify("TENANT.SYSLOG");
  EXPECT_EQ(runtime.FilterArrival(file, t0, &c),
            PlanRuntime::ArrivalDecision::kAdmit);
  // Second file: the 1-per-minute budget is spent — defer, not discard
  // (tokens refill, so a landing-zone rescan can admit it later).
  c = classify("TENANT.SYSLOG");
  EXPECT_EQ(runtime.FilterArrival(file, t0, &c),
            PlanRuntime::ArrivalDecision::kDefer);
  c = classify("TENANT.SYSLOG");
  EXPECT_EQ(runtime.FilterArrival(file, t0 + kMinute, &c),
            PlanRuntime::ArrivalDecision::kAdmit);

  // Sampling: find one kept and one dropped name; the dropped one is
  // discarded outright (the hash never changes, retrying is pointless).
  std::string kept, dropped;
  for (int i = 0; i < 200 && (kept.empty() || dropped.empty()); ++i) {
    std::string name = "audit_" + std::to_string(i) + "_201009250400.txt";
    (PlanSampleKeeps("TENANT.AUDIT", name, 5000) ? kept : dropped) = name;
  }
  ASSERT_FALSE(kept.empty());
  ASSERT_FALSE(dropped.empty());
  IncomingFile audit;
  audit.size = 10;
  audit.name = kept;
  c = classify("TENANT.AUDIT");
  EXPECT_EQ(runtime.FilterArrival(audit, t0, &c),
            PlanRuntime::ArrivalDecision::kAdmit);
  audit.name = dropped;
  c = classify("TENANT.AUDIT");
  EXPECT_EQ(runtime.FilterArrival(audit, t0, &c),
            PlanRuntime::ArrivalDecision::kDiscard);
  EXPECT_EQ(runtime.stats().sampled_out, 1u);
  EXPECT_EQ(runtime.stats().quota_shed, 1u);
}

TEST(PlanRuntimeTest, TardinessScalesByDeclaredSlo) {
  auto config = ParseWithPlans(
      "plan TENANT.SYSLOG { slo interactive; }\n"
      "plan TENANT.AUDIT { slo bulk; }");
  ASSERT_TRUE(config.ok()) << config.status();
  auto registry = FeedRegistry::Create(*config);
  ASSERT_TRUE(registry.ok()) << registry.status();
  PlanRuntime runtime(config->plans, registry->get(),
                      PlanContextFromConfig(*config));
  ASSERT_TRUE(runtime.Validate().ok());
  EXPECT_EQ(runtime.TardinessFor("TENANT.SYSLOG", kMinute), 15 * kSecond);
  EXPECT_EQ(runtime.TardinessFor("TENANT.AUDIT", kMinute), 4 * kMinute);
  // Ungoverned feeds keep their own deadline bound.
  EXPECT_EQ(runtime.TardinessFor("CLICKS", kMinute), kMinute);
}

}  // namespace
}  // namespace bistro

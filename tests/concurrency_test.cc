// Concurrency stress tests: the KV store, the in-memory filesystem and
// the logger are shared across delivery workers in live deployments and
// must tolerate concurrent access.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "kv/kvstore.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

TEST(ConcurrencyTest, KvStoreParallelWriters) {
  InMemoryFileSystem fs;
  auto store = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(store.ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = StrFormat("t%02d/k%04d", t, i);
        if (!(*store)->Put(key, std::to_string(i)).ok()) failures++;
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*store)->Size(), static_cast<size_t>(kThreads * kPerThread));
  // Everything is durable: reopen and recount.
  store->reset();
  auto reopened = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Size(), static_cast<size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    auto rows = (*reopened)->ScanPrefix(StrFormat("t%02d/", t));
    EXPECT_EQ(rows.size(), static_cast<size_t>(kPerThread));
  }
}

TEST(ConcurrencyTest, KvStoreReadersDuringWrites) {
  InMemoryFileSystem fs;
  auto store = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(store.ok());
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  ASSERT_TRUE((*store)->Put("stable", "42").ok());
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto v = (*store)->Get("stable");
        if (!v.ok() || *v != "42") read_errors++;
        (void)(*store)->ScanPrefix("w/");
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*store)->Put("w/" + std::to_string(i), "x").ok());
  }
  stop = true;
  for (auto& r : readers) r.join();
  EXPECT_EQ(read_errors.load(), 0);
}

TEST(ConcurrencyTest, MemFsParallelMixedOps) {
  InMemoryFileSystem fs;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::string dir = StrFormat("/w%d", t);
      for (int i = 0; i < 100; ++i) {
        std::string p = StrFormat("%s/f%03d", dir.c_str(), i);
        if (!fs.WriteFile(p, "data").ok()) errors++;
        if (!fs.ReadFile(p).ok()) errors++;
        if (!fs.ListDir(dir).ok()) errors++;
        if (i % 3 == 0) {
          if (!fs.Rename(p, p + ".moved").ok()) errors++;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);
  auto all = fs.ListRecursive("/");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), static_cast<size_t>(kThreads * 100));
}

TEST(ConcurrencyTest, LoggerParallelEmitters) {
  Logger logger;
  auto sink = std::make_shared<MemorySink>();
  logger.AddSink(sink);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        logger.Info(StrFormat("worker%d", t), "message " + std::to_string(i));
      }
    });
  }
  for (auto& e : emitters) e.join();
  EXPECT_EQ(sink->Count(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(ConcurrencyTest, ThreadPoolStressWithWaiters) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(pool.Submit([&sum, i] { sum += i; }));
    }
    pool.Wait();
  }
  EXPECT_EQ(sum.load(), 10L * 199 * 200 / 2);
}

}  // namespace
}  // namespace bistro

// Tests for the Bistro pattern language: compilation, matching, semantic
// field extraction, rendering (normalization templates), and the
// Normalizer pipeline. Examples come straight from the paper (§3.1, §5.1).

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "pattern/normalizer.h"
#include "pattern/pattern.h"

namespace bistro {
namespace {

Pattern MustCompile(std::string_view spec) {
  auto p = Pattern::Compile(spec);
  EXPECT_TRUE(p.ok()) << spec << ": " << p.status();
  return std::move(*p);
}

// ---------------------------------------------------------------- Compile

TEST(PatternCompileTest, PaperExamples) {
  // From §3.1 and §5.1/§5.2 of the paper.
  EXPECT_TRUE(Pattern::Compile("MEMORY%s.%Y%m%d.gz").ok());
  EXPECT_TRUE(Pattern::Compile("MEMORY_poller%i_%Y%m%d.gz").ok());
  EXPECT_TRUE(Pattern::Compile("CPU_POLL%i_%Y%m%d%H%M.txt").ok());
  EXPECT_TRUE(Pattern::Compile("TRAP__%Y%m%d_DCTAGN_klpi.txt").ok());
  EXPECT_TRUE(Pattern::Compile("%Y/%m/%d/poller1_%s.csv.bz2").ok());
}

TEST(PatternCompileTest, RejectsUnknownSpecifier) {
  EXPECT_FALSE(Pattern::Compile("file_%q.txt").ok());
  EXPECT_FALSE(Pattern::Compile("trailing%").ok());
}

TEST(PatternCompileTest, RejectsAmbiguousAdjacentFields) {
  EXPECT_FALSE(Pattern::Compile("%s%s.txt").ok());
  EXPECT_FALSE(Pattern::Compile("%i%i.txt").ok());
  EXPECT_FALSE(Pattern::Compile("%i%s.txt").ok());
  // Fixed-width time fields adjacent to each other are fine.
  EXPECT_TRUE(Pattern::Compile("%Y%m%d%H%M").ok());
  // And %i adjacent to a time field is fine (time fields have fixed width)
  EXPECT_TRUE(Pattern::Compile("p%i_%Y%m%d").ok());
}

TEST(PatternCompileTest, PercentEscape) {
  Pattern p = MustCompile("load%%_%i.txt");
  EXPECT_TRUE(p.Matches("load%_5.txt"));
  EXPECT_FALSE(p.Matches("load_5.txt"));
}

TEST(PatternCompileTest, LiteralPrefix) {
  EXPECT_EQ(MustCompile("MEMORY%s.gz").literal_prefix(), "MEMORY");
  EXPECT_EQ(MustCompile("%s.gz").literal_prefix(), "");
  EXPECT_EQ(MustCompile("plain.txt").literal_prefix(), "plain.txt");
}

// ---------------------------------------------------------------- Match

TEST(PatternMatchTest, ExtractsTimestamp) {
  Pattern p = MustCompile("MEMORY%s.%Y%m%d.gz");
  auto m = p.Match("MEMORY_poller1.20101230.gz");
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->strings.size(), 1u);
  EXPECT_EQ(m->strings[0], "_poller1");
  ASSERT_TRUE(m->timestamp.has_value());
  EXPECT_EQ(*m->timestamp, FromCivil(CivilTime{2010, 12, 30}));
  EXPECT_EQ(m->civil.year, 2010);
  EXPECT_EQ(m->civil.month, 12);
  EXPECT_EQ(m->civil.day, 30);
}

TEST(PatternMatchTest, ExtractsIntField) {
  Pattern p = MustCompile("CPU_POLL%i_%Y%m%d%H%M.txt");
  auto m = p.Match("CPU_POLL2_201009250503.txt");
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->ints.size(), 1u);
  EXPECT_EQ(m->ints[0], 2);
  EXPECT_EQ(*m->timestamp, FromCivil(CivilTime{2010, 9, 25, 5, 3, 0}));
}

TEST(PatternMatchTest, RejectsNonMatches) {
  Pattern p = MustCompile("MEMORY_poller%i_%Y%m%d.gz");
  EXPECT_TRUE(p.Matches("MEMORY_poller1_20100925.gz"));
  // Capitalized 'P' — the paper's §5.2 false-negative scenario.
  EXPECT_FALSE(p.Matches("MEMORY_Poller1_20100926.gz"));
  EXPECT_FALSE(p.Matches("MEMORY_poller1_20100925.gz.tmp"));
  EXPECT_FALSE(p.Matches("MEMORY_pollerX_20100925.gz"));
  EXPECT_FALSE(p.Matches(""));
}

TEST(PatternMatchTest, ValidatesTimeFieldRanges) {
  Pattern p = MustCompile("f_%Y%m%d.log");
  EXPECT_TRUE(p.Matches("f_20101231.log"));
  EXPECT_FALSE(p.Matches("f_20101301.log"));  // month 13
  EXPECT_FALSE(p.Matches("f_20101200.log"));  // day 0
  EXPECT_FALSE(p.Matches("f_20101232.log"));  // day 32
  Pattern hm = MustCompile("t_%H%M");
  EXPECT_TRUE(hm.Matches("t_2359"));
  EXPECT_FALSE(hm.Matches("t_2400"));
  EXPECT_FALSE(hm.Matches("t_2360"));
}

TEST(PatternMatchTest, TwoDigitYear) {
  Pattern p = MustCompile("f_%y%m%d");
  auto m = p.Match("f_100925");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->civil.year, 2010);
}

TEST(PatternMatchTest, StringFieldIsLazyButBacktracks) {
  Pattern p = MustCompile("%s_%Y%m%d.csv");
  // The %s must absorb "poller_a" even though '_' appears inside it.
  auto m = p.Match("poller_a_20101230.csv");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->strings[0], "poller_a");
}

TEST(PatternMatchTest, StringRequiresAtLeastOneChar) {
  Pattern p = MustCompile("A%sB");
  EXPECT_FALSE(p.Matches("AB"));
  EXPECT_TRUE(p.Matches("AxB"));
}

TEST(PatternMatchTest, IntIsGreedy) {
  Pattern p = MustCompile("p%i.txt");
  auto m = p.Match("p12345.txt");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->ints[0], 12345);
}

TEST(PatternMatchTest, DirectoryHierarchyPatterns) {
  // Paper §2.1: hierarchical organization YYYY/MM/DD/filename.
  Pattern p = MustCompile("%Y/%m/%d/poller%i_v%s.csv");
  auto m = p.Match("2010/12/30/poller7_v2.1.csv");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->ints[0], 7);
  EXPECT_EQ(m->strings[0], "2.1");
  EXPECT_EQ(*m->timestamp, FromCivil(CivilTime{2010, 12, 30}));
}

TEST(PatternMatchTest, NoTimeFieldsMeansNoTimestamp) {
  Pattern p = MustCompile("static_%s.cfg");
  auto m = p.Match("static_routerA.cfg");
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->timestamp.has_value());
  EXPECT_FALSE(m->has_time);
}

TEST(PatternMatchTest, MultipleStringsAndInts) {
  Pattern p = MustCompile("%s-%i-%s-%i.dat");
  auto m = p.Match("alpha-1-beta-2.dat");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->strings, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(m->ints, (std::vector<int64_t>{1, 2}));
}

// ---------------------------------------------------------------- Render

TEST(PatternRenderTest, RoundTripsThroughMatch) {
  Pattern p = MustCompile("MEMORY%s.%Y%m%d.gz");
  auto m = p.Match("MEMORY_poller1.20101230.gz");
  ASSERT_TRUE(m.has_value());
  auto rendered = p.Render(*m);
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(*rendered, "MEMORY_poller1.20101230.gz");
}

TEST(PatternRenderTest, NormalizationTemplate) {
  // Source pattern extracts fields; a different template reorganizes them
  // into daily directories (paper §3.1 item 2).
  Pattern source = MustCompile("MEMORY%s.%Y%m%d.gz");
  Pattern tmpl = MustCompile("%Y/%m/%d/MEMORY%s.dat");
  auto m = source.Match("MEMORY_poller1.20101230.gz");
  ASSERT_TRUE(m.has_value());
  auto rendered = tmpl.Render(*m);
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(*rendered, "2010/12/30/MEMORY_poller1.dat");
}

TEST(PatternRenderTest, MissingFieldIsError) {
  Pattern tmpl = MustCompile("out_%i_%s.dat");
  MatchResult empty;
  EXPECT_FALSE(tmpl.Render(empty).ok());
}

// Property: for patterns without %s ambiguity, Render(Match(x)) == x.
class PatternRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PatternRoundTripTest, MatchRenderIdentity) {
  Pattern p = MustCompile(GetParam());
  Rng rng(Fnv1a64(GetParam()));
  for (int i = 0; i < 50; ++i) {
    // Build a name by rendering random fields, then verify identity.
    MatchResult fields;
    fields.civil = CivilTime{2000 + (int)rng.Uniform(30), 1 + (int)rng.Uniform(12),
                             1 + (int)rng.Uniform(28), (int)rng.Uniform(24),
                             (int)rng.Uniform(60), (int)rng.Uniform(60)};
    fields.has_time = true;
    fields.strings = {rng.AlnumString(1 + rng.Uniform(10))};
    fields.ints = {(int64_t)rng.Uniform(1000)};
    auto name = p.Render(fields);
    ASSERT_TRUE(name.ok());
    auto m = p.Match(*name);
    ASSERT_TRUE(m.has_value()) << *name;
    auto name2 = p.Render(*m);
    ASSERT_TRUE(name2.ok());
    EXPECT_EQ(*name2, *name);
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, PatternRoundTripTest,
                         ::testing::Values("MEMORY_%s_%Y%m%d.gz",
                                           "CPU_POLL%i_%Y%m%d%H%M.txt",
                                           "%Y/%m/%d/f%i_%s.csv",
                                           "x%i_%s_%H%M%S.log"));

// ---------------------------------------------------------------- Normalizer

TEST(NormalizerTest, PassthroughKeepsNameAndBytes) {
  auto n = Normalizer::Create(NormalizeSpec{});
  ASSERT_TRUE(n.ok());
  MatchResult m;
  auto out = n->Apply("file.csv", m, "data");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relative_path, "file.csv");
  EXPECT_EQ(out->content, "data");
}

TEST(NormalizerTest, RenameIntoDailyDirs) {
  NormalizeSpec spec;
  spec.rename_template = "%Y/%m/%d/MEMORY%s.dat";
  auto n = Normalizer::Create(spec);
  ASSERT_TRUE(n.ok());
  Pattern source = MustCompile("MEMORY%s.%Y%m%d.gz");
  auto m = source.Match("MEMORY_p1.20101230.gz");
  ASSERT_TRUE(m.has_value());
  auto out = n->Apply("MEMORY_p1.20101230.gz", *m, "data");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relative_path, "2010/12/30/MEMORY_p1.dat");
}

TEST(NormalizerTest, CompressAndDecompressRoundTrip) {
  NormalizeSpec comp;
  comp.action = CompressionAction::kCompress;
  comp.codec = CodecKind::kLz;
  auto nc = Normalizer::Create(comp);
  ASSERT_TRUE(nc.ok());
  std::string payload(1000, 'x');
  auto compressed = nc->Apply("f", MatchResult{}, payload);
  ASSERT_TRUE(compressed.ok());
  EXPECT_LT(compressed->content.size(), payload.size());

  NormalizeSpec dec;
  dec.action = CompressionAction::kDecompress;
  auto nd = Normalizer::Create(dec);
  ASSERT_TRUE(nd.ok());
  auto restored = nd->Apply("f", MatchResult{}, compressed->content);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->content, payload);
}

TEST(NormalizerTest, DecompressPassesPlainData) {
  NormalizeSpec dec;
  dec.action = CompressionAction::kDecompress;
  auto n = Normalizer::Create(dec);
  ASSERT_TRUE(n.ok());
  auto out = n->Apply("f", MatchResult{}, "plain bytes");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->content, "plain bytes");
}

TEST(NormalizerTest, BadTemplateRejectedAtCreate) {
  NormalizeSpec spec;
  spec.rename_template = "%q_bad";
  EXPECT_FALSE(Normalizer::Create(spec).ok());
}

}  // namespace
}  // namespace bistro

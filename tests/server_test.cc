// Integration tests: the full BistroServer pipeline — landing zone ->
// classify -> receipts -> normalize -> stage -> schedule -> deliver ->
// receipts -> triggers — plus failure/backfill, feed revision, window
// expiry, hybrid push-pull, punctuation, and Bistro-to-Bistro chaining.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

constexpr char kConfig[] = R"(
group SNMP {
  feed CPU {
    pattern "CPU_POLL%i_%Y%m%d%H%M.txt";
    normalize "%Y/%m/%d/CPU_POLL%i_%H%M.txt";
    tardiness 60s;
  }
  feed MEMORY {
    pattern "MEMORY_%s_%Y%m%d.csv";
    compress lz;
  }
}
subscriber warehouse {
  destination "/warehouse";
  feeds SNMP;
  method push;
  trigger batch count 2 timeout 5m exec "load";
}
subscriber dashboard {
  destination "/dash";
  feeds SNMP.CPU;
  method notify;
}
)";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimClock>(FromCivil(CivilTime{2010, 9, 25}));
    loop_ = std::make_unique<EventLoop>(clock_.get());
    fs_ = std::make_unique<InMemoryFileSystem>();
    transport_ = std::make_unique<LoopbackTransport>(loop_.get());
    invoker_ = std::make_unique<RecordingInvoker>();
    logger_ = std::make_unique<Logger>(clock_.get());
    sink_ = std::make_shared<MemorySink>();
    logger_->AddSink(sink_);
    logger_->SetMinLevel(LogLevel::kWarning);

    warehouse_ = std::make_unique<FileSinkEndpoint>(fs_.get(), "/warehouse");
    dashboard_ = std::make_unique<FileSinkEndpoint>(fs_.get(), "/dash");
    transport_->Register("warehouse", warehouse_.get());
    transport_->Register("dashboard", dashboard_.get());

    auto config = ParseConfig(kConfig);
    ASSERT_TRUE(config.ok()) << config.status();
    auto server =
        BistroServer::Create(BistroServer::Options(), *config, fs_.get(),
                             transport_.get(), loop_.get(), invoker_.get(),
                             logger_.get());
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<InMemoryFileSystem> fs_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<RecordingInvoker> invoker_;
  std::unique_ptr<Logger> logger_;
  std::shared_ptr<MemorySink> sink_;
  std::unique_ptr<FileSinkEndpoint> warehouse_;
  std::unique_ptr<FileSinkEndpoint> dashboard_;
  std::unique_ptr<BistroServer> server_;
};

TEST_F(ServerTest, EndToEndPushDelivery) {
  ASSERT_TRUE(
      server_->Deposit("poller1", "CPU_POLL1_201009250400.txt", "cpu=42")
          .ok());
  loop_->RunUntilIdle();

  // Warehouse got the normalized file under its feed-rooted path.
  auto data = fs_->ReadFile("/warehouse/SNMP.CPU/2010/09/25/CPU_POLL1_0400.txt");
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, "cpu=42");
  // Dashboard (notify method) got a notification, not bytes.
  EXPECT_EQ(dashboard_->notifications(), 1u);
  EXPECT_EQ(dashboard_->files_received(), 0u);
  // Landing zone was emptied (the landing-zone invariant).
  auto landing = fs_->ListRecursive("/bistro/landing");
  ASSERT_TRUE(landing.ok());
  EXPECT_TRUE(landing->empty());
  // Receipts recorded.
  EXPECT_EQ(server_->receipts()->ArrivalCount(), 1u);
  EXPECT_TRUE(server_->receipts()->Delivered("warehouse", 1));
  EXPECT_EQ(server_->stats().files_classified, 1u);
}

TEST_F(ServerTest, CompressionAppliedInStaging) {
  std::string payload(10000, 'm');
  ASSERT_TRUE(
      server_->Deposit("poller1", "MEMORY_routerA_20100925.csv", payload).ok());
  loop_->RunUntilIdle();
  // Staged copy is compressed.
  auto staged = fs_->ReadFile(
      "/bistro/staging/SNMP.MEMORY/MEMORY_routerA_20100925.csv");
  ASSERT_TRUE(staged.ok());
  EXPECT_LT(staged->size(), payload.size() / 10);
  // Subscriber receives the compressed frame and can expand it.
  auto received = fs_->ReadFile("/warehouse/SNMP.MEMORY/MEMORY_routerA_20100925.csv");
  ASSERT_TRUE(received.ok());
  auto expanded = AutoDecompress(*received);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, payload);
}

TEST_F(ServerTest, UnmatchedFilesQuarantinedForAnalyzer) {
  ASSERT_TRUE(server_->Deposit("poller1", "mystery_file.bin", "???").ok());
  loop_->RunUntilIdle();
  EXPECT_EQ(server_->stats().files_unmatched, 1u);
  auto unmatched = server_->DrainUnmatched();
  ASSERT_EQ(unmatched.size(), 1u);
  EXPECT_EQ(unmatched[0].name, "mystery_file.bin");
  EXPECT_NE(unmatched[0].id, 0u);  // stable id for analyzer dedupe
  // Not delivered to anyone.
  EXPECT_EQ(warehouse_->files_received(), 0u);
  // Still in the landing zone (quarantine).
  EXPECT_TRUE(fs_->Exists("/bistro/landing/poller1/mystery_file.bin"));
}

TEST_F(ServerTest, CountBatchTriggerFires) {
  // Use RunUntil (not RunUntilIdle): under simulated time RunUntilIdle
  // would fast-forward straight through the 5-minute batch timeout.
  ASSERT_TRUE(
      server_->Deposit("p", "CPU_POLL1_201009250400.txt", "a").ok());
  loop_->RunUntil(clock_->Now() + kSecond);
  EXPECT_TRUE(invoker_->invocations().empty());
  ASSERT_TRUE(
      server_->Deposit("p", "CPU_POLL2_201009250400.txt", "b").ok());
  loop_->RunUntil(clock_->Now() + kSecond);
  ASSERT_EQ(invoker_->invocations().size(), 1u);
  const auto& inv = invoker_->invocations()[0];
  EXPECT_EQ(inv.command, "load");
  EXPECT_EQ(inv.batch.files.size(), 2u);
  EXPECT_EQ(inv.batch.subscriber, "warehouse");
}

TEST_F(ServerTest, BatchTimeoutFiresViaEventLoop) {
  ASSERT_TRUE(
      server_->Deposit("p", "CPU_POLL1_201009250400.txt", "a").ok());
  // Deliver, but stop short of the 5-minute batch timeout.
  loop_->RunUntil(clock_->Now() + kSecond);
  EXPECT_TRUE(invoker_->invocations().empty());
  // The batcher scheduled a timeout tick 5 minutes after open.
  loop_->RunUntil(clock_->Now() + 6 * kMinute);
  ASSERT_EQ(invoker_->invocations().size(), 1u);
  EXPECT_EQ(invoker_->invocations()[0].batch.reason,
            BatchEvent::Reason::kTimeout);
}

TEST_F(ServerTest, FailingSubscriberGoesOfflineAndBackfills) {
  warehouse_->SetFailing(true);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(server_
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  // RunUntil, not RunUntilIdle: offline probes re-post forever while the
  // subscriber is down, so the loop never goes idle.
  loop_->RunUntil(clock_->Now() + 2 * kMinute);
  EXPECT_TRUE(server_->delivery()->IsOffline("warehouse"));
  EXPECT_EQ(warehouse_->files_received(), 0u);
  // Dashboard kept receiving notifications: no cross-subscriber damage.
  EXPECT_EQ(dashboard_->notifications(), 4u);
  // An offline warning was logged.
  EXPECT_GE(sink_->CountAtLeast(LogLevel::kWarning), 1u);

  // Subscriber recovers; the periodic probe finds it and backfills.
  warehouse_->SetFailing(false);
  loop_->RunUntil(clock_->Now() + 10 * kMinute);
  EXPECT_FALSE(server_->delivery()->IsOffline("warehouse"));
  EXPECT_EQ(warehouse_->files_received(), 4u);
  EXPECT_GE(server_->delivery_stats().backfilled, 4u);
  for (FileId id = 1; id <= 4; ++id) {
    EXPECT_TRUE(server_->receipts()->Delivered("warehouse", id));
  }
}

TEST_F(ServerTest, NewSubscriberGetsHistory) {
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(server_
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  loop_->RunUntilIdle();
  InMemoryFileSystem late_fs;
  FileSinkEndpoint late_sink(&late_fs, "/late");
  transport_->Register("latecomer", &late_sink);
  SubscriberSpec spec;
  spec.name = "latecomer";
  spec.feeds = {"SNMP.CPU"};
  ASSERT_TRUE(server_->AddSubscriber(spec).ok());
  loop_->RunUntilIdle();
  EXPECT_EQ(late_sink.files_received(), 3u);
}

TEST_F(ServerTest, SubscriberWindowLimitsBackfill) {
  ASSERT_TRUE(server_->Deposit("p", "CPU_POLL1_201009250400.txt", "old").ok());
  loop_->RunUntilIdle();
  clock_->Advance(3 * kHour);
  ASSERT_TRUE(server_->Deposit("p", "CPU_POLL1_201009250700.txt", "new").ok());
  loop_->RunUntilIdle();
  InMemoryFileSystem late_fs;
  FileSinkEndpoint late_sink(&late_fs, "/late");
  transport_->Register("recent_only", &late_sink);
  SubscriberSpec spec;
  spec.name = "recent_only";
  spec.feeds = {"SNMP.CPU"};
  spec.window = kHour;  // only wants the last hour
  ASSERT_TRUE(server_->AddSubscriber(spec).ok());
  loop_->RunUntilIdle();
  EXPECT_EQ(late_sink.files_received(), 1u);
}

TEST_F(ServerTest, ReviseFeedRedeliversUnderNewDefinition) {
  // A file arrives that matches nothing (capital P — the §5.2 scenario).
  ASSERT_TRUE(server_->Deposit("p", "MEMORY_RouterB_20100925.bad", "x").ok());
  loop_->RunUntilIdle();
  EXPECT_EQ(server_->stats().files_unmatched, 1u);
  // Revise MEMORY's pattern so future arrivals match.
  FeedSpec revised = server_->registry()->FindFeed("SNMP.MEMORY")->spec;
  revised.pattern = "MEMORY_%s_%Y%m%d.bad";
  revised.normalize = NormalizeSpec{};
  ASSERT_TRUE(server_->ReviseFeed(revised).ok());
  ASSERT_TRUE(server_->Deposit("p", "MEMORY_RouterC_20100925.bad", "y").ok());
  loop_->RunUntilIdle();
  EXPECT_EQ(warehouse_->files_received(), 1u);
}

TEST_F(ServerTest, MaintenanceExpiresOldHistory) {
  // Recreate server with a 1h window.
  BistroServer::Options opts;
  opts.history_window = kHour;
  opts.landing_root = "/b2/landing";
  opts.staging_root = "/b2/staging";
  opts.db_dir = "/b2/db";
  auto config = ParseConfig(kConfig);
  ASSERT_TRUE(config.ok());
  auto server = BistroServer::Create(opts, *config, fs_.get(),
                                     transport_.get(), loop_.get(),
                                     invoker_.get(), logger_.get());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  loop_->RunUntilIdle();
  EXPECT_EQ((*server)->receipts()->ArrivalCount(), 1u);
  clock_->Advance(2 * kHour);
  (*server)->RunMaintenance();
  EXPECT_EQ((*server)->receipts()->ArrivalCount(), 0u);
  EXPECT_EQ((*server)->stats().files_expired, 1u);
  // Staged file gone.
  auto staged = fs_->ListRecursive("/b2/staging");
  ASSERT_TRUE(staged.ok());
  EXPECT_TRUE(staged->empty());
}

TEST_F(ServerTest, PunctuationTriggersSubscriber) {
  // Add a punctuation-mode subscriber.
  InMemoryFileSystem pfs;
  FileSinkEndpoint psink(&pfs, "/p");
  transport_->Register("puncsub", &psink);
  SubscriberSpec spec;
  spec.name = "puncsub";
  spec.feeds = {"SNMP.CPU"};
  spec.trigger.batch.mode = BatchSpec::Mode::kPunctuation;
  spec.trigger.command = "punc_load";
  ASSERT_TRUE(server_->AddSubscriber(spec).ok());
  ASSERT_TRUE(server_->Deposit("p", "CPU_POLL1_201009250400.txt", "a").ok());
  ASSERT_TRUE(server_->Deposit("p", "CPU_POLL2_201009250400.txt", "b").ok());
  loop_->RunUntilIdle();
  size_t before = invoker_->invocations().size();
  server_->SourceEndOfBatch("SNMP.CPU", 0);
  loop_->RunUntilIdle();
  bool punc_fired = false;
  for (size_t i = before; i < invoker_->invocations().size(); ++i) {
    if (invoker_->invocations()[i].command == "punc_load") {
      punc_fired = true;
      EXPECT_EQ(invoker_->invocations()[i].batch.files.size(), 2u);
    }
  }
  EXPECT_TRUE(punc_fired);
}

TEST_F(ServerTest, ScanLandingZonePicksUpNonCooperatingSources) {
  // A source writes directly into the landing zone without notifying.
  ASSERT_TRUE(fs_->WriteFile("/bistro/landing/legacy/CPU_POLL9_201009250400.txt",
                             "data")
                  .ok());
  auto n = server_->ScanLandingZone();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  loop_->RunUntilIdle();
  EXPECT_TRUE(
      fs_->Exists("/warehouse/SNMP.CPU/2010/09/25/CPU_POLL9_0400.txt"));
}

TEST_F(ServerTest, ServerChainsAsSubscriber) {
  // Downstream server with its own subscriber.
  BistroServer::Options opts;
  opts.landing_root = "/down/landing";
  opts.staging_root = "/down/staging";
  opts.db_dir = "/down/db";
  auto config = ParseConfig(R"(
feed RELAYED { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber end_user { feeds RELAYED; method push; }
)");
  ASSERT_TRUE(config.ok());
  auto downstream = BistroServer::Create(opts, *config, fs_.get(),
                                         transport_.get(), loop_.get(),
                                         invoker_.get(), logger_.get());
  ASSERT_TRUE(downstream.ok());
  InMemoryFileSystem end_fs;
  FileSinkEndpoint end_sink(&end_fs, "/end");
  transport_->Register("end_user", &end_sink);
  // Register the downstream server as an endpoint + subscriber upstream.
  transport_->Register("downstream_server", downstream->get());
  SubscriberSpec relay;
  relay.name = "downstream_server";
  relay.feeds = {"SNMP.CPU"};
  ASSERT_TRUE(server_->AddSubscriber(relay).ok());

  ASSERT_TRUE(server_->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  loop_->RunUntilIdle();
  // The file flowed: upstream -> downstream server -> end user.
  EXPECT_EQ((*downstream)->stats().files_classified, 1u);
  EXPECT_EQ(end_sink.files_received(), 1u);
}

TEST_F(ServerTest, ReceiptsSurviveServerRestart) {
  warehouse_->SetFailing(true);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(server_
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  loop_->RunUntil(clock_->Now() + 2 * kMinute);
  EXPECT_EQ(warehouse_->files_received(), 0u);
  // "Crash" the server; recreate over the same filesystem/db. Stale probe
  // events in the loop are neutralized by the engine's lifetime guard.
  server_.reset();
  warehouse_->SetFailing(false);
  auto config = ParseConfig(kConfig);
  ASSERT_TRUE(config.ok());
  auto server = BistroServer::Create(BistroServer::Options(), *config,
                                     fs_.get(), transport_.get(), loop_.get(),
                                     invoker_.get(), logger_.get());
  ASSERT_TRUE(server.ok()) << server.status();
  loop_->RunUntilIdle();
  // Startup backfill delivered the undelivered history.
  EXPECT_EQ(warehouse_->files_received(), 4u);
}

}  // namespace
}  // namespace bistro

// Randomized end-to-end property tests: for arbitrary mixes of feeds,
// subscribers, traffic, transient network failures and offline episodes,
// the system must converge to the core Bistro guarantee (paper §4.2):
//
//   every file classified into a feed is delivered to every subscriber of
//   that feed EXACTLY once (per delivery receipt), and the subscriber-side
//   filesystem holds exactly the staged bytes.
//
// Each seed generates a different scenario; the invariants are checked
// after the simulation settles.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

struct Scenario {
  int num_feeds;
  int num_subscribers;
  int num_files;
  double junk_prob;        // files matching no feed
  double link_failure;     // transient per-transfer failure probability
  bool offline_episode;    // one subscriber goes down mid-run
};

class E2EPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(E2EPropertyTest, EveryClassifiedFileDeliveredExactlyOnce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  Scenario sc;
  sc.num_feeds = 1 + static_cast<int>(rng.Uniform(4));
  sc.num_subscribers = 1 + static_cast<int>(rng.Uniform(4));
  sc.num_files = 50 + static_cast<int>(rng.Uniform(150));
  sc.junk_prob = rng.NextDouble() * 0.2;
  sc.link_failure = rng.Bernoulli(0.5) ? rng.NextDouble() * 0.2 : 0.0;
  sc.offline_episode = rng.Bernoulli(0.5);

  TimePoint start = FromCivil(CivilTime{2010, 9, 25});
  SimClock clock(start);
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  CallbackInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  // Build a random config.
  std::string config_text;
  for (int f = 0; f < sc.num_feeds; ++f) {
    config_text += StrFormat(
        "feed FEED%c { pattern \"feed%c_%%i_%%Y%%m%%d%%H%%M.dat\"; "
        "tardiness 2m; }\n",
        'A' + f, 'a' + f);
  }
  std::vector<std::vector<int>> subscriptions(sc.num_subscribers);
  for (int s = 0; s < sc.num_subscribers; ++s) {
    config_text += StrFormat("subscriber sub%d { feeds ", s);
    std::set<int> feeds;
    int count = 1 + static_cast<int>(rng.Uniform(sc.num_feeds));
    while (static_cast<int>(feeds.size()) < count) {
      feeds.insert(static_cast<int>(rng.Uniform(sc.num_feeds)));
    }
    bool first = true;
    for (int f : feeds) {
      if (!first) config_text += ", ";
      config_text += StrFormat("FEED%c", 'A' + f);
      subscriptions[s].push_back(f);
      first = false;
    }
    config_text += "; method push; }\n";
  }
  auto config = ParseConfig(config_text);
  ASSERT_TRUE(config.ok()) << config.status() << "\n" << config_text;

  std::vector<std::unique_ptr<InMemoryFileSystem>> sub_fs;
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  for (int s = 0; s < sc.num_subscribers; ++s) {
    LinkSpec link;
    link.failure_prob = sc.link_failure;
    network.SetLink(StrFormat("sub%d", s), link);
    sub_fs.push_back(std::make_unique<InMemoryFileSystem>());
    sinks.push_back(
        std::make_unique<FileSinkEndpoint>(sub_fs.back().get(), "/recv"));
    transport.Register(StrFormat("sub%d", s), sinks.back().get());
  }

  BistroServer::Options opts;
  opts.delivery.retry_backoff = 5 * kSecond;
  opts.delivery.probe_interval = 30 * kSecond;
  opts.delivery.max_attempts = 1000;  // transient failures must not drop files
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  ASSERT_TRUE(server.ok()) << server.status();

  // Random traffic over one simulated hour.
  std::map<std::string, std::pair<int, std::string>> expected;  // name -> (feed, bytes)
  int junk_count = 0;
  for (int i = 0; i < sc.num_files; ++i) {
    TimePoint t = start + static_cast<Duration>(rng.Uniform(kHour));
    bool junk = rng.Bernoulli(sc.junk_prob);
    std::string name, content;
    if (junk) {
      name = "junk_" + rng.AlnumString(10);
      content = "junk";
      ++junk_count;
    } else {
      int f = static_cast<int>(rng.Uniform(sc.num_feeds));
      CivilTime c = ToCivil(t);
      name = StrFormat("feed%c_%d_%04d%02d%02d%02d%02d.dat", 'a' + f, i,
                       c.year, c.month, c.day, c.hour, c.minute);
      content = rng.AlnumString(10 + rng.Uniform(500));
      expected[name] = {f, content};
    }
    loop.PostAt(t, [&, name, content] {
      ASSERT_TRUE((*server)->Deposit("src", name, content).ok());
    });
  }

  // Optional offline episode for subscriber 0.
  if (sc.offline_episode) {
    loop.PostAt(start + 10 * kMinute,
                [&] { network.SetOnline("sub0", false); });
    loop.PostAt(start + 35 * kMinute,
                [&] { network.SetOnline("sub0", true); });
  }

  // Run well past the traffic plus retries/probes/backfills.
  loop.RunUntil(start + 4 * kHour);

  // ---- Invariants ----
  const ServerStats& stats = (*server)->stats();
  EXPECT_EQ(stats.files_received, static_cast<uint64_t>(sc.num_files));
  EXPECT_EQ(stats.files_unmatched, static_cast<uint64_t>(junk_count));
  EXPECT_EQ(stats.files_classified, expected.size());

  for (int s = 0; s < sc.num_subscribers; ++s) {
    std::set<int> feeds(subscriptions[s].begin(), subscriptions[s].end());
    // Which files should this subscriber hold?
    size_t want = 0;
    for (const auto& [name, info] : expected) {
      if (feeds.count(info.first) == 0) continue;
      ++want;
      std::string dest = StrFormat("/recv/FEED%c/%s", 'A' + info.first,
                                   name.c_str());
      auto got = sub_fs[s]->ReadFile(dest);
      ASSERT_TRUE(got.ok()) << "sub" << s << " missing " << dest << " (seed "
                            << GetParam() << ")";
      EXPECT_EQ(*got, info.second);
    }
    // Exactly-once: sink delivery count equals the expected set size
    // (duplicates would inflate it; receipts dedupe retries).
    EXPECT_EQ(sinks[s]->files_received(), want)
        << "sub" << s << " duplicate or missing deliveries (seed "
        << GetParam() << ")";
    // And every delivery is receipted.
    for (const auto& [name, info] : expected) {
      (void)name;
      if (feeds.count(info.first) == 0) continue;
    }
  }
  // Receipt-side exactly-once: per subscriber, per classified file in its
  // interest set, Delivered() is true and the delivery queue is empty.
  for (int s = 0; s < sc.num_subscribers; ++s) {
    const SubscriberSpec* spec =
        (*server)->registry()->FindSubscriber(StrFormat("sub%d", s));
    ASSERT_NE(spec, nullptr);
    auto queue = (*server)->receipts()->ComputeDeliveryQueue(
        spec->name, (*server)->registry()->SubscribedFeeds(*spec));
    EXPECT_TRUE(queue.empty())
        << "sub" << s << " still has " << queue.size()
        << " undelivered files (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2EPropertyTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace bistro

// End-to-end tests for declarative ingestion plans against a full
// BistroServer: multi-tenant quota shedding with landing-zone recovery,
// archival sampling next to an unsampled real-time feed, A/B duplicate
// delivery with independent exactly-once receipts, SLO-class delivery
// priority under contention, worker-stage enrichment/transform, and the
// operator console's `plans` view.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/admin.h"
#include "core/server.h"
#include "ingest/plan.h"
#include "sim/network.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

/// A self-contained simulated world: loopback transport, file-sink
/// subscribers, one server booted from an inline config.
struct World {
  SimClock clock{FromCivil(CivilTime{2010, 9, 25})};
  EventLoop loop{&clock};
  InMemoryFileSystem fs;
  LoopbackTransport transport{&loop};
  RecordingInvoker invoker;
  Logger logger{&clock};
  std::map<std::string, std::unique_ptr<FileSinkEndpoint>> sinks;
  std::unique_ptr<BistroServer> server;

  World() { logger.SetMinLevel(LogLevel::kAlarm); }

  FileSinkEndpoint* AddSink(const std::string& name, const std::string& root) {
    auto sink = std::make_unique<FileSinkEndpoint>(&fs, root);
    FileSinkEndpoint* raw = sink.get();
    transport.Register(name, raw);
    sinks[name] = std::move(sink);
    return raw;
  }

  Status Boot(const std::string& config_text,
              DeliveryScheduler* scheduler = nullptr) {
    auto config = ParseConfig(config_text);
    if (!config.ok()) return config.status();
    auto created = BistroServer::Create(
        BistroServer::Options(), *config, &fs, &transport, &loop, &invoker,
        &logger, scheduler);
    if (!created.ok()) return created.status();
    server = std::move(*created);
    return Status::OK();
  }

  size_t LandingCount() {
    auto listing = fs.ListRecursive("/bistro/landing");
    return listing.ok() ? listing->size() : 0;
  }
};

TEST(PlanE2e, InvalidPlanFailsServerCreate) {
  World w;
  Status s = w.Boot(R"(
feed LOG { pattern "log_%i_%Y%m%d%H%M.txt"; }
subscriber sink { destination "/out"; feeds LOG; method push; }
plan NOSUCH { sample 50; }
)");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ingestion plans"), std::string::npos);
  EXPECT_NE(s.message().find("NOSUCH"), std::string::npos);
}

// Scenario 1 — multi-tenant quota: one plan block budgets a whole feed
// group; over-quota files are shed to the landing zone and recovered by
// a rescan once the token bucket refills.
TEST(PlanE2e, QuotaShedsToLandingZoneAndRecovers) {
  World w;
  FileSinkEndpoint* warehouse = w.AddSink("warehouse", "/warehouse");
  ASSERT_TRUE(w.Boot(R"(
group TENANT {
  feed SYSLOG { pattern "syslog_%i_%Y%m%d%H%M.txt"; }
  feed AUDIT { pattern "audit_%i_%Y%m%d%H%M.txt"; }
}
subscriber warehouse { destination "/warehouse"; feeds TENANT; method push; }
plan TENANT { quota 2 per 1m; }
)")
                  .ok());

  // Two syslog files spend the tenant's whole budget; the audit file is
  // refused by the *shared* bucket even though its feed saw no traffic.
  ASSERT_TRUE(w.server->Deposit("src", "syslog_1_201009250400.txt", "a").ok());
  ASSERT_TRUE(w.server->Deposit("src", "syslog_2_201009250400.txt", "b").ok());
  ASSERT_TRUE(w.server->Deposit("src", "audit_1_201009250400.txt", "c").ok());
  w.loop.RunUntilIdle();

  EXPECT_EQ(warehouse->files_received(), 2u);
  EXPECT_EQ(w.LandingCount(), 1u);
  EXPECT_TRUE(w.fs.Exists("/bistro/landing/src/audit_1_201009250400.txt"));
  EXPECT_EQ(w.server->plans()->stats().quota_shed, 1u);

  // A minute later the bucket has refilled; the landing-zone rescan
  // (the non-cooperating-source path) admits the deferred file.
  w.loop.RunUntil(w.clock.Now() + kMinute);
  auto scanned = w.server->ScanLandingZone();
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  w.loop.RunUntilIdle();

  EXPECT_EQ(warehouse->files_received(), 3u);
  EXPECT_EQ(w.LandingCount(), 0u);
  auto delivered = w.fs.ReadFile("/warehouse/TENANT.AUDIT/audit_1_201009250400.txt");
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_EQ(*delivered, "c");
}

// Scenario 2 — archival sampling: ARCHIVE and REALTIME share a filename
// pattern, so every file classifies into both; the plan samples the
// archive feed down to 40% while the real-time feed keeps everything.
// The keep set is a deterministic hash, recomputed here exactly.
TEST(PlanE2e, ArchivalSamplingNextToFullRealtimeFeed) {
  World w;
  FileSinkEndpoint* archive = w.AddSink("archive_sink", "/archive");
  FileSinkEndpoint* realtime = w.AddSink("realtime_sink", "/rt");
  ASSERT_TRUE(w.Boot(R"(
feed ARCHIVE { pattern "evt_%i_%Y%m%d%H%M.txt"; }
feed REALTIME { pattern "evt_%i_%Y%m%d%H%M.txt"; }
subscriber archive_sink { destination "/archive"; feeds ARCHIVE; method push; }
subscriber realtime_sink { destination "/rt"; feeds REALTIME; method push; }
plan ARCHIVE { sample 40; }
)")
                  .ok());

  constexpr int kFiles = 20;
  size_t kept = 0;
  for (int i = 1; i <= kFiles; ++i) {
    const std::string name = StrFormat("evt_%d_201009250400.txt", i);
    if (PlanSampleKeeps("ARCHIVE", name, 4000)) ++kept;
    ASSERT_TRUE(w.server->Deposit("src", name, "x").ok());
  }
  w.loop.RunUntilIdle();
  ASSERT_GT(kept, 0u);          // the fixed hash keeps some...
  ASSERT_LT(kept, size_t{kFiles});  // ...and drops some of these 20 names

  EXPECT_EQ(realtime->files_received(), static_cast<uint64_t>(kFiles));
  EXPECT_EQ(archive->files_received(), kept);
  EXPECT_EQ(w.server->plans()->stats().sampled_out,
            static_cast<uint64_t>(kFiles) - kept);
  // Per-file: presence in the archive matches the published hash rule.
  // A file's staged path follows its *primary* (first surviving) feed,
  // so archive-kept files reach the realtime sink under ARCHIVE/ while
  // sampled-out files re-derive their primary match and land under
  // REALTIME/ — the plan filter refreshed the staging fields.
  for (int i = 1; i <= kFiles; ++i) {
    const std::string name = StrFormat("evt_%d_201009250400.txt", i);
    const bool kept_in_archive = PlanSampleKeeps("ARCHIVE", name, 4000);
    EXPECT_EQ(w.fs.Exists("/archive/ARCHIVE/" + name), kept_in_archive)
        << name;
    const std::string rt_dir = kept_in_archive ? "ARCHIVE" : "REALTIME";
    EXPECT_TRUE(w.fs.Exists("/rt/" + rt_dir + "/" + name)) << name;
  }
  // Sampling never strands files in the landing zone: each file was
  // admitted into REALTIME even when sampled out of ARCHIVE.
  EXPECT_EQ(w.LandingCount(), 0u);
}

// A file sampled out of *every* feed it matches is discarded outright
// (the hash is deterministic — a rescan could never admit it), so the
// landing zone does not fill with permanently rejected files.
TEST(PlanE2e, FullySampledOutFileIsDiscardedFromLanding) {
  World w;
  w.AddSink("sink", "/out");
  ASSERT_TRUE(w.Boot(R"(
feed EVENTS { pattern "evt_%i_%Y%m%d%H%M.txt"; }
subscriber sink { destination "/out"; feeds EVENTS; method push; }
plan EVENTS { sample 40; }
)")
                  .ok());
  std::string dropped;
  for (int i = 1; dropped.empty() && i < 200; ++i) {
    std::string name = StrFormat("evt_%d_201009250400.txt", i);
    if (!PlanSampleKeeps("EVENTS", name, 4000)) dropped = name;
  }
  ASSERT_FALSE(dropped.empty());
  ASSERT_TRUE(w.server->Deposit("src", dropped, "x").ok());
  w.loop.RunUntilIdle();
  EXPECT_EQ(w.LandingCount(), 0u);
  EXPECT_EQ(w.sinks["sink"]->files_received(), 0u);
  EXPECT_EQ(w.server->plans()->stats().sampled_out, 1u);
}

// Scenario 3 — A/B duplicate delivery: each file goes to exactly one
// split arm (deterministic name hash), arms keep independent
// exactly-once receipts, and a non-arm subscriber of the same feed
// still receives every file.
TEST(PlanE2e, AbSplitDeliversEachFileToExactlyOneArm) {
  World w;
  FileSinkEndpoint* arm_a = w.AddSink("arm_a", "/a");
  FileSinkEndpoint* arm_b = w.AddSink("arm_b", "/b");
  FileSinkEndpoint* audit = w.AddSink("audit", "/audit");
  ASSERT_TRUE(w.Boot(R"(
feed CLICKS { pattern "click_%i_%Y%m%d%H%M.txt"; }
subscriber arm_a { destination "/a"; feeds CLICKS; method push; }
subscriber arm_b { destination "/b"; feeds CLICKS; method push; }
subscriber audit { destination "/audit"; feeds CLICKS; method push; }
plan CLICKS { split 50 to arm_a, 50 to arm_b; }
)")
                  .ok());

  const std::vector<PlanSplitArm> arms{{50, "arm_a"}, {50, "arm_b"}};
  constexpr int kFiles = 12;
  for (int i = 1; i <= kFiles; ++i) {
    ASSERT_TRUE(
        w.server->Deposit("src", StrFormat("click_%d_201009250400.txt", i), "x")
            .ok());
  }
  w.loop.RunUntilIdle();

  // Every file went to exactly one arm; together the arms saw them all.
  EXPECT_EQ(arm_a->files_received() + arm_b->files_received(),
            static_cast<uint64_t>(kFiles));
  EXPECT_GT(arm_a->files_received(), 0u);
  EXPECT_GT(arm_b->files_received(), 0u);
  // The audit subscriber is not an arm: it gets the full stream.
  EXPECT_EQ(audit->files_received(), static_cast<uint64_t>(kFiles));

  // Exactly-once receipts are independent per arm: the chosen arm has a
  // delivery receipt, the other arm has none (FileIds are assigned in
  // deposit order, 1-based).
  for (int i = 1; i <= kFiles; ++i) {
    const std::string name = StrFormat("click_%d_201009250400.txt", i);
    const PlanSplitArm* chosen = PlanSplitArmFor(arms, name);
    ASSERT_NE(chosen, nullptr);
    const std::string other = chosen->to == "arm_a" ? "arm_b" : "arm_a";
    const FileId id = static_cast<FileId>(i);
    EXPECT_TRUE(w.server->receipts()->Delivered(chosen->to, id)) << name;
    EXPECT_FALSE(w.server->receipts()->Delivered(other, id)) << name;
    EXPECT_TRUE(w.server->receipts()->Delivered("audit", id)) << name;
  }
  EXPECT_EQ(w.server->plans()->stats().split_routed,
            static_cast<uint64_t>(kFiles));
  EXPECT_EQ(w.server->plans()->stats().route_filtered,
            static_cast<uint64_t>(kFiles));
}

// Scenario 4 — SLO classes: with one transfer slot and a slow link, an
// interactive-class file submitted *after* two bulk-class files is
// dequeued first, because EDF sees its deadline pulled in 4x while the
// bulk deadlines are relaxed 4x.
TEST(PlanE2e, InteractiveSloOvertakesEarlierBulkFiles) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  Rng rng(42);
  SimNetwork network(&rng);
  SimTransport transport(&loop, &network);
  RecordingInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);

  network.SetLink("sink", LinkSpec::Slow());  // transfers take real sim time
  FileSinkEndpoint sink(&fs, "/recv");
  transport.Register("sink", &sink);
  std::vector<std::string> order;
  sink.SetMessageHook([&](const Message& msg) {
    if (msg.type == MessageType::kFileData) order.push_back(msg.name);
  });

  auto config = ParseConfig(R"(
feed FAST { pattern "fast_%i_%Y%m%d%H%M.txt"; tardiness 60s; }
feed BULK { pattern "bulk_%i_%Y%m%d%H%M.txt"; tardiness 60s; }
subscriber sink { destination "/recv"; feeds FAST, BULK; method push; }
plan FAST { slo interactive; }
plan BULK { slo bulk; }
)");
  ASSERT_TRUE(config.ok()) << config.status();

  // One partition, one slot: every job queues behind the link.
  PartitionedScheduler::Options sched_options;
  sched_options.num_partitions = 1;
  sched_options.slots_per_partition = 1;
  PartitionedScheduler scheduler(sched_options);

  auto created = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                      &transport, &loop, &invoker, &logger,
                                      &scheduler);
  ASSERT_TRUE(created.ok()) << created.status();
  auto server = std::move(*created);

  // bulk_1 grabs the only slot; bulk_2 and bulk_3 queue; then the
  // interactive file arrives last.
  ASSERT_TRUE(server->Deposit("src", "bulk_1_201009250400.txt", "b1").ok());
  ASSERT_TRUE(server->Deposit("src", "bulk_2_201009250400.txt", "b2").ok());
  ASSERT_TRUE(server->Deposit("src", "bulk_3_201009250400.txt", "b3").ok());
  ASSERT_TRUE(server->Deposit("src", "fast_1_201009250400.txt", "f1").ok());
  loop.RunUntilIdle();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "bulk_1_201009250400.txt");  // already in flight
  // The interactive file overtook both queued bulk files.
  EXPECT_EQ(order[1], "fast_1_201009250400.txt");
  EXPECT_EQ(sink.files_received(), 4u);
}

// Enrichment runs in the worker stage before staging: the delivered
// bytes carry a checksum header over a provenance header over the
// payload, in declaration order.
TEST(PlanE2e, EnrichmentPrependsProvenanceAndChecksumHeaders) {
  World w;
  w.AddSink("sink", "/out");
  ASSERT_TRUE(w.Boot(R"(
feed RAW { pattern "raw_%i_%Y%m%d%H%M.txt"; }
subscriber sink { destination "/out"; feeds RAW; method push; }
plan RAW { enrich provenance, checksum; }
)")
                  .ok());
  ASSERT_TRUE(
      w.server->Deposit("src", "raw_1_201009250400.txt", "hello\n").ok());
  w.loop.RunUntilIdle();

  auto delivered = w.fs.ReadFile("/out/RAW/raw_1_201009250400.txt");
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  // Outermost header is the checksum (applied last), covering
  // everything after its own line.
  ASSERT_EQ(delivered->rfind("#bistro-crc32 ", 0), 0u) << *delivered;
  const size_t eol = delivered->find('\n');
  ASSERT_NE(eol, std::string::npos);
  const std::string body = delivered->substr(eol + 1);
  const uint32_t declared = static_cast<uint32_t>(
      std::stoul(delivered->substr(14, eol - 14), nullptr, 16));
  EXPECT_EQ(declared, Crc32(body));
  // Inside: the provenance header, then the untouched payload.
  EXPECT_EQ(body.rfind("#bistro-provenance feed=RAW file=raw_1_", 0), 0u)
      << body;
  EXPECT_NE(body.find("arrival="), std::string::npos);
  EXPECT_EQ(body.substr(body.find('\n') + 1), "hello\n");
  EXPECT_EQ(w.server->plans()->stats().enriched, 2u);
}

// A plan transform overrides the feed's normalize policy: the feed
// declares no compression, the plan compresses, and the subscriber can
// expand what it received.
TEST(PlanE2e, TransformOverridesFeedNormalizePolicy) {
  World w;
  w.AddSink("sink", "/out");
  ASSERT_TRUE(w.Boot(R"(
feed RAW { pattern "raw_%i_%Y%m%d%H%M.txt"; }
subscriber sink { destination "/out"; feeds RAW; method push; }
plan RAW { transform lz; }
)")
                  .ok());
  const std::string payload(10000, 'z');
  ASSERT_TRUE(
      w.server->Deposit("src", "raw_1_201009250400.txt", payload).ok());
  w.loop.RunUntilIdle();

  auto staged = w.fs.ReadFile("/bistro/staging/RAW/raw_1_201009250400.txt");
  ASSERT_TRUE(staged.ok()) << staged.status();
  EXPECT_LT(staged->size(), payload.size() / 10);
  auto delivered = w.fs.ReadFile("/out/RAW/raw_1_201009250400.txt");
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  auto expanded = AutoDecompress(*delivered);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_EQ(*expanded, payload);
  EXPECT_EQ(w.server->plans()->stats().transformed, 1u);
}

// The operator console's `plans` command renders the compiled table.
TEST(PlanE2e, AdminPlansCommandRendersCompiledTable) {
  World w;
  w.AddSink("warehouse", "/warehouse");
  ASSERT_TRUE(w.Boot(R"(
group TENANT {
  feed SYSLOG { pattern "syslog_%i_%Y%m%d%H%M.txt"; }
  feed AUDIT { pattern "audit_%i_%Y%m%d%H%M.txt"; }
}
subscriber warehouse { destination "/warehouse"; feeds TENANT; method push; }
plan TENANT { quota 2 per 1m; slo bulk; }
)")
                  .ok());
  const std::string out = ExecuteAdminCommand(w.server.get(), "plans");
  EXPECT_NE(out.find("Ingestion plans"), std::string::npos) << out;
  EXPECT_NE(out.find("TENANT.SYSLOG"), std::string::npos) << out;
  EXPECT_NE(out.find("TENANT.AUDIT"), std::string::npos) << out;
  EXPECT_NE(out.find("bulk"), std::string::npos) << out;
  EXPECT_NE(out.find("quota"), std::string::npos) << out;
  // The command is listed in help, and a plan-less server still answers.
  EXPECT_NE(ExecuteAdminCommand(w.server.get(), "help").find("plans"),
            std::string::npos);
}

TEST(PlanE2e, PlansCommandWithoutPlansExplainsItself) {
  World w;
  w.AddSink("sink", "/out");
  ASSERT_TRUE(w.Boot(R"(
feed RAW { pattern "raw_%i_%Y%m%d%H%M.txt"; }
subscriber sink { destination "/out"; feeds RAW; method push; }
)")
                  .ok());
  EXPECT_EQ(w.server->plans(), nullptr);
  const std::string out = ExecuteAdminCommand(w.server.get(), "plans");
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace bistro

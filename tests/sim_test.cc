// Tests for the discrete-event loop and the simulated network.

#include <unistd.h>

#include <thread>

#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "sim/network.h"

namespace bistro {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  SimClock clock(0);
  EventLoop loop(&clock);
  std::vector<int> order;
  loop.PostAt(300, [&] { order.push_back(3); });
  loop.PostAt(100, [&] { order.push_back(1); });
  loop.PostAt(200, [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now(), 300);
  EXPECT_EQ(loop.executed(), 3u);
}

TEST(EventLoopTest, TiesBreakByPostingOrder) {
  SimClock clock(0);
  EventLoop loop(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.PostAt(100, [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, EventsCanPostEvents) {
  SimClock clock(0);
  EventLoop loop(&clock);
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 10) loop.PostAfter(50, hop);
  };
  loop.Post(hop);
  loop.RunUntilIdle();
  EXPECT_EQ(hops, 10);
  EXPECT_EQ(clock.Now(), 9 * 50);
}

TEST(EventLoopTest, PastEventsClampToNow) {
  SimClock clock(1000);
  EventLoop loop(&clock);
  bool ran = false;
  loop.PostAt(10, [&] { ran = true; });  // in the past
  loop.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(EventLoopTest, RunUntilLeavesLaterEventsQueued) {
  SimClock clock(0);
  EventLoop loop(&clock);
  int ran = 0;
  loop.PostAt(100, [&] { ran++; });
  loop.PostAt(200, [&] { ran++; });
  loop.PostAt(900, [&] { ran++; });
  loop.RunUntil(500);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(clock.Now(), 500);
  EXPECT_EQ(loop.pending(), 1u);
  loop.RunUntilIdle();
  EXPECT_EQ(ran, 3);
}

TEST(EventLoopTest, StopAbortsProcessing) {
  SimClock clock(0);
  EventLoop loop(&clock);
  int ran = 0;
  loop.PostAt(1, [&] {
    ran++;
    loop.Stop();
  });
  loop.PostAt(2, [&] { ran++; });
  loop.RunUntilIdle();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopTest, WorksWithRealClock) {
  RealClock clock;
  EventLoop loop(&clock);
  int ran = 0;
  loop.PostAfter(1 * kMillisecond, [&] { ran++; });
  loop.Post([&] { ran++; });
  loop.RunUntilIdle();
  EXPECT_EQ(ran, 2);
}

// A cross-thread Post must interrupt a blocked real-clock wait instead of
// riding out the timer: the loop below would otherwise sleep the full five
// seconds before noticing the event.
TEST(EventLoopTest, CrossThreadPostWakesBlockedWait) {
  RealClock clock;
  EventLoop loop(&clock);
  int ran = 0;
  TimePoint started = clock.Now();
  std::thread poster([&] {
    clock.SleepFor(20 * kMillisecond);
    loop.Post([&] {
      ran++;
      loop.Stop();
    });
  });
  loop.RunFor(5 * kSecond);
  Duration elapsed = clock.Now() - started;
  poster.join();
  EXPECT_EQ(ran, 1);
  // Generous bound for loaded CI machines; without the wakeup pipe this
  // would be the full 5 s.
  EXPECT_LT(elapsed, 2 * kSecond) << "wakeup took " << elapsed << "us";
}

TEST(EventLoopTest, RunForReturnsAtDeadline) {
  RealClock clock;
  EventLoop loop(&clock);
  int ran = 0;
  loop.PostAfter(5 * kMillisecond, [&] { ran++; });
  loop.PostAfter(10 * kSecond, [&] { ran++; });  // beyond the deadline
  TimePoint started = clock.Now();
  loop.RunFor(30 * kMillisecond);
  EXPECT_EQ(ran, 1);
  EXPECT_GE(clock.Now() - started, 30 * kMillisecond);
  EXPECT_EQ(loop.pending(), 1u);
}

// Watched fds dispatch their callbacks from within a blocked wait.
TEST(EventLoopTest, WatchedFdDispatchesOnReadable) {
  RealClock clock;
  EventLoop loop(&clock);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  int readable_calls = 0;
  std::string got;
  loop.WatchFd(fds[0], [&](bool readable, bool) {
    if (!readable) return;
    ++readable_calls;
    char buf[16];
    ssize_t n = read(fds[0], buf, sizeof(buf));
    if (n > 0) got.assign(buf, static_cast<size_t>(n));
    loop.UnwatchFd(fds[0]);
    loop.Stop();
  });
  EXPECT_EQ(loop.watched_fds(), 1u);
  std::thread writer([&] {
    clock.SleepFor(10 * kMillisecond);
    ssize_t ignored = write(fds[1], "ping", 4);
    (void)ignored;
  });
  loop.RunFor(5 * kSecond);
  writer.join();
  EXPECT_EQ(readable_calls, 1);
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(loop.watched_fds(), 0u);
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------- Network

TEST(SimNetworkTest, TransferDurationIncludesLatencyAndBandwidth) {
  Rng rng(1);
  SimNetwork net(&rng);
  LinkSpec link;
  link.bandwidth_bytes_per_sec = 1000;
  link.latency = 100 * kMillisecond;
  net.SetLink("sub", link);
  auto d = net.TransferDuration("sub", 2000);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 100 * kMillisecond + 2 * kSecond);
  EXPECT_FALSE(net.TransferDuration("nobody", 1).ok());
}

TEST(SimNetworkTest, SerialLinkQueuesConcurrentTransfers) {
  Rng rng(1);
  SimNetwork net(&rng);
  LinkSpec link;
  link.bandwidth_bytes_per_sec = 1000;
  link.latency = 0;
  net.SetLink("sub", link);
  auto t1 = net.ScheduleTransfer("sub", 1000, /*now=*/0);  // 1s
  auto t2 = net.ScheduleTransfer("sub", 1000, /*now=*/0);  // queued behind
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, kSecond);
  EXPECT_EQ(*t2, 2 * kSecond);
  EXPECT_EQ(net.BytesSent("sub"), 2000u);
}

TEST(SimNetworkTest, OfflineLinkRefusesTransfers) {
  Rng rng(1);
  SimNetwork net(&rng);
  net.SetLink("sub", LinkSpec::Fast());
  EXPECT_TRUE(net.IsOnline("sub"));
  net.SetOnline("sub", false);
  EXPECT_FALSE(net.IsOnline("sub"));
  auto t = net.ScheduleTransfer("sub", 100, 0);
  EXPECT_TRUE(t.status().IsUnavailable());
  net.SetOnline("sub", true);
  EXPECT_TRUE(net.ScheduleTransfer("sub", 100, 0).ok());
}

TEST(SimNetworkTest, FlakyLinkFailsSometimes) {
  Rng rng(42);
  SimNetwork net(&rng);
  net.SetLink("sub", LinkSpec::Flaky(0.5));
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!net.ScheduleTransfer("sub", 10, i * kSecond).ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
}

}  // namespace
}  // namespace bistro

// Partition-matrix end-to-end test: an upstream Bistro server federates
// to in-process downstream servers over REAL loopback TCP, with a
// PartitionableTransport shim interposed on every link so network
// partitions, one-way blackholes, link flaps, and failover outages are
// injected deterministically — no root, no iptables, seeded.
//
// Every cell ends the same way: the downstream servers are torn down and
// their receipt databases reopened post-mortem, and the Bistro guarantee
// is audited cold — every deposited file ingested exactly once per
// downstream, payload bytes intact — no matter what the wire did in
// between. The cells additionally pin the peer-health state machine
// (healthy -> suspect -> down -> probation -> healthy), the circuit
// breaker (a down peer fails fast instead of burning the outbound
// queue), and replica failover with primary catch-up on heal.
//
// The CI partition-chaos job shifts seeds via BISTRO_CHAOS_SEED_BASE.

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "fault/partition.h"
#include "fault/plan.h"
#include "federation/federation.h"
#include "federation/health.h"
#include "kv/receipts.h"
#include "net/socket_transport.h"
#include "vfs/localfs.h"

namespace bistro {
namespace {

int SeedBase() {
  const char* env = std::getenv("BISTRO_CHAOS_SEED_BASE");
  return env == nullptr ? 0 : std::atoi(env);
}

constexpr char kFeedConfig[] = R"(
feed FED { pattern "fed_%i_%Y%m%d%H%M.dat"; tardiness 1m; }
)";

// --------------------------------------------------------- downstreams

/// One in-process downstream server with its own listener, inbound
/// endpoint, and durable state root. Call CloseServer() before auditing
/// its receipt DB post-mortem.
class Downstream {
 public:
  Downstream(EventLoop* loop, LocalFileSystem* fs, Logger* logger,
             const std::string& root)
      : root_(root), transport_(loop, ListenOptions()) {
    Init(loop, fs, logger, root);
  }

  /// ASSERTs need a void function; the constructor delegates here.
  void Init(EventLoop* loop, LocalFileSystem* fs, Logger* logger,
            const std::string& root) {
    EXPECT_TRUE(transport_.Listen().ok());
    auto config = ParseConfig(kFeedConfig);
    ASSERT_TRUE(config.ok()) << config.status();
    BistroServer::Options opts;
    opts.landing_root = root + "/landing";
    opts.staging_root = root + "/staging";
    opts.db_dir = root + "/db";
    auto server = BistroServer::Create(opts, *config, fs, &transport_, loop,
                                       &invoker_, logger);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
    inbound_ = std::make_unique<FederationInbound>(server_.get(), logger);
    transport_.SetInboundEndpoint(inbound_.get());
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(transport_.listen_port());
  }
  const std::string& root() const { return root_; }
  FederationInbound* inbound() { return inbound_.get(); }

  /// Tears the server down cleanly so the receipt DB can be reopened.
  void CloseServer() {
    transport_.Shutdown();
    inbound_.reset();
    server_.reset();
  }

 private:
  static SocketTransport::Options ListenOptions() {
    SocketTransport::Options opts;
    opts.listen_address = "127.0.0.1:0";
    return opts;
  }

  std::string root_;
  CallbackInvoker invoker_;
  SocketTransport transport_;
  std::unique_ptr<BistroServer> server_;
  std::unique_ptr<FederationInbound> inbound_;
};

// -------------------------------------------------------- the upstream

/// Upstream server + health/failover runtime + chaos harness. The
/// harness IS the server's transport (production wiring plus an
/// interposed wire); the inner SocketTransport carries the observer and
/// the circuit-breaker gate.
class Upstream {
 public:
  /// `peer_config` holds the `peer { ... }` blocks, one per entry of
  /// `downstreams` in order; each placeholder address is rewritten to
  /// the matching downstream's shim.
  Upstream(int seed, EventLoop* loop, LocalFileSystem* fs, Logger* logger,
           const std::string& root, const std::string& peer_config,
           std::vector<Downstream*> downstreams, bool with_runtime,
           std::function<void(BistroServer::Options*)> tweak = nullptr) {
    Init(seed, loop, fs, logger, root, peer_config, std::move(downstreams),
         with_runtime, std::move(tweak));
  }

  /// ASSERTs need a void function; the constructor delegates here.
  void Init(int seed, EventLoop* loop, LocalFileSystem* fs, Logger* logger,
            const std::string& root, const std::string& peer_config,
            std::vector<Downstream*> downstreams, bool with_runtime,
            std::function<void(BistroServer::Options*)> tweak) {
    auto config = ParseConfig(std::string(kFeedConfig) + peer_config);
    ASSERT_TRUE(config.ok()) << config.status();
    config_ = std::make_unique<ServerConfig>(std::move(*config));
    config_->server.reconnect_backoff_min = 20 * kMillisecond;
    config_->server.reconnect_backoff_max = 100 * kMillisecond;
    config_->server.ack_timeout = 300 * kMillisecond;

    transport_ = std::make_unique<SocketTransport>(
        loop, SocketOptionsFromSpec(config_->server,
                                    static_cast<uint64_t>(seed) + 1));
    harness_ = std::make_unique<PartitionableTransport>(
        loop, transport_.get(), "up");

    BistroServer::Options opts;
    opts.landing_root = root + "/up/landing";
    opts.staging_root = root + "/up/staging";
    opts.db_dir = root + "/up/db";
    opts.delivery.retry_backoff = 50 * kMillisecond;
    opts.delivery.retry_backoff_max = 400 * kMillisecond;
    opts.delivery.probe_interval = 100 * kMillisecond;
    opts.delivery.max_attempts = 1000000;  // an outage must not drop files
    opts.delivery.backoff_seed = static_cast<uint64_t>(seed) + 2;
    if (tweak) tweak(&opts);
    auto server = BistroServer::Create(opts, *config_, fs, harness_.get(),
                                       loop, &invoker_, logger);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);

    if (with_runtime) {
      runtime_ = std::make_unique<FederationRuntime>(
          server_.get(), transport_.get(), loop, logger);
      ASSERT_TRUE(runtime_->Start(*config_).ok());
    } else {
      ASSERT_TRUE(
          WirePeers(*config_, server_.get(), transport_.get(), logger).ok());
    }
    // Re-point every peer at its shim (config addresses are
    // placeholders); the inner transport reconnects through the relay.
    ASSERT_EQ(config_->peers.size(), downstreams.size());
    for (size_t i = 0; i < downstreams.size(); ++i) {
      ASSERT_TRUE(harness_
                      ->AddPeer(config_->peers[i].name,
                                downstreams[i]->address())
                      .ok());
    }
  }

  BistroServer* server() { return server_.get(); }
  SocketTransport* transport() { return transport_.get(); }
  PartitionableTransport* harness() { return harness_.get(); }
  FederationRuntime* runtime() { return runtime_.get(); }

  size_t Queue(const std::string& peer) {
    return server_->receipts()->ComputeDeliveryQueue(peer, {"FED"}).size();
  }

 private:
  CallbackInvoker invoker_;
  std::unique_ptr<ServerConfig> config_;
  std::unique_ptr<SocketTransport> transport_;
  std::unique_ptr<PartitionableTransport> harness_;
  std::unique_ptr<BistroServer> server_;
  std::unique_ptr<FederationRuntime> runtime_;
};

// ------------------------------------------------------------ the test

class PartitionE2ETest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    char dir_template[] = "/tmp/bistro_part_e2e_XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    root_ = dir_template;
    seed_ = SeedBase() + GetParam();
    rng_ = std::make_unique<Rng>(static_cast<uint64_t>(seed_) * 6271 + 29);
    clock_ = RealClock::Get();
    loop_ = std::make_unique<EventLoop>(clock_);
    logger_ = std::make_unique<Logger>(clock_);
    logger_->SetMinLevel(LogLevel::kAlarm);
  }

  void TearDown() override {
    (void)std::system(("rm -rf " + root_).c_str());
  }

  /// Deposits file #i upstream and records its expected payload.
  /// Returns the file name.
  std::string Deposit(Upstream* up, int i, size_t min_bytes = 64,
                      size_t spread = 2048) {
    std::string name = StrFormat("fed_%d_202608080%d%02d.dat", i,
                                 1 + i / 60, i % 60);
    std::string content =
        rng_->AlnumString(min_bytes + rng_->Uniform(spread));
    expected_[name] = content;
    EXPECT_TRUE(up->server()->Deposit("src", name, content).ok());
    return name;
  }

  /// Pumps real time until `pred()` holds or `patience` expires.
  bool PumpUntil(const std::function<bool()>& pred,
                 Duration patience = 60 * kSecond) {
    TimePoint deadline = clock_->Now() + patience;
    while (!pred() && clock_->Now() < deadline) {
      loop_->RunFor(10 * kMillisecond);
    }
    return pred();
  }

  /// Pumps real time for a fixed span.
  void Pump(Duration span) {
    TimePoint deadline = clock_->Now() + span;
    while (clock_->Now() < deadline) loop_->RunFor(10 * kMillisecond);
  }

  /// Post-mortem audit of one downstream's receipt DB: every ingested
  /// name unique, expected, payload intact. Returns the names seen.
  std::set<std::string> AuditExactlyOnce(Downstream* down) {
    LocalFileSystem fs;
    auto db = ReceiptDatabase::Open(&fs, down->root() + "/db");
    EXPECT_TRUE(db.ok()) << db.status();
    std::set<std::string> seen;
    if (!db.ok()) return seen;
    for (FileId id : (*db)->FilesInFeed("FED")) {
      auto receipt = (*db)->GetArrival(id);
      EXPECT_TRUE(receipt.ok()) << receipt.status();
      if (!receipt.ok()) continue;
      EXPECT_TRUE(seen.insert(receipt->name).second)
          << "name ingested twice: " << receipt->name << " (seed " << seed_
          << ")";
      auto it = expected_.find(receipt->name);
      EXPECT_NE(it, expected_.end())
          << "unexpected file: " << receipt->name << " (seed " << seed_
          << ")";
      if (it == expected_.end()) continue;
      auto staged = fs.ReadFile(receipt->staged_path);
      EXPECT_TRUE(staged.ok()) << receipt->staged_path << ": "
                               << staged.status();
      if (staged.ok()) {
        EXPECT_EQ(*staged, it->second) << receipt->name;
      }
    }
    EXPECT_EQ((*db)->ArrivalCount(), seen.size());
    return seen;
  }

  std::string root_;
  int seed_ = 0;
  std::unique_ptr<Rng> rng_;
  RealClock* clock_ = nullptr;
  LocalFileSystem fs_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Logger> logger_;
  std::map<std::string, std::string> expected_;
};

/// One tracked peer with fast health thresholds (tests only; production
/// defaults are in PeerHealthOptions).
constexpr char kTrackedPeer[] = R"(
peer down { address "127.0.0.1:1"; feeds FED;
            probe_interval 100ms; suspect_after 1; down_after 3; }
)";

// Cell A: a two-way partition lands mid-window and heals, armed from a
// parsed FaultPlan so the scenario is a seedable text artifact rather
// than ad-hoc test code. Reconnect attempts bounce off the severed shim
// until the heal; afterwards health recovers and every file converges.
TEST_P(PartitionE2ETest, TwoWayPartitionMidWindowThenHeal) {
  SCOPED_TRACE("seed " + std::to_string(seed_));
  Downstream down(loop_.get(), &fs_, logger_.get(), root_ + "/down");
  Upstream up(seed_, loop_.get(), &fs_, logger_.get(), root_, kTrackedPeer,
              {&down}, /*with_runtime=*/true);

  // First wave flows while the link is clean; pump until part of it is
  // acked so the partition lands mid-window, receipts on both sides.
  const int wave1 = 6 + static_cast<int>(rng_->Uniform(4));
  for (int i = 0; i < wave1; ++i) Deposit(&up, i);
  ASSERT_TRUE(PumpUntil([&] {
    return up.Queue("down") <= static_cast<size_t>(wave1) / 2;
  })) << "first wave never flowed";

  auto plan = ParseFaultPlan(R"(
fault_plan {
  net {
    partition "up" "down" at 0s;
    heal "up" "down" at 1200ms;
  }
}
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  up.harness()->Arm(*plan);

  // Second wave lands inside the outage.
  for (int i = wave1; i < wave1 + 6; ++i) Deposit(&up, i);
  Pump(600 * kMillisecond);
  // Mid-outage: reconnects bounce off the severed shim and the health
  // verdict has left healthy.
  EXPECT_GT(up.harness()->severed_rejects(), 0u);
  EXPECT_NE(up.runtime()->tracker()->Health("down"), PeerHealth::kHealthy);

  // After the armed heal: everything converges and health recovers.
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down") == 0; }))
      << "undelivered files after heal";
  ASSERT_TRUE(PumpUntil([&] {
    return up.runtime()->tracker()->Health("down") == PeerHealth::kHealthy;
  })) << "health never recovered after heal";
  EXPECT_TRUE(up.server()->delivery()->dead_letters().empty());
  EXPECT_GT(up.runtime()->tracker()->transitions(), 0u);

  down.CloseServer();
  EXPECT_EQ(AuditExactlyOnce(&down).size(), expected_.size());
}

// Cell B: a one-way blackhole eats acks while deliveries keep landing —
// the half-open failure mode only ack timeouts can see. Retries
// redeliver already-ingested files; the downstream's receipt dedupe
// absorbs every duplicate, and post-mortem the DB still shows each file
// exactly once.
TEST_P(PartitionE2ETest, OneWayBlackholeDropsAcksAndDedupeAbsorbs) {
  SCOPED_TRACE("seed " + std::to_string(seed_));
  Downstream down(loop_.get(), &fs_, logger_.get(), root_ + "/down");
  Upstream up(seed_, loop_.get(), &fs_, logger_.get(), root_, kTrackedPeer,
              {&down}, /*with_runtime=*/true);

  // Warm the connection with one clean file.
  Deposit(&up, 0);
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down") == 0; }));

  up.harness()->Blackhole("down", /*to_peer=*/false);  // acks vanish
  for (int i = 1; i <= 5; ++i) Deposit(&up, i);

  // Deliveries arrive and ingest while every ack dies on the wire — the
  // half-open shape: the downstream holds files the upstream cannot
  // prove delivered. (A frame still queued when the ack-timeout drops
  // the connection only crosses after the heal, so not every file need
  // land yet.) The timeouts walk the peer out of healthy and the open
  // circuit parks the retries.
  ASSERT_TRUE(PumpUntil(
      [&] {
        return up.transport()->ack_timeouts() > 0 &&
               down.inbound()->files_ingested() >= 2;
      },
      30 * kSecond))
      << "deliveries/timeouts never happened under the blackhole";
  EXPECT_GT(up.harness()->dropped_bytes(), 0u);
  EXPECT_NE(up.runtime()->tracker()->Health("down"), PeerHealth::kHealthy);

  up.harness()->Heal("down");
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down") == 0; }))
      << "undelivered files after heal";
  ASSERT_TRUE(PumpUntil([&] {
    return up.runtime()->tracker()->Health("down") == PeerHealth::kHealthy;
  }));
  // Earning the missing delivery receipts required redelivering files
  // the downstream already had: receipt dedupe absorbed every one.
  EXPECT_GE(down.inbound()->duplicates_absorbed(), 1u);
  EXPECT_TRUE(up.server()->delivery()->dead_letters().empty());

  down.CloseServer();
  EXPECT_EQ(AuditExactlyOnce(&down).size(), expected_.size());
}

// Cell C: a flapping link — repeated partition/heal cycles with traffic
// throughout. The health machine churns, reconnect and outage-duration
// stats accumulate, and the guarantee still converges.
TEST_P(PartitionE2ETest, FlappingLinkStillConvergesExactlyOnce) {
  SCOPED_TRACE("seed " + std::to_string(seed_));
  Downstream down(loop_.get(), &fs_, logger_.get(), root_ + "/down");
  Upstream up(seed_, loop_.get(), &fs_, logger_.get(), root_, kTrackedPeer,
              {&down}, /*with_runtime=*/true);

  int next = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    Deposit(&up, next++);
    Deposit(&up, next++);
    up.harness()->Partition("down");
    Pump((120 + rng_->Uniform(80)) * kMillisecond);
    up.harness()->Heal("down");
    Pump((120 + rng_->Uniform(80)) * kMillisecond);
  }

  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down") == 0; }))
      << "undelivered files after flapping stopped";
  ASSERT_TRUE(PumpUntil([&] {
    return up.runtime()->tracker()->Health("down") == PeerHealth::kHealthy;
  }));
  EXPECT_GE(up.runtime()->tracker()->transitions(), 2u);
  // The flaps are visible in the per-peer wire stats (satellite: the
  // `peers` admin table renders these same numbers).
  SocketTransport::PeerNetStats stats = up.transport()->GetPeerStats("down");
  EXPECT_TRUE(stats.known);
  EXPECT_GE(stats.reconnect_attempts, 1u);
  EXPECT_GT(stats.disconnected_total, 0);
  EXPECT_TRUE(up.server()->delivery()->dead_letters().empty());

  down.CloseServer();
  EXPECT_EQ(AuditExactlyOnce(&down).size(), expected_.size());
}

/// Primary with a configured standby replica. Fast thresholds so the
/// outage is detected in test time.
constexpr char kFailoverPeers[] = R"(
peer down1 { address "127.0.0.1:1"; feeds FED; failover down2;
             probe_interval 100ms; suspect_after 1; down_after 2; }
peer down2 { address "127.0.0.1:1"; }
)";

// Cell D: the primary is black-holed (TCP stays up, nothing arrives —
// the worst case for queue burn). The health machine must declare it
// down, open the circuit so sends fail fast instead of queueing toward
// the outbound byte cap, and re-route onto the standby replica; on heal
// the primary catches up and fresh traffic routes to it again.
TEST_P(PartitionE2ETest, FailoverToReplicaThenHealCatchesUp) {
  SCOPED_TRACE("seed " + std::to_string(seed_));
  Downstream d1(loop_.get(), &fs_, logger_.get(), root_ + "/down1");
  Downstream d2(loop_.get(), &fs_, logger_.get(), root_ + "/down2");
  Upstream up(seed_, loop_.get(), &fs_, logger_.get(), root_,
              kFailoverPeers, {&d1, &d2}, /*with_runtime=*/true);

  // Clean wave to the primary; the standby takes no feeds yet.
  const int wave1 = 5;
  for (int i = 0; i < wave1; ++i) Deposit(&up, i);
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down1") == 0; }))
      << "clean wave never reached the primary";

  // Black-hole the primary's inbound direction and push one canary: its
  // ack timeouts walk the peer to `down` and trip the failover.
  up.harness()->Blackhole("down1", /*to_peer=*/true);
  std::vector<std::string> wave2;
  wave2.push_back(Deposit(&up, wave1, 16 * 1024, 32 * 1024));
  ASSERT_TRUE(PumpUntil([&] { return up.runtime()->failovers() == 1; },
                        30 * kSecond))
      << "failover never activated";
  EXPECT_EQ(up.runtime()->tracker()->Health("down1"), PeerHealth::kDown);

  // Rest of the outage wave lands while failed over.
  for (int i = wave1 + 1; i < wave1 + 5; ++i) {
    wave2.push_back(Deposit(&up, i, 16 * 1024, 32 * 1024));
  }

  // Circuit open: the retry that hits the gate fails fast, and the
  // primary's outbound queue never fills toward the byte cap.
  ASSERT_TRUE(PumpUntil(
      [&] { return up.runtime()->tracker()->fast_fails() > 0; },
      15 * kSecond))
      << "no send ever failed fast on the open circuit";
  EXPECT_LT(up.transport()->GetPeerStats("down1").queued_bytes,
            size_t{1} << 20);

  // The replica (now holding the primary's feeds) receives everything.
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down2") == 0; }))
      << "replica never converged during the outage";

  up.harness()->Heal("down1");
  ASSERT_TRUE(PumpUntil([&] { return up.runtime()->failbacks() == 1; },
                        30 * kSecond))
      << "fail-back never happened after heal";
  ASSERT_TRUE(PumpUntil([&] {
    return up.runtime()->tracker()->Health("down1") == PeerHealth::kHealthy;
  }));

  // Catch-up: the recovered primary drains the files it missed.
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down1") == 0; }))
      << "primary never caught up after heal";

  // Fresh traffic routes to the recovered primary, not the replica.
  std::string post_heal = Deposit(&up, wave1 + 5);
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down1") == 0; }))
      << "post-heal file never reached the primary";
  Pump(200 * kMillisecond);  // give a mis-route time to show up
  EXPECT_TRUE(up.server()->delivery()->dead_letters().empty());

  d1.CloseServer();
  d2.CloseServer();
  std::set<std::string> s1 = AuditExactlyOnce(&d1);
  std::set<std::string> s2 = AuditExactlyOnce(&d2);
  // The primary ends with every file exactly once (outage files via
  // catch-up); the replica served during the outage — it holds the
  // failed-over wave, but never the post-heal file.
  EXPECT_EQ(s1.size(), expected_.size());
  EXPECT_FALSE(s2.empty());
  for (const std::string& name : wave2) {
    EXPECT_EQ(s2.count(name), 1u) << "replica missed " << name;
  }
  EXPECT_EQ(s2.count(post_heal), 0u)
      << "post-heal traffic leaked to the replica";
}

// Satellite: an ack timeout lands on an in-flight coalesced multi-file
// bundle. Every file in the bundle must be retried and land exactly
// once — none dropped, none double-committed.
TEST_P(PartitionE2ETest, AckTimeoutOnCoalescedBundleRetriesEveryFile) {
  SCOPED_TRACE("seed " + std::to_string(seed_));
  Downstream down(loop_.get(), &fs_, logger_.get(), root_ + "/down");
  Upstream up(seed_, loop_.get(), &fs_, logger_.get(), root_,
              R"(peer down { address "127.0.0.1:1"; feeds FED; })", {&down},
              /*with_runtime=*/false, [](BistroServer::Options* opts) {
                opts->delivery.coalesce_bytes = 64 * 1024;
                opts->delivery.window = 8;
                opts->delivery.retry_backoff = 250 * kMillisecond;
                // Keep the direct-retry path in play: never flag the
                // subscriber offline.
                opts->delivery.offline_after_failures = 1000000;
              });

  // Warm the connection, then eat acks only: the bundle will arrive and
  // ingest, but its acks die on the wire.
  Deposit(&up, 0, 64, 256);
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down") == 0; }));
  up.harness()->Blackhole("down", /*to_peer=*/false);

  // Park a batch behind a manual offline flag so it dispatches in one
  // round — the coalescible shape (same trick as the engine tests).
  const int kBatch = 6;
  up.server()->delivery()->SetOffline("down", true);
  for (int i = 1; i <= kBatch; ++i) Deposit(&up, i, 512, 4096);
  Pump(100 * kMillisecond);
  up.server()->delivery()->SetOffline("down", false);

  // Every file of the bundle arrives downstream; every ack is dropped.
  ASSERT_TRUE(PumpUntil(
      [&] {
        return down.inbound()->files_ingested() ==
                   static_cast<uint64_t>(kBatch) + 1 &&
               up.transport()->ack_timeouts() > 0;
      },
      30 * kSecond))
      << "bundle never fully arrived / never timed out";
  EXPECT_GT(up.server()->delivery_stats().coalesced_files, 0u);

  up.harness()->Heal("down");
  ASSERT_TRUE(PumpUntil([&] { return up.Queue("down") == 0; }))
      << "bundle files still undelivered after heal";
  EXPECT_TRUE(up.server()->delivery()->dead_letters().empty());

  // Each bundle file was ingested exactly once (the first arrival); the
  // post-heal retries that earned the acks were all absorbed as
  // duplicates.
  EXPECT_EQ(down.inbound()->files_ingested(),
            static_cast<uint64_t>(kBatch) + 1);
  EXPECT_GE(down.inbound()->duplicates_absorbed(),
            static_cast<uint64_t>(kBatch));

  down.CloseServer();
  EXPECT_EQ(AuditExactlyOnce(&down).size(), expected_.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionE2ETest, ::testing::Range(0, 3));

}  // namespace
}  // namespace bistro

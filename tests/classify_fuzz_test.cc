// Golden-equivalence fuzz suite for the compiled feed automaton: random
// feed tables, random names (conforming fills, near-miss mutations, and
// junk), asserting the automaton classifier produces byte-identical feed
// sets and extracted fields to the per-pattern linear classifier — plus a
// Classify-during-Rebuild race test meant to run under asan/tsan.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analyzer/tokenizer.h"
#include "classify/classifier.h"
#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"

namespace bistro {
namespace {

// One pattern token, kept alongside the spec text so the fuzzer can
// synthesize names that conform to (or nearly conform to) the pattern.
struct Tok {
  enum Kind {
    kLit,
    kStr,   // %s
    kInt,   // %i
    kY4,    // %Y
    kY2,    // %y
    kMon,   // %m
    kDay,   // %d
    kHour,  // %H
    kMin,   // %M
    kSec    // %S
  };
  Kind kind = kLit;
  std::string lit;  // name-side text for kLit ("%" for a %% escape)
};

struct GenPattern {
  std::string spec;
  std::vector<Tok> toks;
};

void Append(GenPattern* p, Tok::Kind kind, const std::string& lit = "") {
  static const char* kSpec[] = {"",   "%s", "%i", "%Y", "%y",
                                "%m", "%d", "%H", "%M", "%S"};
  if (kind == Tok::kLit) {
    for (char c : lit) p->spec += (c == '%') ? std::string("%%") : std::string(1, c);
  } else {
    p->spec += kSpec[kind];
  }
  p->toks.push_back({kind, lit});
}

// Literal separators start with '_' or '.' so a %s fill (pure letters)
// can never swallow them; that keeps conforming fills actually matching
// most of the time without biasing the equivalence check.
std::string RandomSeparator(Rng& rng) {
  std::string sep(1, rng.Bernoulli(0.5) ? '_' : '.');
  size_t tail = rng.Uniform(4);
  for (size_t i = 0; i < tail; ++i) {
    sep += static_cast<char>('a' + rng.Uniform(26));
  }
  if (rng.Bernoulli(0.05)) sep += '%';  // exercise %% literals
  return sep;
}

Tok::Kind RandomField(Rng& rng) {
  static const Tok::Kind kPool[] = {Tok::kStr, Tok::kStr, Tok::kInt,
                                    Tok::kInt, Tok::kY4,  Tok::kY2,
                                    Tok::kMon, Tok::kDay, Tok::kHour,
                                    Tok::kMin, Tok::kSec};
  return kPool[rng.Uniform(sizeof(kPool) / sizeof(kPool[0]))];
}

GenPattern MakePattern(Rng& rng) {
  GenPattern p;
  if (rng.Bernoulli(0.7)) {
    // Literal prefix; otherwise the pattern is prefixless (starts on a
    // variable field), the trie's worst case.
    std::string prefix;
    size_t n = 2 + rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) {
      prefix += static_cast<char>('a' + rng.Uniform(26));
    }
    Append(&p, Tok::kLit, prefix);
  }
  size_t fields = 1 + rng.Uniform(4);
  for (size_t i = 0; i < fields; ++i) {
    if (i > 0 || !p.toks.empty()) Append(&p, Tok::kLit, RandomSeparator(rng));
    Append(&p, RandomField(rng));
  }
  static const char* kExt[] = {".csv", ".log", ".dat", ".csv.gz", ".txt"};
  Append(&p, Tok::kLit, kExt[rng.Uniform(5)]);
  return p;
}

std::string TwoDigit(Rng& rng, int lo, int hi) {
  int v = lo + static_cast<int>(rng.Uniform(static_cast<uint64_t>(hi - lo + 1)));
  return StrFormat("%02d", v);
}

// A name that conforms to `p` token-for-token. Digit runs occasionally go
// long (>= 19 chars) to exercise the automaton's re-verification path.
std::string FillName(Rng& rng, const GenPattern& p) {
  std::string name;
  for (const Tok& t : p.toks) {
    switch (t.kind) {
      case Tok::kLit:
        name += t.lit;
        break;
      case Tok::kStr: {
        size_t n = 1 + rng.Uniform(8);
        for (size_t i = 0; i < n; ++i) {
          name += static_cast<char>('a' + rng.Uniform(26));
        }
        break;
      }
      case Tok::kInt: {
        size_t n = rng.Bernoulli(0.06) ? 19 + rng.Uniform(7) : 1 + rng.Uniform(6);
        bool lead_zero = n >= 19 && rng.Bernoulli(0.5);
        for (size_t i = 0; i < n; ++i) {
          name += lead_zero && i + 2 < n
                      ? '0'
                      : static_cast<char>('0' + rng.Uniform(10));
        }
        break;
      }
      case Tok::kY4:
        name += StrFormat("%04d", 1970 + static_cast<int>(rng.Uniform(80)));
        break;
      case Tok::kY2:
        name += TwoDigit(rng, 0, 99);
        break;
      case Tok::kMon:
        name += TwoDigit(rng, 1, 12);
        break;
      case Tok::kDay:
        name += TwoDigit(rng, 1, 31);
        break;
      case Tok::kHour:
        name += TwoDigit(rng, 0, 23);
        break;
      case Tok::kMin:
      case Tok::kSec:
        name += TwoDigit(rng, 0, 59);
        break;
    }
  }
  return name;
}

std::string Mutate(Rng& rng, std::string name) {
  static const char kBytes[] = "abcxyz0123456789_.%";
  if (name.empty()) return name;
  size_t pos = rng.Uniform(name.size());
  switch (rng.Uniform(3)) {
    case 0:  // replace
      name[pos] = kBytes[rng.Uniform(sizeof(kBytes) - 1)];
      break;
    case 1:  // insert
      name.insert(name.begin() + static_cast<ptrdiff_t>(pos),
                  kBytes[rng.Uniform(sizeof(kBytes) - 1)]);
      break;
    default:  // delete
      name.erase(name.begin() + static_cast<ptrdiff_t>(pos));
      break;
  }
  return name;
}

TEST(ClassifyFuzzTest, AutomatonMatchesPerPatternGoldenAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 7; ++seed) {
    SCOPED_TRACE(StrFormat("seed %llu", (unsigned long long)seed));
    Rng rng(seed);

    // Random feed table: primaries, occasional alternates, occasional
    // duplicated pattern (exact multi-feed overlap), plus a catch-all.
    std::vector<GenPattern> patterns;
    std::string config;
    size_t feeds = 6 + rng.Uniform(7);
    for (size_t f = 0; f < feeds; ++f) {
      GenPattern primary =
          (!patterns.empty() && rng.Bernoulli(0.15))
              ? patterns[rng.Uniform(patterns.size())]  // shared pattern
              : MakePattern(rng);
      config += StrFormat("feed F%zu {\n  pattern \"%s\";\n", f,
                          primary.spec.c_str());
      patterns.push_back(primary);
      size_t alts = rng.Uniform(3);
      for (size_t a = 0; a < alts; ++a) {
        GenPattern alt = MakePattern(rng);
        config += StrFormat("  pattern \"%s\";\n", alt.spec.c_str());
        patterns.push_back(alt);
      }
      config += "}\n";
    }
    if (rng.Bernoulli(0.5)) {
      config += "feed CATCHALL { pattern \"%s.csv\"; }\n";
      GenPattern catchall;
      Append(&catchall, Tok::kStr);
      Append(&catchall, Tok::kLit, ".csv");
      patterns.push_back(catchall);
    }

    auto parsed = ParseConfig(config);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << config;
    auto registry = FeedRegistry::Create(*parsed);
    ASSERT_TRUE(registry.ok()) << registry.status();

    FeedClassifier automaton((*registry).get(),
                             FeedClassifier::IndexMode::kAutomaton);
    FeedClassifier linear((*registry).get(),
                          FeedClassifier::IndexMode::kLinear);
    automaton.Rebuild();
    auto snapshot = automaton.automaton();
    ASSERT_NE(snapshot, nullptr);

    std::vector<std::string> names;
    for (int round = 0; round < 40; ++round) {
      const GenPattern& p = patterns[rng.Uniform(patterns.size())];
      std::string fill = FillName(rng, p);
      names.push_back(fill);
      names.push_back(Mutate(rng, fill));
      names.push_back(Mutate(rng, Mutate(rng, fill)));
      names.push_back(rng.AlnumString(rng.Uniform(32)));
    }

    std::vector<NameToken> fused_tokens;
    for (const std::string& name : names) {
      Classification ca = automaton.Classify(name);
      Classification cl = linear.Classify(name);
      ASSERT_EQ(ca.feeds, cl.feeds) << name;
      ASSERT_EQ(ca.primary_match.strings, cl.primary_match.strings) << name;
      ASSERT_EQ(ca.primary_match.ints, cl.primary_match.ints) << name;
      ASSERT_EQ(ca.primary_match.timestamp, cl.primary_match.timestamp)
          << name;

      // The fused scan's tokenization must agree with the analyzer's,
      // and its accept decision with the plain scan's.
      fused_tokens.clear();
      FeedAutomaton::ScanOutcome fused =
          snapshot->ScanAndTokenize(name, &fused_tokens);
      FeedAutomaton::ScanOutcome plain = snapshot->Scan(name);
      ASSERT_EQ(fused.accepts, plain.accepts) << name;
      ASSERT_EQ(fused.verify, plain.verify) << name;
      ASSERT_EQ(fused_tokens, TokenizeName(name)) << name;
    }
  }
}

TEST(ClassifyFuzzTest, SnapshotClassifyRacesWithRebuild) {
  auto parsed = ParseConfig(R"(
feed ALPHA { pattern "alpha_%i.log"; }
feed BETA  { pattern "beta_%s_%Y%m%d.csv"; }
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto registry = FeedRegistry::Create(*parsed);
  ASSERT_TRUE(registry.ok()) << registry.status();

  FeedClassifier classifier((*registry).get(),
                            FeedClassifier::IndexMode::kAutomaton);
  classifier.Rebuild();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&classifier, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        // BETA never changes: every snapshot must classify it.
        Classification beta = classifier.ClassifySnapshot("beta_x_20260808.csv");
        ASSERT_EQ(beta.feeds, std::vector<FeedName>{"BETA"});
        // ALPHA flips between two patterns: each snapshot matches
        // exactly one of the two spellings.
        Classification a1 = classifier.ClassifySnapshot("alpha_7.log");
        Classification a2 = classifier.ClassifySnapshot("gamma_7.log");
        ASSERT_LE(a1.feeds.size() + a2.feeds.size(), 2u);
        ASSERT_TRUE(classifier.ClassifySnapshot("junk").feeds.empty());
      }
    });
  }

  FeedSpec spec = (*registry)->FindFeed("ALPHA")->spec;
  for (int i = 0; i < 400; ++i) {
    spec.pattern = (i % 2 == 0) ? "gamma_%i.log" : "alpha_%i.log";
    ASSERT_TRUE((*registry)->UpdateFeed(spec).ok());
    classifier.Rebuild();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Final state: i=399 restored alpha.
  EXPECT_TRUE(classifier.ClassifySnapshot("alpha_9.log").matched());
  EXPECT_FALSE(classifier.ClassifySnapshot("gamma_9.log").matched());
}

}  // namespace
}  // namespace bistro

// Tests for the filesystem abstraction: path utils, the in-memory
// filesystem (with cost model), and the local POSIX filesystem.

#include <cstdlib>

#include <gtest/gtest.h>

#include "vfs/localfs.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- Paths

TEST(PathTest, Join) {
  EXPECT_EQ(path::Join("a", "b"), "a/b");
  EXPECT_EQ(path::Join("a/", "b"), "a/b");
  EXPECT_EQ(path::Join("a", "/b"), "a/b");
  EXPECT_EQ(path::Join("", "b"), "b");
  EXPECT_EQ(path::Join("a", ""), "a");
  EXPECT_EQ(path::Join("/root", "x/y"), "/root/x/y");
}

TEST(PathTest, BasenameDirname) {
  EXPECT_EQ(path::Basename("a/b/c.txt"), "c.txt");
  EXPECT_EQ(path::Basename("c.txt"), "c.txt");
  EXPECT_EQ(path::Dirname("a/b/c.txt"), "a/b");
  EXPECT_EQ(path::Dirname("c.txt"), "");
  EXPECT_EQ(path::Dirname("/c.txt"), "/");
}

TEST(PathTest, Normalize) {
  EXPECT_EQ(path::Normalize("a//b///c/"), "a/b/c");
  EXPECT_EQ(path::Normalize("/"), "/");
  EXPECT_EQ(path::Normalize("//x//"), "/x");
}

// ---------------------------------------------------------------- MemFs

TEST(MemFsTest, WriteReadRoundTrip) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/landing/a.csv", "hello").ok());
  auto data = fs.ReadFile("/landing/a.csv");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello");
}

TEST(MemFsTest, ReadMissingIsNotFound) {
  InMemoryFileSystem fs;
  EXPECT_TRUE(fs.ReadFile("/nope").status().IsNotFound());
  EXPECT_TRUE(fs.Stat("/nope").status().IsNotFound());
  EXPECT_TRUE(fs.Delete("/nope").IsNotFound());
}

TEST(MemFsTest, AppendAccumulates) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.AppendFile("/log", "a").ok());
  ASSERT_TRUE(fs.AppendFile("/log", "b").ok());
  EXPECT_EQ(*fs.ReadFile("/log"), "ab");
}

TEST(MemFsTest, ParentsCreatedImplicitly) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/a/b/c/d.txt", "x").ok());
  EXPECT_TRUE(fs.Exists("/a"));
  EXPECT_TRUE(fs.Exists("/a/b"));
  EXPECT_TRUE(fs.Exists("/a/b/c"));
  auto info = fs.Stat("/a/b");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->is_directory);
}

TEST(MemFsTest, ListDirImmediateChildrenOnly) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/d/one.txt", "1").ok());
  ASSERT_TRUE(fs.WriteFile("/d/two.txt", "22").ok());
  ASSERT_TRUE(fs.WriteFile("/d/sub/three.txt", "333").ok());
  auto listing = fs.ListDir("/d");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 3u);  // one.txt, sub/, two.txt
  EXPECT_EQ((*listing)[0].path, "/d/one.txt");
  EXPECT_TRUE((*listing)[1].is_directory);
  EXPECT_EQ((*listing)[1].path, "/d/sub");
  EXPECT_EQ((*listing)[2].size, 2u);
}

TEST(MemFsTest, ListRecursive) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/d/a.txt", "1").ok());
  ASSERT_TRUE(fs.WriteFile("/d/x/b.txt", "2").ok());
  ASSERT_TRUE(fs.WriteFile("/d/x/y/c.txt", "3").ok());
  auto files = fs.ListRecursive("/d");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 3u);
}

TEST(MemFsTest, RenameMovesAcrossDirs) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/landing/f.csv", "data").ok());
  ASSERT_TRUE(fs.Rename("/landing/f.csv", "/staging/feed/f.csv").ok());
  EXPECT_FALSE(fs.Exists("/landing/f.csv"));
  EXPECT_EQ(*fs.ReadFile("/staging/feed/f.csv"), "data");
  EXPECT_TRUE(fs.Rename("/landing/f.csv", "/x").IsNotFound());
}

TEST(MemFsTest, StatsCountOps) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/d/a", "xy").ok());
  (void)fs.ReadFile("/d/a");
  (void)fs.ListDir("/d");
  (void)fs.Stat("/d/a");
  ASSERT_TRUE(fs.Rename("/d/a", "/d/b").ok());
  ASSERT_TRUE(fs.Delete("/d/b").ok());
  FsOpStats s = fs.stats();
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.lists, 1u);
  EXPECT_EQ(s.list_entries, 1u);
  EXPECT_EQ(s.stats, 1u);
  EXPECT_EQ(s.renames, 1u);
  EXPECT_EQ(s.deletes, 1u);
  EXPECT_EQ(s.bytes_written, 2u);
  EXPECT_EQ(s.bytes_read, 2u);
  fs.ResetStats();
  EXPECT_EQ(fs.stats().writes, 0u);
}

TEST(MemFsTest, CostModelChargesSimClock) {
  SimClock clock(0);
  FsCostModel cost;
  cost.list_base = 1000;
  cost.list_per_entry = 10;
  InMemoryFileSystem fs(&clock, cost);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs.WriteFile("/d/f" + std::to_string(i), "x").ok());
  }
  TimePoint before = clock.Now();
  ASSERT_TRUE(fs.ListDir("/d").ok());
  EXPECT_EQ(clock.Now() - before, 1000 + 5 * 10);
}

TEST(MemFsTest, MetadataCostGrowsWithHistory) {
  // The E1 claim in miniature: listing cost is linear in directory size.
  SimClock clock(0);
  InMemoryFileSystem fs(&clock, FsCostModel::RemoteFileServer());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        fs.WriteFile("/hist/f" + std::to_string(i), "x").ok());
  }
  TimePoint t0 = clock.Now();
  ASSERT_TRUE(fs.ListDir("/hist").ok());
  Duration cost100 = clock.Now() - t0;
  for (int i = 100; i < 1000; ++i) {
    ASSERT_TRUE(
        fs.WriteFile("/hist/f" + std::to_string(i), "x").ok());
  }
  t0 = clock.Now();
  ASSERT_TRUE(fs.ListDir("/hist").ok());
  Duration cost1000 = clock.Now() - t0;
  EXPECT_GT(cost1000, 5 * cost100 / 2);
}

TEST(MemFsTest, TotalsTrackContents) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("/a", "12345").ok());
  ASSERT_TRUE(fs.WriteFile("/b", "678").ok());
  EXPECT_EQ(fs.TotalBytes(), 8u);
  EXPECT_EQ(fs.FileCount(), 2u);
}

TEST(MemFsTest, WriteOverDirectoryFails) {
  InMemoryFileSystem fs;
  ASSERT_TRUE(fs.MkDirs("/d/sub").ok());
  EXPECT_FALSE(fs.WriteFile("/d/sub", "x").ok());
  EXPECT_TRUE(fs.MkDirs("/d/sub").ok());  // idempotent
}

// ---------------------------------------------------------------- LocalFs

class LocalFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/bistro_vfs_test_XXXXXX";
    root_ = mkdtemp(tmpl);
    ASSERT_FALSE(root_.empty());
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + root_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  std::string root_;
  LocalFileSystem fs_;
};

TEST_F(LocalFsTest, WriteReadRoundTrip) {
  std::string p = path::Join(root_, "sub/dir/file.txt");
  ASSERT_TRUE(fs_.WriteFile(p, "payload").ok());
  auto data = fs_.ReadFile(p);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "payload");
  auto info = fs_.Stat(p);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 7u);
  EXPECT_FALSE(info->is_directory);
}

TEST_F(LocalFsTest, ListAndDelete) {
  ASSERT_TRUE(fs_.WriteFile(path::Join(root_, "d/a.txt"), "1").ok());
  ASSERT_TRUE(fs_.WriteFile(path::Join(root_, "d/b.txt"), "2").ok());
  auto listing = fs_.ListDir(path::Join(root_, "d"));
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);
  ASSERT_TRUE(fs_.Delete(path::Join(root_, "d/a.txt")).ok());
  listing = fs_.ListDir(path::Join(root_, "d"));
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
}

TEST_F(LocalFsTest, RenameCreatesDestinationDirs) {
  std::string from = path::Join(root_, "landing/f.csv");
  std::string to = path::Join(root_, "staging/deep/f.csv");
  ASSERT_TRUE(fs_.WriteFile(from, "data").ok());
  ASSERT_TRUE(fs_.Rename(from, to).ok());
  EXPECT_FALSE(fs_.Exists(from));
  EXPECT_EQ(*fs_.ReadFile(to), "data");
}

TEST_F(LocalFsTest, MissingPathsAreNotFound) {
  EXPECT_TRUE(fs_.ReadFile(path::Join(root_, "missing")).status().IsNotFound());
  EXPECT_TRUE(fs_.ListDir(path::Join(root_, "missing")).status().IsNotFound());
}

}  // namespace
}  // namespace bistro

// Focused tests for delivery-layer pieces not already covered by the
// server integration suite: the feed monitor, poller-fleet source model,
// archiver nodes and receipt-state disaster recovery.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/monitor.h"
#include "delivery/archiver.h"
#include "kv/receipts.h"
#include "pattern/pattern.h"
#include "sim/sources.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ---------------------------------------------------------------- Monitor

TEST(MonitorTest, LearnsPeriodAndFlagsStalls) {
  Logger logger;
  auto sink = std::make_shared<MemorySink>();
  logger.AddSink(sink);
  FeedMonitor monitor(&logger, /*stall_factor=*/3.0);
  TimePoint t = 0;
  for (int i = 0; i < 10; ++i) {
    monitor.OnArrival("SNMP.CPU", 100, t);
    t += 5 * kMinute;
  }
  FeedProgress p = monitor.Progress("SNMP.CPU");
  EXPECT_EQ(p.files, 10u);
  EXPECT_EQ(p.bytes, 1000u);
  EXPECT_NEAR(static_cast<double>(p.est_period), 5.0 * kMinute,
              0.01 * kMinute);
  EXPECT_FALSE(p.stalled);

  // Quiet for 2 periods: not yet stalled. 4 periods: alarm.
  EXPECT_TRUE(monitor.CheckStalls(t + 5 * kMinute).empty());
  auto stalled = monitor.CheckStalls(t + 15 * kMinute);
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], "SNMP.CPU");
  EXPECT_EQ(sink->CountAtLeast(LogLevel::kAlarm), 1u);
  // Alarm fires once per stall episode, not per check.
  EXPECT_TRUE(monitor.CheckStalls(t + 30 * kMinute).empty());
  EXPECT_EQ(sink->CountAtLeast(LogLevel::kAlarm), 1u);
}

TEST(MonitorTest, ResumeAfterStallClearsFlagAndLogs) {
  Logger logger;
  FeedMonitor monitor(&logger);
  TimePoint t = 0;
  for (int i = 0; i < 5; ++i) {
    monitor.OnArrival("F", 10, t);
    t += kMinute;
  }
  monitor.CheckStalls(t + 10 * kMinute);
  EXPECT_TRUE(monitor.Progress("F").stalled);
  monitor.OnArrival("F", 10, t + 11 * kMinute);
  EXPECT_FALSE(monitor.Progress("F").stalled);
}

TEST(MonitorTest, UnknownFeedHasEmptyProgress) {
  Logger logger;
  FeedMonitor monitor(&logger);
  FeedProgress p = monitor.Progress("NOPE");
  EXPECT_EQ(p.files, 0u);
  EXPECT_TRUE(monitor.AllProgress().empty());
}

TEST(MonitorTest, SingleArrivalNeverStalls) {
  // One file gives no period estimate; the monitor must not alarm.
  Logger logger;
  FeedMonitor monitor(&logger);
  monitor.OnArrival("F", 10, 0);
  EXPECT_TRUE(monitor.CheckStalls(100 * kDay).empty());
}

// ---------------------------------------------------------------- Sources

TEST(PollerFleetTest, GeneratesExpectedFilesAndNames) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(1);
  PollerFleet::Options opts;
  opts.metric = "CPU";
  opts.num_pollers = 3;
  opts.period = 5 * kMinute;
  opts.max_delay = 0;
  opts.file_size = 100;
  std::vector<std::pair<std::string, std::string>> deposits;
  PollerFleet fleet(&loop, &rng, opts,
                    [&](const std::string& source, const std::string& name,
                        std::string content) {
                      deposits.emplace_back(source, name);
                      EXPECT_EQ(content.size(), 100u);
                    });
  TimePoint start = FromCivil(CivilTime{2010, 9, 25, 4, 0, 0});
  fleet.ScheduleInterval(start, start + 15 * kMinute);
  loop.RunUntilIdle();
  ASSERT_EQ(deposits.size(), 9u);  // 3 pollers x 3 intervals
  EXPECT_EQ(fleet.files_generated(), 9u);
  EXPECT_EQ(deposits[0].second, "CPU_POLL1_201009250400.txt");
  EXPECT_EQ(fleet.FileName(2, start + 5 * kMinute), "CPU_POLL2_201009250405.txt");
}

TEST(PollerFleetTest, DropoutSkipsFiles) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(7);
  PollerFleet::Options opts;
  opts.num_pollers = 4;
  opts.period = kMinute;
  opts.dropout_prob = 0.5;
  int count = 0;
  PollerFleet fleet(&loop, &rng, opts,
                    [&](const std::string&, const std::string&, std::string) {
                      ++count;
                    });
  fleet.ScheduleInterval(0, 100 * kMinute);
  loop.RunUntilIdle();
  EXPECT_GT(fleet.files_dropped(), 100u);
  EXPECT_EQ(static_cast<uint64_t>(count), fleet.files_generated());
  EXPECT_NEAR(count, 200, 60);  // ~50% of 400
}

TEST(PollerFleetTest, FleetGrowth) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(3);
  PollerFleet::Options opts;
  opts.num_pollers = 2;
  opts.period = kMinute;
  opts.max_delay = 0;
  opts.growth_every = 5;
  PollerFleet fleet(&loop, &rng, opts,
                    [](const std::string&, const std::string&, std::string) {});
  fleet.ScheduleInterval(0, 20 * kMinute);
  loop.RunUntilIdle();
  // Grew at intervals 5, 10, 15.
  EXPECT_EQ(fleet.current_pollers(), 5);
  EXPECT_EQ(fleet.files_generated(), 2u * 5 + 3 * 5 + 4 * 5 + 5 * 5);
}

TEST(PollerFleetTest, PunctuationAfterEachInterval) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(3);
  PollerFleet::Options opts;
  opts.num_pollers = 2;
  opts.period = kMinute;
  opts.punctuate = true;
  std::vector<TimePoint> marks;
  PollerFleet fleet(&loop, &rng, opts,
                    [](const std::string&, const std::string&, std::string) {},
                    [&](TimePoint t) { marks.push_back(t); });
  fleet.ScheduleInterval(0, 3 * kMinute);
  loop.RunUntilIdle();
  EXPECT_EQ(marks, (std::vector<TimePoint>{0, kMinute, 2 * kMinute}));
}

TEST(CorpusGeneratorTest, TruthPatternsMatchGeneratedNames) {
  Rng rng(5);
  CorpusGenerator gen(&rng);
  std::vector<CorpusGenerator::FeedTemplate> templates(3);
  templates[0].metric = "AAA";
  templates[0].style = CorpusGenerator::FeedTemplate::Style::kWideStamp;
  templates[1].metric = "BBB";
  templates[1].style = CorpusGenerator::FeedTemplate::Style::kSplitStamp;
  templates[2].metric = "CCC";
  templates[2].style = CorpusGenerator::FeedTemplate::Style::kSeparatedDate;
  auto corpus = gen.Generate(templates, 0, FromCivil(CivilTime{2010, 1, 1}));
  std::vector<Pattern> truth;
  for (const auto& t : templates) {
    auto p = Pattern::Compile(CorpusGenerator::TruthPattern(t));
    ASSERT_TRUE(p.ok());
    truth.push_back(std::move(*p));
  }
  for (const auto& l : corpus) {
    ASSERT_GE(l.truth, 0);
    EXPECT_TRUE(truth[l.truth].Matches(l.obs.name)) << l.obs.name;
  }
}

// ---------------------------------------------------------------- Archiver

TEST(ArchiverTest, StoresFilesInDatedDirectories) {
  InMemoryFileSystem fs;
  ArchiverEndpoint archiver(&fs, "/archive");
  Message msg;
  msg.type = MessageType::kFileData;
  msg.name = "CPU_POLL1_201009250400.txt";
  msg.payload = "data";
  msg.data_time = FromCivil(CivilTime{2010, 9, 25, 4, 0, 0});
  ASSERT_TRUE(archiver.HandleMessage(msg).ok());
  EXPECT_EQ(*fs.ReadFile("/archive/2010/09/25/CPU_POLL1_201009250400.txt"),
            "data");
  EXPECT_EQ(archiver.files_archived(), 1u);
  EXPECT_EQ(archiver.bytes_archived(), 4u);
  // No data_time: flat storage.
  msg.data_time = 0;
  msg.name = "static.cfg";
  ASSERT_TRUE(archiver.HandleMessage(msg).ok());
  EXPECT_TRUE(fs.Exists("/archive/static.cfg"));
  // Non-file messages are ignored without error.
  Message hb;
  hb.type = MessageType::kHeartbeat;
  ASSERT_TRUE(archiver.HandleMessage(hb).ok());
  EXPECT_EQ(archiver.files_archived(), 2u);
}

TEST(ArchiverTest, ReceiptStateShipAndRestore) {
  InMemoryFileSystem fs;
  // Build a receipt database with some state.
  {
    auto db = ReceiptDatabase::Open(&fs, "/db");
    ASSERT_TRUE(db.ok());
    for (FileId id = 1; id <= 20; ++id) {
      ArrivalReceipt r;
      r.file_id = id;
      r.name = StrFormat("f%02llu.csv", (unsigned long long)id);
      r.feeds = {"F"};
      r.arrival_time = static_cast<TimePoint>(id);
      ASSERT_TRUE((*db)->RecordArrival(r).ok());
    }
    ASSERT_TRUE((*db)->RecordDelivery("sub", 1, 100).ok());
  }
  ArchiverEndpoint archiver(&fs, "/archive");
  auto shipped = ShipReceiptState(&fs, "/db", &archiver, "snap1");
  ASSERT_TRUE(shipped.ok());
  EXPECT_GT(*shipped, 0u);
  EXPECT_EQ(archiver.receipt_snapshots(), 1u);

  // Catastrophic loss of the server's database...
  InMemoryFileSystem fresh;
  ASSERT_TRUE(
      RestoreReceiptState(&fs, archiver, "snap1", &fresh, "/db").ok());
  auto db = ReceiptDatabase::Open(&fresh, "/db");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->ArrivalCount(), 20u);
  EXPECT_TRUE((*db)->Delivered("sub", 1));
  EXPECT_FALSE((*db)->Delivered("sub", 2));
  // The restored DB keeps working: delivery queues are computable.
  EXPECT_EQ((*db)->ComputeDeliveryQueue("sub", {"F"}).size(), 19u);
}

TEST(ArchiverTest, RestoreMissingSnapshotFails) {
  InMemoryFileSystem fs;
  ArchiverEndpoint archiver(&fs, "/archive");
  InMemoryFileSystem fresh;
  EXPECT_FALSE(
      RestoreReceiptState(&fs, archiver, "missing", &fresh, "/db").ok());
}

}  // namespace
}  // namespace bistro

// Tests for the fault-injection framework (src/fault/) and the hardening
// it drove into the rest of the system: WAL rollback of failed appends,
// crash-consistent sync_wal recovery, exponential retry backoff with a
// cap, dead-letter parking + redrive, end-to-end payload CRC NACKs, and
// endpoint-side redelivery dedupe.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/server.h"
#include "fault/faulty_transport.h"
#include "fault/faulty_vfs.h"
#include "fault/injector.h"
#include "fault/partition.h"
#include "fault/plan.h"
#include "net/socket_transport.h"
#include "kv/kvstore.h"
#include "kv/wal.h"
#include "sim/sources.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ------------------------------------------------------------ fault plan

constexpr char kFullPlan[] = R"(
fault_plan {
  seed 42;
  vfs {
    write_error 0.02; torn_write 0.01; sync_error 0.005;
    scope "/bistro/db";
  }
  net {
    send_failure 0.1; corrupt 0.03; ack_loss 0.01;
    flap "sub0" down 10m up 35m;
    degrade "sub1" 4.0;
  }
}
)";

TEST(FaultPlanTest, ParsesFullSyntax) {
  auto plan = ParseFaultPlan(kFullPlan);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_DOUBLE_EQ(plan->vfs.write_error_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan->vfs.torn_write_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan->vfs.sync_error_prob, 0.005);
  EXPECT_EQ(plan->vfs.scope, "/bistro/db");
  EXPECT_DOUBLE_EQ(plan->net.send_failure_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan->net.corrupt_prob, 0.03);
  EXPECT_DOUBLE_EQ(plan->net.ack_loss_prob, 0.01);
  ASSERT_EQ(plan->net.flaps.size(), 1u);
  EXPECT_EQ(plan->net.flaps[0].endpoint, "sub0");
  EXPECT_EQ(plan->net.flaps[0].down_at, 10 * kMinute);
  EXPECT_EQ(plan->net.flaps[0].up_at, 35 * kMinute);
  ASSERT_EQ(plan->net.degrades.size(), 1u);
  EXPECT_EQ(plan->net.degrades[0].endpoint, "sub1");
  EXPECT_DOUBLE_EQ(plan->net.degrades[0].factor, 4.0);
}

TEST(FaultPlanTest, FormatRoundTrips) {
  auto plan = ParseFaultPlan(kFullPlan);
  ASSERT_TRUE(plan.ok());
  std::string text = FormatFaultPlan(*plan);
  auto again = ParseFaultPlan(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  EXPECT_EQ(*again, *plan) << text;
}

TEST(FaultPlanTest, EmptyPlanIsValid) {
  auto plan = ParseFaultPlan("fault_plan { }");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(*plan, FaultPlan{});
}

TEST(FaultPlanTest, RejectsBadInput) {
  // Probability out of range.
  EXPECT_FALSE(
      ParseFaultPlan("fault_plan { vfs { write_error 1.5; } }").ok());
  // A flap that heals before it fails.
  EXPECT_FALSE(
      ParseFaultPlan(
          "fault_plan { net { flap \"s\" down 10m up 5m; } }")
          .ok());
  // Degradation below 1 would amplify the link.
  EXPECT_FALSE(
      ParseFaultPlan("fault_plan { net { degrade \"s\" 0.5; } }").ok());
  // Unknown attribute.
  EXPECT_FALSE(ParseFaultPlan("fault_plan { vfs { frobnicate 1; } }").ok());
}

constexpr char kLinkPlan[] = R"(
fault_plan {
  seed 7;
  net {
    slow_link "up" "down" 200ms at 0s;
    partition "up" "down" at 2s;
    blackhole "down" "up" at 2s;
    heal "up" "down" at 6s;
  }
}
)";

TEST(FaultPlanTest, ParsesLinkDirectives) {
  auto plan = ParseFaultPlan(kLinkPlan);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->net.link_faults.size(), 3u);
  EXPECT_EQ(plan->net.link_faults[0].kind, LinkFault::Kind::kSlowLink);
  EXPECT_EQ(plan->net.link_faults[0].from, "up");
  EXPECT_EQ(plan->net.link_faults[0].to, "down");
  EXPECT_EQ(plan->net.link_faults[0].delay, 200 * kMillisecond);
  EXPECT_EQ(plan->net.link_faults[0].at, 0);
  EXPECT_EQ(plan->net.link_faults[1].kind, LinkFault::Kind::kPartition);
  EXPECT_EQ(plan->net.link_faults[1].at, 2 * kSecond);
  EXPECT_EQ(plan->net.link_faults[2].kind, LinkFault::Kind::kBlackhole);
  EXPECT_EQ(plan->net.link_faults[2].from, "down");
  EXPECT_EQ(plan->net.link_faults[2].to, "up");
  ASSERT_EQ(plan->net.link_heals.size(), 1u);
  EXPECT_EQ(plan->net.link_heals[0].from, "up");
  EXPECT_EQ(plan->net.link_heals[0].to, "down");
  EXPECT_EQ(plan->net.link_heals[0].at, 6 * kSecond);
}

TEST(FaultPlanTest, LinkDirectivesRoundTrip) {
  auto plan = ParseFaultPlan(kLinkPlan);
  ASSERT_TRUE(plan.ok());
  std::string text = FormatFaultPlan(*plan);
  auto again = ParseFaultPlan(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  EXPECT_EQ(*again, *plan) << text;
}

TEST(FaultPlanTest, RejectsBadLinkDirectives) {
  // A link needs two distinct endpoints.
  EXPECT_FALSE(
      ParseFaultPlan("fault_plan { net { partition \"a\" \"a\" at 1s; } }")
          .ok());
  // slow_link must actually slow something down.
  EXPECT_FALSE(
      ParseFaultPlan("fault_plan { net { slow_link \"a\" \"b\" 0s at 1s; } }")
          .ok());
  // The schedule time is mandatory.
  EXPECT_FALSE(
      ParseFaultPlan("fault_plan { net { partition \"a\" \"b\"; } }").ok());
  EXPECT_FALSE(
      ParseFaultPlan("fault_plan { net { heal \"a\" \"b\"; } }").ok());
}

// ------------------------------------------------------------- injector

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  auto plan = ParseFaultPlan(
      "fault_plan { seed 7; vfs { write_error 0.3; } "
      "net { send_failure 0.4; } }");
  ASSERT_TRUE(plan.ok());
  FaultInjector a(*plan), b(*plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.InjectWriteError("/x"), b.InjectWriteError("/x"));
    EXPECT_EQ(a.InjectSendFailure("s"), b.InjectSendFailure("s"));
  }
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_GT(a.injected(), 0u);  // 200 draws at 0.3/0.4 must fire some
}

TEST(FaultInjectorTest, ScopeFiltersVfsDecisions) {
  auto plan = ParseFaultPlan(
      "fault_plan { vfs { write_error 1.0; torn_write 1.0; sync_error 1.0; "
      "scope \"/db\"; } }");
  ASSERT_TRUE(plan.ok());
  FaultInjector inj(*plan);
  EXPECT_FALSE(inj.InjectWriteError("/landing/file"));
  EXPECT_FALSE(inj.InjectTornWrite("/landing/file"));
  EXPECT_FALSE(inj.InjectSyncError("/landing/file"));
  EXPECT_EQ(inj.injected(), 0u);
  EXPECT_TRUE(inj.InjectWriteError("/db/wal.log"));
  EXPECT_EQ(inj.injected(), 1u);
}

TEST(FaultInjectorTest, CountersLandInSharedRegistry) {
  MetricsRegistry registry;
  auto plan =
      ParseFaultPlan("fault_plan { net { send_failure 1.0; corrupt 1.0; } }");
  ASSERT_TRUE(plan.ok());
  FaultInjector inj(*plan, &registry);
  EXPECT_TRUE(inj.InjectSendFailure("s"));
  EXPECT_TRUE(inj.InjectCorruption("s"));
  EXPECT_EQ(registry.GetCounter("bistro_fault_net_send_failures_total", "")
                ->value(),
            1u);
  EXPECT_EQ(
      registry.GetCounter("bistro_fault_net_corruptions_total", "")->value(),
      1u);
}

TEST(FaultInjectorTest, CorruptPayloadAlwaysChangesBytes) {
  FaultPlan plan;
  plan.seed = 3;
  FaultInjector inj(plan);
  for (int i = 0; i < 32; ++i) {
    std::string payload = "payload-" + std::to_string(i);
    std::string before = payload;
    inj.CorruptPayload(&payload);
    EXPECT_NE(payload, before);
    EXPECT_EQ(payload.size(), before.size());
  }
  std::string empty;
  inj.CorruptPayload(&empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectorTest, ArmSchedulesFlapsAndAppliesDegrades) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng net_rng(1);
  SimNetwork network(&net_rng);
  network.SetLink("sub0", LinkSpec::Fast());
  network.SetLink("sub1", LinkSpec::Fast());
  auto base_cost = network.TransferDuration("sub1", 1 << 20);
  ASSERT_TRUE(base_cost.ok());

  auto plan = ParseFaultPlan(
      "fault_plan { net { flap \"sub0\" down 10s up 20s; "
      "degrade \"sub1\" 4.0; } }");
  ASSERT_TRUE(plan.ok());
  FaultInjector inj(*plan);
  inj.Arm(&loop, &network);

  // Degradation applies immediately and slows the link down.
  auto slow_cost = network.TransferDuration("sub1", 1 << 20);
  ASSERT_TRUE(slow_cost.ok());
  EXPECT_GT(*slow_cost, *base_cost);

  EXPECT_TRUE(network.IsOnline("sub0"));
  loop.RunUntil(15 * kSecond);
  EXPECT_FALSE(network.IsOnline("sub0"));
  loop.RunUntil(25 * kSecond);
  EXPECT_TRUE(network.IsOnline("sub0"));
  EXPECT_GE(inj.injected(), 1u);  // the flap counted as an injected fault
}

// ----------------------------------------------------------- faulty vfs

FaultPlan PlanFromText(const std::string& text) {
  auto plan = ParseFaultPlan(text);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

TEST(FaultyVfsTest, CleanWriteErrorLeavesNothing) {
  InMemoryFileSystem base;
  FaultInjector inj(PlanFromText("fault_plan { vfs { write_error 1.0; } }"));
  FaultyFileSystem fs(&base, &inj);
  EXPECT_FALSE(fs.WriteFile("/f", "hello").ok());
  EXPECT_FALSE(base.Exists("/f"));
}

TEST(FaultyVfsTest, TornWriteLandsPrefixAndReportsError) {
  InMemoryFileSystem base;
  FaultInjector inj(PlanFromText("fault_plan { vfs { torn_write 1.0; } }"));
  FaultyFileSystem fs(&base, &inj);
  EXPECT_FALSE(fs.AppendFile("/f", "0123456789").ok());
  auto got = base.ReadFile("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->size(), 0u);
  EXPECT_LT(got->size(), 10u);
  EXPECT_EQ(*got, std::string("0123456789").substr(0, got->size()));
}

TEST(FaultyVfsTest, CrashDiscardsUnsyncedAppendedBytes) {
  InMemoryFileSystem base;
  FaultInjector inj(PlanFromText("fault_plan { }"));  // no faults: crash only
  FaultyFileSystem fs(&base, &inj);

  // Pre-existing bytes written before injection started count as durable.
  ASSERT_TRUE(fs.WriteFile("/log", "base|").ok());
  ASSERT_TRUE(fs.AppendFile("/log", "synced|").ok());
  ASSERT_TRUE(fs.Sync("/log").ok());
  ASSERT_TRUE(fs.AppendFile("/log", "volatile").ok());
  ASSERT_TRUE(fs.SimulateCrash().ok());

  auto got = fs.ReadFile("/log");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "base|synced|");
}

TEST(FaultyVfsTest, SyncErrorKeepsBytesVolatile) {
  InMemoryFileSystem base;
  FaultInjector inj(PlanFromText("fault_plan { vfs { sync_error 1.0; } }"));
  FaultyFileSystem fs(&base, &inj);
  ASSERT_TRUE(fs.AppendFile("/log", "tail").ok());
  EXPECT_FALSE(fs.Sync("/log").ok());
  ASSERT_TRUE(fs.SimulateCrash().ok());
  auto got = fs.ReadFile("/log");
  // The file was created by the append; the crash rolls it back to its
  // durable length, zero.
  if (got.ok()) EXPECT_EQ(*got, "");
}

// ------------------------------------------------- WAL under injection

TEST(WalFaultTest, SyncedAppendsSurviveCrashUnsyncedDoNot) {
  InMemoryFileSystem base;
  FaultInjector inj(PlanFromText("fault_plan { }"));
  FaultyFileSystem fs(&base, &inj);

  {
    WriteAheadLog wal(&fs, "/wal");
    wal.set_sync_on_append(true);
    ASSERT_TRUE(wal.Append("one").ok());
    ASSERT_TRUE(wal.Append("two").ok());
    wal.set_sync_on_append(false);
    ASSERT_TRUE(wal.Append("three").ok());  // buffered only
  }
  ASSERT_TRUE(fs.SimulateCrash().ok());

  WriteAheadLog wal(&fs, "/wal");
  std::vector<std::string> records;
  ASSERT_TRUE(
      wal.Replay([&](std::string_view r) { records.emplace_back(r); }).ok());
  EXPECT_EQ(records, (std::vector<std::string>{"one", "two"}));
}

TEST(WalFaultTest, FailedSyncRollsTheRecordBack) {
  InMemoryFileSystem base;
  FaultInjector inj(
      PlanFromText("fault_plan { vfs { sync_error 1.0; scope \"/wal\"; } }"));
  FaultyFileSystem fs(&base, &inj);

  WriteAheadLog wal(&fs, "/wal");
  wal.set_sync_on_append(true);
  EXPECT_FALSE(wal.Append("uncommitted").ok());
  // The record must not linger in the file: a later successful sync (or
  // the rollback write itself, which is durable) would otherwise make a
  // record the caller saw fail reappear at recovery.
  auto raw = base.ReadFile("/wal");
  if (raw.ok()) EXPECT_EQ(*raw, "");
  std::vector<std::string> records;
  WriteAheadLog reopened(&base, "/wal");
  ASSERT_TRUE(
      reopened.Replay([&](std::string_view r) { records.emplace_back(r); })
          .ok());
  EXPECT_TRUE(records.empty());
}

TEST(WalFaultTest, TornAppendNeverBecomesMidLogCorruption) {
  InMemoryFileSystem base;
  // First build a committed prefix with no faults.
  {
    WriteAheadLog wal(&base, "/wal");
    ASSERT_TRUE(wal.Append("alpha").ok());
  }
  // Now a torn append: the write fails and its rollback also runs under
  // injection (worst case).
  {
    FaultInjector inj(
        PlanFromText("fault_plan { vfs { torn_write 1.0; } }"));
    FaultyFileSystem fs(&base, &inj);
    WriteAheadLog wal(&fs, "/wal");
    EXPECT_FALSE(wal.Append("beta").ok());
  }
  // A subsequent clean append must land behind the committed prefix, not
  // behind torn garbage (which replay would flag as mid-log corruption).
  {
    WriteAheadLog wal(&base, "/wal");
    ASSERT_TRUE(wal.Append("gamma").ok());
  }
  WriteAheadLog wal(&base, "/wal");
  std::vector<std::string> records;
  ASSERT_TRUE(
      wal.Replay([&](std::string_view r) { records.emplace_back(r); }).ok());
  EXPECT_EQ(records, (std::vector<std::string>{"alpha", "gamma"}));
}

TEST(WalFaultTest, CorruptionBeforeTailIsAnError) {
  InMemoryFileSystem fs;
  {
    WriteAheadLog wal(&fs, "/wal");
    ASSERT_TRUE(wal.Append("record-one").ok());
    ASSERT_TRUE(wal.Append("record-two").ok());
    ASSERT_TRUE(wal.Append("record-three").ok());
  }
  // Flip a payload byte in the middle record: not a torn tail, so replay
  // must report corruption rather than silently truncate.
  auto raw = fs.ReadFile("/wal");
  ASSERT_TRUE(raw.ok());
  std::string bytes = *raw;
  size_t frame = 4 + 1 + 10;  // crc + 1-byte varint + "record-one"
  bytes[frame + 4 + 1 + 2] ^= 0x01;
  ASSERT_TRUE(fs.WriteFile("/wal", bytes).ok());

  WriteAheadLog wal(&fs, "/wal");
  Status s = wal.Replay([](std::string_view) {});
  EXPECT_TRUE(s.IsCorruption()) << s;
}

TEST(KvStoreFaultTest, AppendAfterTornTailRecoversCleanly) {
  InMemoryFileSystem fs;
  {
    auto kv = KvStore::Open(&fs, "/db");
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("a", "1").ok());
  }
  // Simulate a crash mid-append: garbage bytes at the WAL tail.
  auto raw = fs.ReadFile("/db/wal.log");
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(fs.WriteFile("/db/wal.log", *raw + "\x7F\x01torn").ok());
  {
    auto kv = KvStore::Open(&fs, "/db");
    ASSERT_TRUE(kv.ok());
    EXPECT_TRUE((*kv)->recovered_torn_tail());
    // Regression: this append used to land *behind* the torn bytes, which
    // the next recovery then reported as mid-log corruption.
    ASSERT_TRUE((*kv)->Put("b", "2").ok());
  }
  auto kv = KvStore::Open(&fs, "/db");
  ASSERT_TRUE(kv.ok()) << kv.status();
  EXPECT_EQ(*(*kv)->Get("a"), "1");
  EXPECT_EQ(*(*kv)->Get("b"), "2");
}

TEST(KvStoreFaultTest, SyncWalSurvivesCrash) {
  InMemoryFileSystem base;
  FaultInjector inj(PlanFromText("fault_plan { }"));
  FaultyFileSystem fs(&base, &inj);
  {
    KvStore::Options options;
    options.sync_wal = true;
    auto kv = KvStore::Open(&fs, "/db", options);
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("durable", "yes").ok());
  }
  ASSERT_TRUE(fs.SimulateCrash().ok());
  auto kv = KvStore::Open(&base, "/db");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(*(*kv)->Get("durable"), "yes");
}

// ----------------------------------------------- endpoint CRC + dedupe

Message FileDataMessage(FileId id, const std::string& payload) {
  Message msg;
  msg.type = MessageType::kFileData;
  msg.file_id = id;
  msg.feed = "F";
  msg.name = "f.dat";
  msg.dest_path = "F/f.dat";
  msg.payload = payload;
  msg.payload_crc = Crc32(payload);
  return msg;
}

TEST(FileSinkEndpointTest, RejectsPayloadCrcMismatch) {
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/r");
  Message msg = FileDataMessage(1, "payload");
  msg.payload.mutable_str()[0] ^= 0x5A;  // corrupt after the CRC was computed
  Status s = sink.HandleMessage(msg);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_EQ(sink.corrupt_rejected(), 1u);
  EXPECT_EQ(sink.files_received(), 0u);
  EXPECT_FALSE(fs.Exists("/r/F/f.dat"));
}

TEST(FileSinkEndpointTest, DedupesRedeliveryByFileId) {
  InMemoryFileSystem fs;
  FileSinkEndpoint sink(&fs, "/r");
  Message msg = FileDataMessage(7, "payload");
  ASSERT_TRUE(sink.HandleMessage(msg).ok());
  ASSERT_TRUE(sink.HandleMessage(msg).ok());  // lost-ack redelivery: acked
  EXPECT_EQ(sink.files_received(), 1u);
  EXPECT_EQ(sink.duplicates(), 1u);
  EXPECT_EQ(*fs.ReadFile("/r/F/f.dat"), "payload");
}

// ------------------------------------------------- faulty transport

struct TransportRig {
  SimClock clock{0};
  EventLoop loop{&clock};
  LoopbackTransport base{&loop};
  InMemoryFileSystem sink_fs;
  FileSinkEndpoint sink{&sink_fs, "/r"};

  TransportRig() { base.Register("s", &sink); }
};

TEST(FaultyTransportTest, SendFailureNeverReachesTheWire) {
  TransportRig rig;
  FaultInjector inj(
      PlanFromText("fault_plan { net { send_failure 1.0; } }"));
  FaultyTransport transport(&rig.base, &rig.loop, &inj);
  Status result = Status::OK();
  transport.Send("s", FileDataMessage(1, "x"),
                 [&](const Status& s) { result = s; });
  rig.loop.RunUntil(kSecond);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(rig.sink.files_received(), 0u);
}

TEST(FaultyTransportTest, CorruptionIsCaughtByPayloadCrcOnly) {
  TransportRig rig;
  FaultInjector inj(PlanFromText("fault_plan { net { corrupt 1.0; } }"));
  FaultyTransport transport(&rig.base, &rig.loop, &inj);
  Status result = Status::OK();
  transport.Send("s", FileDataMessage(1, "payload"),
                 [&](const Status& s) { result = s; });
  rig.loop.RunUntil(kSecond);
  // The frame CRC is recomputed on encode, so the wire frame is valid and
  // only the endpoint's end-to-end check can NACK it.
  EXPECT_TRUE(result.IsCorruption()) << result;
  EXPECT_EQ(rig.sink.corrupt_rejected(), 1u);
  EXPECT_EQ(rig.sink.files_received(), 0u);
}

TEST(FaultyTransportTest, AckLossDeliversButReportsFailure) {
  TransportRig rig;
  FaultInjector inj(PlanFromText("fault_plan { net { ack_loss 1.0; } }"));
  FaultyTransport transport(&rig.base, &rig.loop, &inj);
  Status result = Status::OK();
  transport.Send("s", FileDataMessage(1, "payload"),
                 [&](const Status& s) { result = s; });
  rig.loop.RunUntil(kSecond);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(rig.sink.files_received(), 1u);  // it DID land
  // A retry of the same file is absorbed by the dedupe set.
  transport.Send("s", FileDataMessage(1, "payload"), [](const Status&) {});
  rig.loop.RunUntil(2 * kSecond);
  EXPECT_EQ(rig.sink.files_received(), 1u);
  EXPECT_EQ(rig.sink.duplicates(), 1u);
}

// --------------------------------------------- engine: backoff schedule

struct EngineRig {
  SimClock clock{FromCivil(CivilTime{2010, 9, 25})};
  EventLoop loop{&clock};
  InMemoryFileSystem fs;
  LoopbackTransport transport{&loop};
  RecordingInvoker invoker;
  Logger logger{&clock};
  std::unique_ptr<BistroServer> server;

  explicit EngineRig(BistroServer::Options options) {
    logger.SetMinLevel(LogLevel::kAlarm);
    auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method push; }
)");
    EXPECT_TRUE(config.ok()) << config.status();
    auto s = BistroServer::Create(options, *config, &fs, &transport, &loop,
                                  &invoker, &logger);
    EXPECT_TRUE(s.ok()) << s.status();
    server = std::move(*s);
  }
};

TEST(BackoffTest, ExponentialScheduleGrowsToCapWithoutJitter) {
  BistroServer::Options opts;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_backoff_max = 10 * kSecond;
  opts.delivery.retry_backoff_multiplier = 3.0;
  opts.delivery.retry_jitter = false;
  opts.delivery.max_attempts = 5;
  opts.delivery.offline_after_failures = 100;
  EngineRig rig(opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  sink.SetFailing(true);
  rig.transport.Register("s", &sink);

  TimePoint t0 = rig.clock.Now();
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());

  // Attempts at t0, +1s, +4s (1+3), +13s (+9), +23s (+10, capped).
  rig.loop.RunUntil(t0 + kSecond / 2);
  EXPECT_EQ(rig.server->delivery_stats().send_failures, 1u);
  rig.loop.RunUntil(t0 + 2 * kSecond);
  EXPECT_EQ(rig.server->delivery_stats().send_failures, 2u);
  rig.loop.RunUntil(t0 + 5 * kSecond);
  EXPECT_EQ(rig.server->delivery_stats().send_failures, 3u);
  rig.loop.RunUntil(t0 + 14 * kSecond);
  EXPECT_EQ(rig.server->delivery_stats().send_failures, 4u);
  rig.loop.RunUntil(t0 + 30 * kSecond);
  const DeliveryStats d = rig.server->delivery_stats();
  EXPECT_EQ(d.send_failures, 5u);
  EXPECT_EQ(d.retries, 4u);
  EXPECT_EQ(d.dead_lettered, 1u);
}

TEST(BackoffTest, JitteredRetriesStayWithinEnvelope) {
  BistroServer::Options opts;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_backoff_max = 8 * kSecond;
  opts.delivery.retry_backoff_multiplier = 2.0;
  opts.delivery.retry_jitter = true;
  opts.delivery.max_attempts = 6;
  opts.delivery.offline_after_failures = 100;
  EngineRig rig(opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  sink.SetFailing(true);
  rig.transport.Register("s", &sink);

  TimePoint t0 = rig.clock.Now();
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  // Worst case: first retry at +1s, then 5 sleeps of at most the 8s cap.
  rig.loop.RunUntil(t0 + kMinute);
  const DeliveryStats d = rig.server->delivery_stats();
  EXPECT_EQ(d.send_failures, 6u);
  EXPECT_EQ(d.dead_lettered, 1u);
}

TEST(DeadLetterTest, RedriveResubmitsWithFreshBudget) {
  BistroServer::Options opts;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_jitter = false;
  opts.delivery.max_attempts = 2;
  opts.delivery.offline_after_failures = 100;
  EngineRig rig(opts);
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  sink.SetFailing(true);
  rig.transport.Register("s", &sink);
  ASSERT_TRUE(
      rig.server->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  ASSERT_EQ(rig.server->delivery()->dead_letters().size(), 1u);
  EXPECT_EQ(rig.server->delivery_stats().dead_lettered, 1u);
  EXPECT_EQ(sink.files_received(), 0u);

  // Operator fixes the subscriber and redrives.
  sink.SetFailing(false);
  rig.server->delivery()->RedriveDeadLetters();
  rig.loop.RunUntil(rig.clock.Now() + kMinute);
  EXPECT_TRUE(rig.server->delivery()->dead_letters().empty());
  EXPECT_EQ(sink.files_received(), 1u);
  EXPECT_TRUE(rig.server->receipts()->Delivered("s", 1));
}

// --------------------------------------- Torn delivery-receipt groups

TEST(ReceiptFaultTest, TornDeliveryGroupVanishesWholeAndRecomputesQueue) {
  InMemoryFileSystem base;
  KvStore::Options kv_opts;
  kv_opts.sync_wal = true;
  // Durable history, no injection: three arrivals, file 1 delivered.
  {
    auto db = ReceiptDatabase::Open(&base, "/db", kv_opts);
    ASSERT_TRUE(db.ok());
    std::vector<ArrivalReceipt> group;
    for (int i = 1; i <= 3; ++i) {
      ArrivalReceipt r;
      r.name = StrFormat("f%d.csv", i);
      r.staged_path = "/staging/F/" + r.name;
      r.rel_path = "F/" + r.name;
      r.size = 3;
      r.arrival_time = 10 + i;
      r.feeds = {"F"};
      group.push_back(std::move(r));
    }
    ASSERT_TRUE((*db)->RecordArrivalGroup(&group).ok());
    ASSERT_TRUE((*db)->RecordDelivery("s", 1, 20).ok());
  }
  // A delivery group commit tears mid-append, then the machine dies.
  {
    FaultInjector inj(PlanFromText(
        "fault_plan { vfs { torn_write 1.0; scope \"/db\"; } }"));
    FaultyFileSystem fs(&base, &inj);
    auto db = ReceiptDatabase::Open(&fs, "/db", kv_opts);
    ASSERT_TRUE(db.ok());
    std::vector<ReceiptDatabase::DeliveryRecord> deliveries = {{"s", 2, 30},
                                                               {"s", 3, 31}};
    EXPECT_FALSE((*db)->RecordDeliveryGroup(deliveries).ok());
    // The failed group must not be visible even before the crash: the
    // in-memory table only applies after the WAL append succeeds.
    EXPECT_FALSE((*db)->Delivered("s", 2));
    ASSERT_TRUE(fs.SimulateCrash().ok());
  }
  // Recovery: the committed history is intact, the torn group is wholly
  // absent (no mid-log corruption), and queue recomputation re-offers
  // exactly the receipts the group lost — the redelivery that the
  // subscriber-side FileId dedupe then absorbs.
  auto db = ReceiptDatabase::Open(&base, "/db", kv_opts);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->ArrivalCount(), 3u);
  EXPECT_TRUE((*db)->Delivered("s", 1));
  EXPECT_FALSE((*db)->Delivered("s", 2));
  EXPECT_FALSE((*db)->Delivered("s", 3));
  auto queue = (*db)->ComputeDeliveryQueue("s", {"F"});
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].file_id, 2u);
  EXPECT_EQ(queue[1].file_id, 3u);
  // The database still accepts group commits after recovery.
  ASSERT_TRUE(
      (*db)->RecordDeliveryGroup({{"s", 2, 40}, {"s", 3, 41}}).ok());
  EXPECT_TRUE((*db)->ComputeDeliveryQueue("s", {"F"}).empty());
}

// A transport that corrupts the first kFileData payload, then behaves:
// proves the full NACK -> retry -> success path through the engine.
class CorruptOnceTransport : public Transport {
 public:
  explicit CorruptOnceTransport(Transport* base) : base_(base) {}

  void Send(const std::string& endpoint, const Message& msg,
            SendCallback done) override {
    if (!corrupted_ && msg.type == MessageType::kFileData &&
        !msg.payload.empty()) {
      corrupted_ = true;
      Message mangled = msg;
      mangled.payload.mutable_str()[0] =
          static_cast<char>(mangled.payload[0] ^ 0x5A);
      base_->Send(endpoint, mangled, std::move(done));
      return;
    }
    base_->Send(endpoint, msg, std::move(done));
  }
  Duration EstimateCost(const std::string& endpoint,
                        uint64_t bytes) const override {
    return base_->EstimateCost(endpoint, bytes);
  }

 private:
  Transport* base_;
  bool corrupted_ = false;
};

TEST(EndToEndCrcTest, CorruptDeliveryNacksAndRetrySucceeds) {
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport base(&loop);
  CorruptOnceTransport transport(&base);
  RecordingInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method push; }
)");
  ASSERT_TRUE(config.ok());
  BistroServer::Options opts;
  opts.delivery.retry_backoff = kSecond;
  opts.delivery.retry_jitter = false;
  opts.delivery.offline_after_failures = 100;
  auto server = BistroServer::Create(opts, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  ASSERT_TRUE(server.ok());
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  base.Register("s", &sink);

  ASSERT_TRUE(
      (*server)->Deposit("p", "CPU_POLL1_201009250400.txt", "bytes").ok());
  loop.RunUntil(clock.Now() + kMinute);

  EXPECT_EQ(sink.corrupt_rejected(), 1u);     // first attempt NACKed
  EXPECT_EQ(sink.files_received(), 1u);       // retry landed the real bytes
  EXPECT_EQ(*sub_fs.ReadFile("/r/CPU/CPU_POLL1_201009250400.txt"), "bytes");
  const DeliveryStats d = (*server)->delivery_stats();
  EXPECT_EQ(d.send_failures, 1u);
  EXPECT_EQ(d.retries, 1u);
  EXPECT_EQ(d.files_delivered, 1u);
}

TEST(ConfigWiringTest, DeliveryBlockTunesTheEngine) {
  // The config file's delivery block must override the compiled defaults:
  // max_attempts 2 + failing sink => dead letter after exactly 2 sends.
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  RecordingInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method push; }
delivery {
  retry_backoff_min 1s; retry_jitter off; max_attempts 2; offline_after 100;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  ASSERT_TRUE(server.ok()) << server.status();
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  sink.SetFailing(true);
  transport.Register("s", &sink);
  ASSERT_TRUE(
      (*server)->Deposit("p", "CPU_POLL1_201009250400.txt", "x").ok());
  loop.RunUntil(clock.Now() + kMinute);
  const DeliveryStats d = (*server)->delivery_stats();
  EXPECT_EQ(d.send_failures, 2u);
  EXPECT_EQ(d.dead_lettered, 1u);
}

TEST(ConfigWiringTest, DeliveryFastPathKeysTuneTheEngine) {
  // window / coalesce_bytes / cache_bytes / receipt_group from the config
  // file must reach the engine: with all of them set, a 3-file backfill
  // round coalesces into one frame, receipts ride one group commit, and
  // the zero cache budget forces a fresh staging read per dispatch.
  SimClock clock(FromCivil(CivilTime{2010, 9, 25}));
  EventLoop loop(&clock);
  InMemoryFileSystem fs;
  LoopbackTransport transport(&loop);
  RecordingInvoker invoker;
  Logger logger(&clock);
  logger.SetMinLevel(LogLevel::kAlarm);
  auto config = ParseConfig(R"(
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
subscriber s { feeds CPU; method push; }
delivery {
  window 8; coalesce_bytes 4096; cache_bytes 0;
  receipt_group 16; receipt_flush_interval 50ms;
}
)");
  ASSERT_TRUE(config.ok()) << config.status();
  auto server = BistroServer::Create(BistroServer::Options(), *config, &fs,
                                     &transport, &loop, &invoker, &logger);
  ASSERT_TRUE(server.ok()) << server.status();
  InMemoryFileSystem sub_fs;
  FileSinkEndpoint sink(&sub_fs, "/r");
  transport.Register("s", &sink);
  (*server)->delivery()->SetOffline("s", true);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE((*server)
                    ->Deposit("p",
                              StrFormat("CPU_POLL%d_201009250400.txt", i), "x")
                    .ok());
  }
  loop.RunUntil(clock.Now() + kSecond);
  (*server)->delivery()->SetOffline("s", false);
  loop.RunUntil(clock.Now() + kMinute);
  const DeliveryStats d = (*server)->delivery_stats();
  EXPECT_EQ(d.files_delivered, 3u);
  EXPECT_EQ(d.coalesced_frames, 1u);
  EXPECT_EQ(d.coalesced_files, 3u);
  EXPECT_EQ(d.receipt_group_flushes, 1u);
  EXPECT_EQ(d.staging_cache_hits, 0u);  // cache_bytes 0: no retention
  EXPECT_EQ(d.staging_reads, 3u);
  EXPECT_EQ(sink.files_received(), 3u);
  EXPECT_EQ(sink.duplicates(), 0u);
}

// ------------------------------------------------ source-side metrics

TEST(SourceMetricsTest, FleetCountersExportThroughRegistry) {
  SimClock clock(0);
  EventLoop loop(&clock);
  Rng rng(11);
  MetricsRegistry registry;
  PollerFleet::Options options;
  options.num_pollers = 4;
  options.period = kMinute;
  options.dropout_prob = 0.4;
  options.late_prob = 0.3;
  options.max_delay = kSecond;
  uint64_t deposits = 0;
  PollerFleet fleet(
      &loop, &rng, options,
      [&](const std::string&, const std::string&, std::string) {
        ++deposits;
      });
  fleet.AttachMetrics(&registry);
  fleet.ScheduleInterval(0, 30 * kMinute);
  loop.RunUntil(kHour);

  EXPECT_EQ(
      registry.GetCounter("bistro_source_files_generated_total", "")->value(),
      fleet.files_generated());
  EXPECT_EQ(
      registry.GetCounter("bistro_source_files_dropped_total", "")->value(),
      fleet.files_dropped());
  EXPECT_EQ(registry.GetCounter("bistro_source_files_late_total", "")->value(),
            fleet.files_late());
  EXPECT_EQ(registry.GetGauge("bistro_source_pollers", "")->value(),
            fleet.current_pollers());
  EXPECT_GT(fleet.files_dropped(), 0u);  // 0.4 dropout over 120 slots
  EXPECT_EQ(deposits, fleet.files_generated());
}

// ------------------------------------------- partition chaos harness

// Endpoint recording inbound messages (server side of a shimmed link).
class SinkEndpoint : public Endpoint {
 public:
  Status HandleMessage(const Message& msg) override {
    messages.push_back(msg);
    return Status::OK();
  }
  std::vector<Message> messages;
};

// Runs the real-clock loop in slices until `pred` holds (or 10s).
void PumpRealUntil(EventLoop* loop, const std::function<bool()>& pred) {
  TimePoint deadline = RealClock::Get()->Now() + 10 * kSecond;
  while (!pred() && RealClock::Get()->Now() < deadline) {
    loop->RunFor(10 * kMillisecond);
  }
}

// One upstream transport wired to one downstream through a shim; the test
// fixture for every harness behavior below.
struct ShimmedPair {
  explicit ShimmedPair(EventLoop* loop)
      : server_opts(MakeServerOpts()),
        server(loop, server_opts),
        client_opts(MakeClientOpts()),
        client(loop, client_opts),
        harness(loop, &client, "up") {
    server.SetInboundEndpoint(&inbound);
    EXPECT_TRUE(server.Listen().ok());
    EXPECT_TRUE(harness
                    .AddPeer("down", "127.0.0.1:" +
                                         std::to_string(server.listen_port()))
                    .ok());
  }

  static SocketTransport::Options MakeServerOpts() {
    SocketTransport::Options o;
    o.listen_address = "127.0.0.1:0";
    return o;
  }
  static SocketTransport::Options MakeClientOpts() {
    SocketTransport::Options o;
    o.reconnect_backoff_min = 10 * kMillisecond;
    o.reconnect_backoff_max = 30 * kMillisecond;
    o.ack_timeout = 300 * kMillisecond;
    return o;
  }

  // Sends one small file and returns its final status.
  Status SendOne(EventLoop* loop, const std::string& name) {
    Message msg;
    msg.type = MessageType::kFileData;
    msg.name = name;
    msg.payload = "payload";
    Status result = Status::TimedOut("no callback");
    bool done = false;
    harness.Send("down", msg, [&](const Status& s) {
      result = s;
      done = true;
    });
    PumpRealUntil(loop, [&] { return done; });
    return result;
  }

  SocketTransport::Options server_opts;
  SocketTransport server;
  SinkEndpoint inbound;
  SocketTransport::Options client_opts;
  SocketTransport client;
  PartitionableTransport harness;
};

TEST(PartitionableTransportTest, RelaysTransparently) {
  EventLoop loop(RealClock::Get());
  ShimmedPair pair(&loop);
  // The inner transport talks to the shim, not the real address.
  EXPECT_NE(pair.harness.ShimAddress("down"), "");
  EXPECT_NE(pair.harness.ShimAddress("down"),
            "127.0.0.1:" + std::to_string(pair.server.listen_port()));
  Status s = pair.SendOne(&loop, "clean.dat");
  EXPECT_TRUE(s.ok()) << s;
  ASSERT_EQ(pair.inbound.messages.size(), 1u);
  EXPECT_EQ(pair.inbound.messages[0].name, "clean.dat");
  EXPECT_GE(pair.harness.relay_count(), 1u);
}

TEST(PartitionableTransportTest, PartitionSeversAndHealRestores) {
  EventLoop loop(RealClock::Get());
  ShimmedPair pair(&loop);
  ASSERT_TRUE(pair.SendOne(&loop, "before.dat").ok());

  pair.harness.Partition("down");
  Status severed = pair.SendOne(&loop, "during.dat");
  EXPECT_TRUE(severed.IsUnavailable()) << severed;
  EXPECT_EQ(pair.inbound.messages.size(), 1u);  // never crossed the wire
  // Reconnect attempts during the partition are accepted-then-closed.
  PumpRealUntil(&loop, [&] { return pair.harness.severed_rejects() > 0; });
  EXPECT_GT(pair.harness.severed_rejects(), 0u);

  pair.harness.Heal("down");
  Status healed = pair.SendOne(&loop, "after.dat");
  EXPECT_TRUE(healed.ok()) << healed;
  EXPECT_EQ(pair.inbound.messages.back().name, "after.dat");
}

TEST(PartitionableTransportTest, BlackholeLosesAcksNotDelivery) {
  EventLoop loop(RealClock::Get());
  ShimmedPair pair(&loop);
  ASSERT_TRUE(pair.SendOne(&loop, "before.dat").ok());

  // Drop peer->self bytes: the file still arrives, its ack never returns
  // — the duplicate-generating half-open case.
  pair.harness.Blackhole("down", /*to_peer=*/false);
  Status lost = pair.SendOne(&loop, "unacked.dat");
  EXPECT_TRUE(lost.IsUnavailable()) << lost;
  EXPECT_EQ(pair.inbound.messages.back().name, "unacked.dat");
  EXPECT_GT(pair.harness.dropped_bytes(), 0u);
  EXPECT_GE(pair.client.ack_timeouts(), 1u);

  pair.harness.Heal("down");
  EXPECT_TRUE(pair.SendOne(&loop, "after.dat").ok());
}

TEST(PartitionableTransportTest, SlowLinkDelaysTraffic) {
  EventLoop loop(RealClock::Get());
  ShimmedPair pair(&loop);
  ASSERT_TRUE(pair.SendOne(&loop, "warm.dat").ok());

  pair.harness.SlowLink("down", 100 * kMillisecond);
  TimePoint start = RealClock::Get()->Now();
  Status slow = pair.SendOne(&loop, "slow.dat");
  Duration elapsed = RealClock::Get()->Now() - start;
  EXPECT_TRUE(slow.ok()) << slow;
  EXPECT_GE(elapsed, 100 * kMillisecond);  // at least one delayed leg
  EXPECT_GT(pair.harness.delayed_chunks(), 0u);
}

TEST(PartitionableTransportTest, ArmSchedulesDirectivesFromPlan) {
  EventLoop loop(RealClock::Get());
  ShimmedPair pair(&loop);
  ASSERT_TRUE(pair.SendOne(&loop, "before.dat").ok());

  auto plan = ParseFaultPlan(R"(
fault_plan {
  net {
    partition "up" "down" at 50ms;
    heal "up" "down" at 700ms;
  }
}
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  pair.harness.Arm(*plan);

  // Let the partition engage, then verify the link is dead.
  TimePoint until = RealClock::Get()->Now() + 150 * kMillisecond;
  while (RealClock::Get()->Now() < until) loop.RunFor(10 * kMillisecond);
  Status severed = pair.SendOne(&loop, "during.dat");
  EXPECT_TRUE(severed.IsUnavailable()) << severed;

  // After the scheduled heal the link carries traffic again.
  until = RealClock::Get()->Now() + 700 * kMillisecond;
  while (RealClock::Get()->Now() < until) loop.RunFor(10 * kMillisecond);
  Status healed = pair.SendOne(&loop, "after.dat");
  EXPECT_TRUE(healed.ok()) << healed;
  EXPECT_EQ(pair.inbound.messages.back().name, "after.dat");
}

}  // namespace
}  // namespace bistro

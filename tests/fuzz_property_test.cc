// Randomized property tests over the language layers:
//  - generated configurations survive FormatConfig -> ParseConfig intact;
//  - GeneralizeName always yields a compilable pattern that matches the
//    input name;
//  - random corpora rendered from random pattern templates are fully
//    re-matched by their own discovered patterns;
//  - WAL/KvStore state survives arbitrary crash points (prefix truncation
//    never yields corruption errors, only a consistent earlier state).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "analyzer/infer.h"
#include "common/random.h"
#include "common/strings.h"
#include "config/parser.h"
#include "kv/kvstore.h"
#include "net/protocol.h"
#include "net/stream.h"
#include "pattern/pattern.h"
#include "vfs/memfs.h"

namespace bistro {
namespace {

// ------------------------------------------------------------ config fuzz

ServerConfig RandomConfig(Rng* rng) {
  ServerConfig config;
  int feeds = 1 + static_cast<int>(rng->Uniform(6));
  for (int f = 0; f < feeds; ++f) {
    FeedSpec feed;
    feed.name = "F" + std::to_string(f);
    if (rng->Bernoulli(0.4)) feed.name = "GRP.SUB" + std::to_string(f);
    feed.pattern = "feed" + std::to_string(f) + "_%i_%Y%m%d.dat";
    int alts = static_cast<int>(rng->Uniform(3));
    for (int a = 0; a < alts; ++a) {
      feed.alt_patterns.push_back("alt" + std::to_string(f) + "_" +
                                  std::to_string(a) + "_%s.log");
    }
    switch (rng->Uniform(3)) {
      case 0:
        feed.normalize.action = CompressionAction::kCompress;
        feed.normalize.codec =
            rng->Bernoulli(0.5) ? CodecKind::kLz : CodecKind::kRle;
        break;
      case 1:
        feed.normalize.action = CompressionAction::kDecompress;
        break;
      default:
        break;
    }
    if (rng->Bernoulli(0.5)) {
      feed.normalize.rename_template = "%Y/%m/%d/out%i.dat";
    }
    feed.tardiness = static_cast<Duration>(1 + rng->Uniform(600)) * kSecond;
    config.feeds.push_back(std::move(feed));
  }
  int subs = static_cast<int>(rng->Uniform(4));
  for (int s = 0; s < subs; ++s) {
    SubscriberSpec sub;
    sub.name = "sub" + std::to_string(s);
    if (rng->Bernoulli(0.5)) sub.host = "host-" + rng->AlnumString(6);
    if (rng->Bernoulli(0.5)) sub.destination = "/data/" + rng->AlnumString(4);
    sub.feeds.push_back(
        config.feeds[rng->Uniform(config.feeds.size())].name);
    sub.method =
        rng->Bernoulli(0.5) ? DeliveryMethod::kPush : DeliveryMethod::kNotify;
    switch (rng->Uniform(5)) {
      case 0:
        sub.trigger.batch.mode = BatchSpec::Mode::kCount;
        sub.trigger.batch.count = 1 + static_cast<int>(rng->Uniform(10));
        break;
      case 1:
        sub.trigger.batch.mode = BatchSpec::Mode::kTime;
        sub.trigger.batch.timeout =
            static_cast<Duration>(1 + rng->Uniform(600)) * kSecond;
        break;
      case 2:
        sub.trigger.batch.mode = BatchSpec::Mode::kCountOrTime;
        sub.trigger.batch.count = 1 + static_cast<int>(rng->Uniform(10));
        sub.trigger.batch.timeout =
            static_cast<Duration>(1 + rng->Uniform(600)) * kSecond;
        break;
      case 3:
        sub.trigger.batch.mode = BatchSpec::Mode::kPunctuation;
        break;
      default:
        break;
    }
    if (rng->Bernoulli(0.6)) {
      sub.trigger.command = "run_" + rng->AlnumString(5) + " \"arg\\x\"";
      sub.trigger.remote = rng->Bernoulli(0.3);
    }
    if (rng->Bernoulli(0.4)) {
      sub.window = static_cast<Duration>(1 + rng->Uniform(72)) * kHour;
    }
    config.subscribers.push_back(std::move(sub));
  }
  return config;
}

class ConfigFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ConfigFuzzTest, FormatParseRoundTrip) {
  Rng rng(GetParam() * 101);
  for (int iter = 0; iter < 25; ++iter) {
    ServerConfig config = RandomConfig(&rng);
    std::string text = FormatConfig(config);
    auto reparsed = ParseConfig(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
    EXPECT_EQ(*reparsed, config) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzzTest, ::testing::Range(1, 6));

// -------------------------------------------------------- generalization

class GeneralizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneralizePropertyTest, GeneralizedPatternAlwaysMatchesItsName) {
  Rng rng(GetParam() * 7 + 1);
  static const char* kSeps = "_-./";
  for (int iter = 0; iter < 200; ++iter) {
    // Random structured name: alternating word/number/separator runs.
    std::string name;
    int segments = 1 + static_cast<int>(rng.Uniform(8));
    for (int s = 0; s < segments; ++s) {
      if (s > 0) name += kSeps[rng.Uniform(4)];
      if (rng.Bernoulli(0.5)) {
        name += rng.AlnumString(1 + rng.Uniform(8));
      } else {
        name += std::to_string(rng.Uniform(100000000));
      }
    }
    std::string generalized = GeneralizeName(name);
    auto pattern = Pattern::Compile(generalized);
    ASSERT_TRUE(pattern.ok()) << name << " -> " << generalized;
    EXPECT_TRUE(pattern->Matches(name)) << name << " -> " << generalized;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizePropertyTest, ::testing::Range(1, 6));

// ------------------------------------------------------- discovery closure

class DiscoveryClosureTest : public ::testing::TestWithParam<int> {};

TEST_P(DiscoveryClosureTest, DiscoveredPatternsCoverTheirClusters) {
  Rng rng(GetParam() * 31 + 7);
  // Corpus: several synthetic conventions with random literals.
  std::vector<FileObservation> corpus;
  int conventions = 2 + static_cast<int>(rng.Uniform(4));
  for (int c = 0; c < conventions; ++c) {
    std::string stem = ToUpper(rng.AlnumString(3 + rng.Uniform(5)));
    // Strip digits from the stem so conventions differ by alpha text.
    for (auto& ch : stem) {
      if (IsDigit(ch)) ch = 'X';
    }
    int files = 4 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < files; ++i) {
      CivilTime t{2010, 1 + (int)rng.Uniform(12), 1 + (int)rng.Uniform(28),
                  (int)rng.Uniform(24), (int)rng.Uniform(60), 0};
      corpus.push_back({StrFormat("%s_%llu_%04d%02d%02d%02d%02d.csv",
                                  stem.c_str(),
                                  (unsigned long long)rng.Uniform(5),
                                  t.year, t.month, t.day, t.hour, t.minute),
                        0});
    }
  }
  DiscoveryOptions options;
  options.min_support = 1;
  auto result = DiscoverFeeds(corpus, options);
  // Every observation matches at least one discovered pattern, and each
  // feed's pattern matches exactly file_count observations.
  std::vector<Pattern> compiled;
  std::vector<size_t> expected_counts;
  auto add = [&](const AtomicFeed& feed) {
    auto p = Pattern::Compile(feed.pattern);
    ASSERT_TRUE(p.ok()) << feed.pattern;
    compiled.push_back(std::move(*p));
    expected_counts.push_back(feed.file_count);
  };
  for (const auto& feed : result.feeds) add(feed);
  for (const auto& feed : result.outliers) add(feed);
  std::vector<size_t> counts(compiled.size(), 0);
  for (const auto& obs : corpus) {
    bool any = false;
    for (size_t i = 0; i < compiled.size(); ++i) {
      if (compiled[i].Matches(obs.name)) {
        counts[i]++;
        any = true;
      }
    }
    EXPECT_TRUE(any) << obs.name;
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], expected_counts[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryClosureTest, ::testing::Range(1, 6));

// ----------------------------------------------------------- crash points

class CrashPointTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointTest, AnyWalPrefixRecoversConsistently) {
  // Build a WAL of known operations, then truncate at every byte
  // boundary: recovery must always succeed and yield a state equal to
  // some prefix of the operation sequence.
  InMemoryFileSystem fs;
  KvStore::Options opts;
  opts.checkpoint_wal_bytes = 0;
  std::vector<std::pair<std::string, std::optional<std::string>>> ops;
  Rng rng(GetParam() * 13);
  {
    auto store = KvStore::Open(&fs, "/db", opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 30; ++i) {
      std::string key = "k" + std::to_string(rng.Uniform(10));
      if (rng.Bernoulli(0.7)) {
        std::string value = rng.AlnumString(1 + rng.Uniform(20));
        ASSERT_TRUE((*store)->Put(key, value).ok());
        ops.emplace_back(key, value);
      } else {
        ASSERT_TRUE((*store)->Delete(key).ok());
        ops.emplace_back(key, std::nullopt);
      }
    }
  }
  std::string wal = *fs.ReadFile("/db/wal.log");
  // All states reachable by applying op prefixes.
  std::set<std::string> reachable;
  {
    std::map<std::string, std::string> state;
    auto encode = [&] {
      std::string s;
      for (auto& [k, v] : state) s += k + "=" + v + ";";
      return s;
    };
    reachable.insert(encode());
    for (auto& [k, v] : ops) {
      if (v.has_value()) {
        state[k] = *v;
      } else {
        state.erase(k);
      }
      reachable.insert(encode());
    }
  }
  for (size_t cut = 0; cut <= wal.size(); cut += 1 + rng.Uniform(5)) {
    InMemoryFileSystem crashed;
    ASSERT_TRUE(
        crashed.WriteFile("/db/wal.log", std::string_view(wal).substr(0, cut))
            .ok());
    auto store = KvStore::Open(&crashed, "/db", opts);
    ASSERT_TRUE(store.ok()) << "cut=" << cut << ": " << store.status();
    std::string s;
    for (auto& [k, v] : (*store)->ScanPrefix("")) s += k + "=" + v + ";";
    EXPECT_TRUE(reachable.count(s)) << "cut=" << cut << " state=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPointTest, ::testing::Range(1, 5));

// ------------------------------------------------------------ frame fuzz
//
// The frame decoders parse bytes straight off a TCP socket, so hostile
// input must produce a clean Corruption — never a crash, never an
// allocation sized by an attacker-controlled header.

Message RandomMessage(Rng* rng) {
  Message msg;
  msg.type = static_cast<MessageType>(1 + rng->Uniform(6));
  msg.file_id = rng->Uniform(1u << 20);
  msg.feed = "FEED." + rng->AlnumString(1 + rng->Uniform(8));
  msg.name = rng->AlnumString(rng->Uniform(24));
  msg.dest_path = "/dest/" + rng->AlnumString(rng->Uniform(12));
  msg.payload = rng->AlnumString(rng->Uniform(512));
  msg.payload_crc = static_cast<uint32_t>(rng->Uniform(1u << 31));
  msg.data_time = static_cast<TimePoint>(rng->Uniform(1u << 30)) - (1 << 29);
  msg.batch_time = static_cast<TimePoint>(rng->Uniform(1u << 30));
  msg.batch_count = rng->Uniform(100);
  msg.net_seq = rng->Uniform(1u << 24);
  msg.ack_code = static_cast<uint32_t>(rng->Uniform(16));
  return msg;
}

class FrameFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FrameFuzzTest, MessagesRoundTripThroughChunkedStream) {
  Rng rng(GetParam() * 101);
  std::vector<Message> sent;
  for (int i = 0; i < 20; ++i) sent.push_back(RandomMessage(&rng));
  std::string wire = EncodeMessageStream(sent);
  // Feed the stream in random-sized chunks, as a socket would deliver it.
  MessageStreamDecoder decoder;
  size_t off = 0;
  while (off < wire.size()) {
    size_t n = std::min<size_t>(1 + rng.Uniform(97), wire.size() - off);
    ASSERT_TRUE(decoder.Feed(std::string_view(wire).substr(off, n)).ok());
    off += n;
  }
  for (const Message& expect : sent) {
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expect);  // includes net_seq / ack_code
  }
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST_P(FrameFuzzTest, RandomBytesNeverCrashTheDecoders) {
  Rng rng(GetParam() * 211);
  for (int round = 0; round < 200; ++round) {
    std::string junk;
    size_t len = rng.Uniform(200);
    junk.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.Uniform(256)));
    }
    // Either outcome (ok or error) is acceptable; what matters is a clean
    // return on arbitrary bytes.
    (void)DecodeMessage(junk);
    (void)DecodeBundle(junk);
    MessageStreamDecoder decoder;
    (void)decoder.Feed(junk);
  }
}

TEST_P(FrameFuzzTest, BitFlipsAreDetectedOrYieldAValidParse) {
  Rng rng(GetParam() * 307);
  for (int round = 0; round < 100; ++round) {
    std::string wire = EncodeMessage(RandomMessage(&rng));
    size_t pos = rng.Uniform(wire.size());
    wire[pos] = static_cast<char>(
        static_cast<uint8_t>(wire[pos]) ^ (1u << rng.Uniform(8)));
    auto decoded = DecodeMessage(wire);
    // A flip in the varint length prefix can reshape the frame arbitrarily;
    // everywhere else the CRC catches it. Either way: clean status, no
    // crash, and errors are Corruption (retry machinery treats them as
    // poison, not transient).
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest, ::testing::Range(1, 5));

TEST(FrameHardeningTest, HostileLengthPrefixIsRejectedBeforeAllocation) {
  // 10-byte varint claiming ~UINT64_MAX for the body length.
  std::string hostile;
  for (int i = 0; i < 9; ++i) hostile.push_back(static_cast<char>(0xFF));
  hostile.push_back(0x01);
  hostile.append(4, '\0');  // "CRC"
  auto decoded = DecodeMessage(hostile);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());

  MessageStreamDecoder decoder;
  EXPECT_FALSE(decoder.Feed(hostile).ok());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_TRUE(decoder.status().IsCorruption());
}

TEST(FrameHardeningTest, FrameOverConfiguredBoundPoisonsTheStream) {
  Message big;
  big.type = MessageType::kFileData;
  big.payload = std::string(4096, 'x');
  std::string wire = EncodeMessage(big);
  MessageStreamDecoder small(/*max_frame_bytes=*/1024);
  EXPECT_FALSE(small.Feed(wire).ok());
  EXPECT_TRUE(small.poisoned());
  // The same frame is fine for a decoder with the default bound.
  MessageStreamDecoder normal;
  ASSERT_TRUE(normal.Feed(wire).ok());
  auto got = normal.Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, big);
}

TEST(FrameHardeningTest, HostileBundleCountIsRejectedBeforeAllocation) {
  // Varint count of ~2^60 followed by almost no data: must be rejected
  // without reserving 2^60 slots.
  std::string hostile;
  for (int i = 0; i < 8; ++i) hostile.push_back(static_cast<char>(0xFF));
  hostile.push_back(0x0F);
  hostile += "xx";
  auto decoded = DecodeBundle(hostile);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());

  // A count that is merely wrong (but small) still errors cleanly.
  std::string wrong_count;
  wrong_count.push_back(5);
  auto few = DecodeBundle(wrong_count);
  EXPECT_FALSE(few.ok());
}

TEST(FrameHardeningTest, TruncatedFramesWaitRatherThanError) {
  // A prefix of a valid frame is not corruption for the stream decoder —
  // more bytes may arrive. Only a complete-but-bad frame poisons.
  Rng rng(99);
  Message msg = RandomMessage(&rng);
  std::string wire = EncodeMessage(msg);
  for (size_t cut = 0; cut + 1 < wire.size(); cut += 7) {
    MessageStreamDecoder decoder;
    ASSERT_TRUE(decoder.Feed(std::string_view(wire).substr(0, cut)).ok());
    EXPECT_FALSE(decoder.Next().has_value());
    // Completing the frame yields the message.
    ASSERT_TRUE(decoder.Feed(std::string_view(wire).substr(cut)).ok());
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, msg);
  }
}

}  // namespace
}  // namespace bistro

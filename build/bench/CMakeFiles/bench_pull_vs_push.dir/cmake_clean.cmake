file(REMOVE_RECURSE
  "CMakeFiles/bench_pull_vs_push.dir/bench_pull_vs_push.cpp.o"
  "CMakeFiles/bench_pull_vs_push.dir/bench_pull_vs_push.cpp.o.d"
  "bench_pull_vs_push"
  "bench_pull_vs_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pull_vs_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

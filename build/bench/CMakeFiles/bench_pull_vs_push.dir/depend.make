# Empty dependencies file for bench_pull_vs_push.
# This may be replaced when dependencies are built.

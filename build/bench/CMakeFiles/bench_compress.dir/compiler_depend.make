# Empty compiler generated dependencies file for bench_compress.
# This may be replaced when dependencies are built.

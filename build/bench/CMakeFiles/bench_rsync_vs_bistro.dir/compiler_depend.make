# Empty compiler generated dependencies file for bench_rsync_vs_bistro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_rsync_vs_bistro.dir/bench_rsync_vs_bistro.cpp.o"
  "CMakeFiles/bench_rsync_vs_bistro.dir/bench_rsync_vs_bistro.cpp.o.d"
  "bench_rsync_vs_bistro"
  "bench_rsync_vs_bistro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsync_vs_bistro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

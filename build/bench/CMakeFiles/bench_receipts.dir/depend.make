# Empty dependencies file for bench_receipts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_receipts.dir/bench_receipts.cpp.o"
  "CMakeFiles/bench_receipts.dir/bench_receipts.cpp.o.d"
  "bench_receipts"
  "bench_receipts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_receipts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

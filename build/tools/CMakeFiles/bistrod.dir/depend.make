# Empty dependencies file for bistrod.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bistrod.dir/bistrod.cpp.o"
  "CMakeFiles/bistrod.dir/bistrod.cpp.o.d"
  "bistrod"
  "bistrod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistrod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/trigger_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/delivery_test[1]_include.cmake")
include("/root/repo/build/tests/evolution_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_property_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_property_test[1]_include.cmake")
include("/root/repo/build/tests/warehouse_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/shipping_company.dir/shipping_company.cpp.o"
  "CMakeFiles/shipping_company.dir/shipping_company.cpp.o.d"
  "shipping_company"
  "shipping_company.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shipping_company.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

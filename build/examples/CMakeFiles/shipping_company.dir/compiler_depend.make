# Empty compiler generated dependencies file for shipping_company.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for distributed_relay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/distributed_relay.dir/distributed_relay.cpp.o"
  "CMakeFiles/distributed_relay.dir/distributed_relay.cpp.o.d"
  "distributed_relay"
  "distributed_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

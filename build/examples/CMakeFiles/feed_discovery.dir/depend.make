# Empty dependencies file for feed_discovery.
# This may be replaced when dependencies are built.

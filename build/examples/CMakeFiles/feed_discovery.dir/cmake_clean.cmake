file(REMOVE_RECURSE
  "CMakeFiles/feed_discovery.dir/feed_discovery.cpp.o"
  "CMakeFiles/feed_discovery.dir/feed_discovery.cpp.o.d"
  "feed_discovery"
  "feed_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for snmp_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/snmp_pipeline.dir/snmp_pipeline.cpp.o"
  "CMakeFiles/snmp_pipeline.dir/snmp_pipeline.cpp.o.d"
  "snmp_pipeline"
  "snmp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbistro.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/analyzer.cc" "src/CMakeFiles/bistro.dir/analyzer/analyzer.cc.o" "gcc" "src/CMakeFiles/bistro.dir/analyzer/analyzer.cc.o.d"
  "/root/repo/src/analyzer/daemon.cc" "src/CMakeFiles/bistro.dir/analyzer/daemon.cc.o" "gcc" "src/CMakeFiles/bistro.dir/analyzer/daemon.cc.o.d"
  "/root/repo/src/analyzer/grouping.cc" "src/CMakeFiles/bistro.dir/analyzer/grouping.cc.o" "gcc" "src/CMakeFiles/bistro.dir/analyzer/grouping.cc.o.d"
  "/root/repo/src/analyzer/infer.cc" "src/CMakeFiles/bistro.dir/analyzer/infer.cc.o" "gcc" "src/CMakeFiles/bistro.dir/analyzer/infer.cc.o.d"
  "/root/repo/src/analyzer/similarity.cc" "src/CMakeFiles/bistro.dir/analyzer/similarity.cc.o" "gcc" "src/CMakeFiles/bistro.dir/analyzer/similarity.cc.o.d"
  "/root/repo/src/analyzer/tokenizer.cc" "src/CMakeFiles/bistro.dir/analyzer/tokenizer.cc.o" "gcc" "src/CMakeFiles/bistro.dir/analyzer/tokenizer.cc.o.d"
  "/root/repo/src/baseline/pull_poller.cc" "src/CMakeFiles/bistro.dir/baseline/pull_poller.cc.o" "gcc" "src/CMakeFiles/bistro.dir/baseline/pull_poller.cc.o.d"
  "/root/repo/src/baseline/rsync_like.cc" "src/CMakeFiles/bistro.dir/baseline/rsync_like.cc.o" "gcc" "src/CMakeFiles/bistro.dir/baseline/rsync_like.cc.o.d"
  "/root/repo/src/classify/classifier.cc" "src/CMakeFiles/bistro.dir/classify/classifier.cc.o" "gcc" "src/CMakeFiles/bistro.dir/classify/classifier.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/bistro.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/bistro.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/bistro.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/bistro.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/bistro.dir/common/random.cc.o" "gcc" "src/CMakeFiles/bistro.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/bistro.dir/common/status.cc.o" "gcc" "src/CMakeFiles/bistro.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/bistro.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/bistro.dir/common/strings.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/bistro.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/bistro.dir/common/threadpool.cc.o.d"
  "/root/repo/src/common/time.cc" "src/CMakeFiles/bistro.dir/common/time.cc.o" "gcc" "src/CMakeFiles/bistro.dir/common/time.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/CMakeFiles/bistro.dir/compress/codec.cc.o" "gcc" "src/CMakeFiles/bistro.dir/compress/codec.cc.o.d"
  "/root/repo/src/config/parser.cc" "src/CMakeFiles/bistro.dir/config/parser.cc.o" "gcc" "src/CMakeFiles/bistro.dir/config/parser.cc.o.d"
  "/root/repo/src/config/registry.cc" "src/CMakeFiles/bistro.dir/config/registry.cc.o" "gcc" "src/CMakeFiles/bistro.dir/config/registry.cc.o.d"
  "/root/repo/src/core/admin.cc" "src/CMakeFiles/bistro.dir/core/admin.cc.o" "gcc" "src/CMakeFiles/bistro.dir/core/admin.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/CMakeFiles/bistro.dir/core/monitor.cc.o" "gcc" "src/CMakeFiles/bistro.dir/core/monitor.cc.o.d"
  "/root/repo/src/core/server.cc" "src/CMakeFiles/bistro.dir/core/server.cc.o" "gcc" "src/CMakeFiles/bistro.dir/core/server.cc.o.d"
  "/root/repo/src/delivery/archiver.cc" "src/CMakeFiles/bistro.dir/delivery/archiver.cc.o" "gcc" "src/CMakeFiles/bistro.dir/delivery/archiver.cc.o.d"
  "/root/repo/src/delivery/engine.cc" "src/CMakeFiles/bistro.dir/delivery/engine.cc.o" "gcc" "src/CMakeFiles/bistro.dir/delivery/engine.cc.o.d"
  "/root/repo/src/kv/kvstore.cc" "src/CMakeFiles/bistro.dir/kv/kvstore.cc.o" "gcc" "src/CMakeFiles/bistro.dir/kv/kvstore.cc.o.d"
  "/root/repo/src/kv/receipts.cc" "src/CMakeFiles/bistro.dir/kv/receipts.cc.o" "gcc" "src/CMakeFiles/bistro.dir/kv/receipts.cc.o.d"
  "/root/repo/src/kv/wal.cc" "src/CMakeFiles/bistro.dir/kv/wal.cc.o" "gcc" "src/CMakeFiles/bistro.dir/kv/wal.cc.o.d"
  "/root/repo/src/net/protocol.cc" "src/CMakeFiles/bistro.dir/net/protocol.cc.o" "gcc" "src/CMakeFiles/bistro.dir/net/protocol.cc.o.d"
  "/root/repo/src/net/stream.cc" "src/CMakeFiles/bistro.dir/net/stream.cc.o" "gcc" "src/CMakeFiles/bistro.dir/net/stream.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/CMakeFiles/bistro.dir/net/transport.cc.o" "gcc" "src/CMakeFiles/bistro.dir/net/transport.cc.o.d"
  "/root/repo/src/pattern/normalizer.cc" "src/CMakeFiles/bistro.dir/pattern/normalizer.cc.o" "gcc" "src/CMakeFiles/bistro.dir/pattern/normalizer.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "src/CMakeFiles/bistro.dir/pattern/pattern.cc.o" "gcc" "src/CMakeFiles/bistro.dir/pattern/pattern.cc.o.d"
  "/root/repo/src/sched/policy.cc" "src/CMakeFiles/bistro.dir/sched/policy.cc.o" "gcc" "src/CMakeFiles/bistro.dir/sched/policy.cc.o.d"
  "/root/repo/src/sched/responsiveness.cc" "src/CMakeFiles/bistro.dir/sched/responsiveness.cc.o" "gcc" "src/CMakeFiles/bistro.dir/sched/responsiveness.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/bistro.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/bistro.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sim/event_loop.cc" "src/CMakeFiles/bistro.dir/sim/event_loop.cc.o" "gcc" "src/CMakeFiles/bistro.dir/sim/event_loop.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/bistro.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/bistro.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/sources.cc" "src/CMakeFiles/bistro.dir/sim/sources.cc.o" "gcc" "src/CMakeFiles/bistro.dir/sim/sources.cc.o.d"
  "/root/repo/src/trigger/batcher.cc" "src/CMakeFiles/bistro.dir/trigger/batcher.cc.o" "gcc" "src/CMakeFiles/bistro.dir/trigger/batcher.cc.o.d"
  "/root/repo/src/trigger/trigger.cc" "src/CMakeFiles/bistro.dir/trigger/trigger.cc.o" "gcc" "src/CMakeFiles/bistro.dir/trigger/trigger.cc.o.d"
  "/root/repo/src/vfs/filesystem.cc" "src/CMakeFiles/bistro.dir/vfs/filesystem.cc.o" "gcc" "src/CMakeFiles/bistro.dir/vfs/filesystem.cc.o.d"
  "/root/repo/src/vfs/localfs.cc" "src/CMakeFiles/bistro.dir/vfs/localfs.cc.o" "gcc" "src/CMakeFiles/bistro.dir/vfs/localfs.cc.o.d"
  "/root/repo/src/vfs/memfs.cc" "src/CMakeFiles/bistro.dir/vfs/memfs.cc.o" "gcc" "src/CMakeFiles/bistro.dir/vfs/memfs.cc.o.d"
  "/root/repo/src/warehouse/warehouse.cc" "src/CMakeFiles/bistro.dir/warehouse/warehouse.cc.o" "gcc" "src/CMakeFiles/bistro.dir/warehouse/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bistro.
# This may be replaced when dependencies are built.

// bistrod — a deployable Bistro feed-management daemon.
//
// Runs a BistroServer over the local filesystem under the real clock:
// loads a configuration file, watches the landing zone for files from
// non-cooperating sources, runs maintenance (window expiry, stall
// alarms), periodic feed analysis, and prints a status report on a fixed
// cadence. Subscribers are delivered into local destination directories
// (the `destination` attribute); trigger commands run via the shell.
//
// Usage:
//   bistrod --config feeds.conf --root /var/bistro \
//           [--scan-interval 10s] [--status-interval 60s] \
//           [--window 7d] [--duration 0 (run forever)] \
//           [--listen ip:port (accept Bistro-to-Bistro connections;
//            overrides the config's server { listen; })] \
//           [--port-file <path> (write the bound listen port, for
//            ephemeral-port orchestration)] \
//           [--durable (fsync staged files and receipt WAL writes)] \
//           [--metrics-json <path> (dump a metrics snapshot on shutdown)] \
//           [--admin-file <path> (poll for operator commands: status,
//            deadletters, redrive, peers — one per line; file is consumed)]
//
// Layout under --root: landing/ staging/ db/ plus one directory per
// subscriber without an absolute `destination`.
//
// Federation: a config with a `server { listen; }` block (or --listen)
// accepts feeds from upstream Bistro servers; `peer <name> { ... }`
// blocks push this server's feeds to downstream ones. Both run over the
// TCP socket transport; a config with neither stays purely local.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>

#include "analyzer/daemon.h"
#include "common/strings.h"
#include "config/parser.h"
#include "core/admin.h"
#include "core/server.h"
#include "fanout/group.h"
#include "fanout/relay.h"
#include "federation/federation.h"
#include "federation/health.h"
#include "net/socket_transport.h"
#include "obs/export.h"
#include "vfs/localfs.h"

using namespace bistro;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

struct Args {
  std::string config_path;
  std::string root = "/tmp/bistro";
  Duration scan_interval = 10 * kSecond;
  Duration status_interval = 60 * kSecond;
  Duration window = 0;
  Duration duration = 0;  // 0 = run until signal
  std::string listen;     // overrides config server { listen; }
  std::string port_file;  // write the bound listen port here
  bool durable = false;   // fsync staging + receipt WAL
  std::string metrics_json_path;  // empty = no snapshot
  std::string admin_file;         // empty = no admin console
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--config") {
      const char* v = next();
      if (v == nullptr) return false;
      args->config_path = v;
    } else if (flag == "--root") {
      const char* v = next();
      if (v == nullptr) return false;
      args->root = v;
    } else if (flag == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_json_path = v;
    } else if (flag == "--admin-file") {
      const char* v = next();
      if (v == nullptr) return false;
      args->admin_file = v;
    } else if (flag == "--listen") {
      const char* v = next();
      if (v == nullptr) return false;
      args->listen = v;
    } else if (flag == "--port-file") {
      const char* v = next();
      if (v == nullptr) return false;
      args->port_file = v;
    } else if (flag == "--durable") {
      args->durable = true;
    } else if (flag == "--scan-interval" || flag == "--status-interval" ||
               flag == "--window" || flag == "--duration") {
      const char* v = next();
      if (v == nullptr) return false;
      auto d = ParseDuration(v);
      if (!d) {
        std::fprintf(stderr, "bad duration for %s: %s\n",
                     std::string(flag).c_str(), v);
        return false;
      }
      if (flag == "--scan-interval") args->scan_interval = *d;
      if (flag == "--status-interval") args->status_interval = *d;
      if (flag == "--window") args->window = *d;
      if (flag == "--duration") args->duration = *d;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(flag).c_str());
      return false;
    }
  }
  return !args->config_path.empty();
}

void Usage() {
  std::fprintf(stderr,
               "usage: bistrod --config <file> [--root <dir>] "
               "[--scan-interval 10s]\n"
               "               [--status-interval 60s] [--window 7d] "
               "[--duration 0]\n"
               "               [--listen ip:port] [--port-file <path>] "
               "[--durable]\n"
               "               [--metrics-json <path>] [--admin-file <path>]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  LocalFileSystem fs;
  RealClock clock;
  EventLoop loop(&clock);
  Logger logger(&clock);
  logger.AddSink(std::make_shared<StderrSink>());
  CommandInvoker invoker(&logger);

  auto config_text = fs.ReadFile(args.config_path);
  if (!config_text.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", args.config_path.c_str(),
                 config_text.status().ToString().c_str());
    return 1;
  }
  auto config = ParseConfig(*config_text);
  if (!config.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  if (!args.listen.empty()) config->server.listen = args.listen;

  // One transport carries everything: local subscriber sinks (loopback
  // semantics) plus federated peers and inbound upstreams over TCP.
  // Different processes draw different reconnect jitter.
  SocketTransport transport(
      &loop, SocketOptionsFromSpec(config->server,
                                   static_cast<uint64_t>(getpid())));
  if (Status s = transport.Listen(); !s.ok()) {
    std::fprintf(stderr, "listen error: %s\n", s.ToString().c_str());
    return 1;
  }
  if (transport.listen_port() >= 0) {
    std::fprintf(stderr, "listening for peers on %s (port %d)\n",
                 config->server.listen.c_str(), transport.listen_port());
    if (!args.port_file.empty()) {
      // Written atomically: orchestration polls for the file and must
      // never read a half-written port.
      std::string tmp = args.port_file + ".tmp";
      Status wrote =
          fs.WriteFile(tmp, std::to_string(transport.listen_port()) + "\n");
      if (wrote.ok()) wrote = fs.Rename(tmp, args.port_file);
      if (!wrote.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", args.port_file.c_str(),
                     wrote.ToString().c_str());
        return 1;
      }
    }
  }

  // Local subscribers: deliver into their destination directories.
  std::vector<std::unique_ptr<FileSinkEndpoint>> sinks;
  std::map<std::string, Endpoint*> local_endpoints;
  for (const SubscriberSpec& sub : config->subscribers) {
    std::string dest = sub.destination.empty()
                           ? path::Join(args.root, "subscribers/" + sub.name)
                           : sub.destination;
    sinks.push_back(std::make_unique<FileSinkEndpoint>(&fs, dest));
    transport.Register(sub.host.empty() ? sub.name : sub.host,
                       sinks.back().get());
    local_endpoints[sub.name] = sinks.back().get();
    std::fprintf(stderr, "subscriber %s -> %s\n", sub.name.c_str(),
                 dest.c_str());
  }

  BistroServer::Options options;
  options.landing_root = path::Join(args.root, "landing");
  options.staging_root = path::Join(args.root, "staging");
  options.db_dir = path::Join(args.root, "db");
  options.history_window = args.window;
  if (args.durable) {
    // A receipt must never outlive the bytes (or vice versa) across a
    // crash — the exactly-once federation argument leans on this.
    options.sync_staging = true;
    options.kv.sync_wal = true;
  }
  auto server = BistroServer::Create(options, *config, &fs, &transport, &loop,
                                     &invoker, &logger);
  if (!server.ok()) {
    std::fprintf(stderr, "server error: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  // Dissemination relays: each gets its own durable spool under the
  // root and answers on the wire under its config name, so subscribers
  // with `host "<relay>"` and downstream peers fan out through it.
  AdminFanout fanout_view;
  fanout_view.relay_specs = config->relays;
  std::vector<std::unique_ptr<fanout::RelayNode>> relays;
  for (const RelaySpec& spec : config->relays) {
    fanout::RelayNode::Options relay_options;
    relay_options.spool_dir = spec.spool.empty()
                                  ? path::Join(args.root, "relay/" + spec.name)
                                  : spec.spool;
    if (spec.retry_backoff) relay_options.retry_backoff = *spec.retry_backoff;
    if (spec.max_attempts) relay_options.max_attempts = *spec.max_attempts;
    relay_options.kv.sync_wal = args.durable;
    auto relay = fanout::RelayNode::Open(spec.name, spec.children, &fs,
                                         &transport, &loop, &logger,
                                         relay_options);
    if (!relay.ok()) {
      std::fprintf(stderr, "relay error: %s\n",
                   relay.status().ToString().c_str());
      return 1;
    }
    (*relay)->AttachMetrics((*server)->metrics());
    transport.Register(spec.name, relay->get());
    std::fprintf(stderr, "relay %s -> %zu child(ren), spool %s\n",
                 spec.name.c_str(), spec.children.size(),
                 relay_options.spool_dir.c_str());
    fanout_view.relay_nodes.push_back(relay->get());
    relays.push_back(std::move(*relay));
  }

  // Subscriber groups: members without a subscriber block of their own
  // land under root/subscribers/<member>, like destination-less
  // subscribers.
  std::vector<std::unique_ptr<FileSinkEndpoint>> member_sinks;
  fanout::GroupManager groups(server->get(), &fs, &loop, &logger);
  if (!config->groups.empty()) {
    Status wired = groups.Wire(
        config->groups,
        [&](const std::string& member) -> Endpoint* {
          if (auto it = local_endpoints.find(member);
              it != local_endpoints.end()) {
            return it->second;
          }
          member_sinks.push_back(std::make_unique<FileSinkEndpoint>(
              &fs, path::Join(args.root, "subscribers/" + member)));
          return member_sinks.back().get();
        },
        [&](const std::string& name, Endpoint* ep) {
          transport.Register(name, ep);
        });
    if (!wired.ok()) {
      std::fprintf(stderr, "group error: %s\n", wired.ToString().c_str());
      return 1;
    }
    groups.AttachMetrics((*server)->metrics());
    fanout_view.groups = &groups;
    for (const GroupSpec& g : config->groups) {
      std::fprintf(stderr, "group %s -> %zu member(s)\n", g.name.c_str(),
                   g.members.size());
    }
  }

  // Files arriving from upstream Bistro servers enter through the same
  // ingest path as local deposits, deduped by arrival receipt.
  FederationInbound inbound(server->get(), &logger);
  inbound.AttachMetrics((*server)->metrics());
  transport.SetInboundEndpoint(&inbound);
  // Wires peers and runs the peer health state machine: suspect/down
  // transitions, circuit-broken sends, and `failover` re-routing.
  FederationRuntime federation(server->get(), &transport, &loop, &logger);
  if (Status s = federation.Start(*config); !s.ok()) {
    std::fprintf(stderr, "federation error: %s\n", s.ToString().c_str());
    return 1;
  }
  (*server)->StartMaintenanceTimer();
  AnalyzerDaemon::Options analyzer_opts;
  analyzer_opts.ApplyTuning(config->analyzer);
  AnalyzerDaemon analyzer(server->get(), &loop, &logger, analyzer_opts);
  analyzer.Start();

  std::fprintf(stderr,
               "bistrod running: root=%s feeds=%zu subscribers=%zu "
               "groups=%zu relays=%zu (deposit files under %s/<source>/)\n",
               args.root.c_str(), config->feeds.size(),
               config->subscribers.size(), config->groups.size(),
               config->relays.size(), options.landing_root.c_str());
  if (PlanRuntime* plans = (*server)->plans()) {
    std::fprintf(stderr, "ingestion plans: %zu block(s) governing %zu feed(s)\n",
                 config->plans.size(), plans->stats().governed_feeds);
  }

  TimePoint started = clock.Now();
  TimePoint next_scan = started;
  TimePoint next_status = started + args.status_interval;
  while (g_stop == 0) {
    TimePoint now = clock.Now();
    if (args.duration > 0 && now - started >= args.duration) break;
    if (now >= next_scan) {
      auto n = (*server)->ScanLandingZone();
      if (n.ok() && *n > 0) {
        std::fprintf(stderr, "ingested %zu file(s) from the landing zone\n", *n);
      }
      next_scan = now + args.scan_interval;
    }
    if (now >= next_status) {
      std::fputs(RenderStatusReport(server->get(), fanout_view.groups)
                     .c_str(),
                 stderr);
      next_status = now + args.status_interval;
    }
    // Operator console: another process drops commands (one per line)
    // into --admin-file; we execute them, print the results, and remove
    // the file so the next drop starts fresh.
    if (!args.admin_file.empty() && fs.Exists(args.admin_file)) {
      auto commands = fs.ReadFile(args.admin_file);
      (void)fs.Delete(args.admin_file);
      if (commands.ok()) {
        for (const std::string& line : Split(*commands, '\n')) {
          if (Trim(line).empty()) continue;
          std::fputs(ExecuteAdminCommand(server->get(), line, &federation,
                                         fanout_view)
                         .c_str(),
                     stderr);
        }
      }
    }
    // Run events and socket readiness for one tick; cross-thread posts,
    // peer traffic, and signals all interrupt the wait promptly.
    loop.RunFor(200 * kMillisecond);
  }

  std::fprintf(stderr, "bistrod shutting down\n");
  (*server)->delivery()->FlushBatches();
  loop.RunUntil(clock.Now());
  transport.Shutdown();
  std::fputs(RenderStatusReport(server->get(), fanout_view.groups)
                     .c_str(),
                 stderr);
  if (!args.metrics_json_path.empty()) {
    Status s = fs.WriteFile(args.metrics_json_path,
                            ExportJson((*server)->metrics()));
    if (!s.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   args.metrics_json_path.c_str(), s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 args.metrics_json_path.c_str());
  }
  return 0;
}
